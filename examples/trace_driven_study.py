#!/usr/bin/env python
"""Trace-driven methodology: record once, replay under many designs.

gem5-style execution-driven studies are slow because every configuration
re-executes the workload. The trace methodology decouples the two: record
the committed control-flow stream once, then replay the *identical*
stream under each machine configuration — removing run-to-run workload
variance from the comparison entirely (every policy sees byte-identical
fetch behaviour).

This example records a trace of one benchmark, replays it under several
policies, and verifies the replay's determinism along the way. It then
runs the same policy comparison over a *bundled external trace*
(``repro ingest``, DESIGN.md §18) — the same methodology applied to a
stream captured outside the simulator, where the replayer is the
workload's native frontend rather than an optimisation.

Usage::

    python examples/trace_driven_study.py [--benchmark NAME]
"""

import argparse
import io

from repro import build_machine, get_policy, get_profile
from repro.workloads.generator import generate_layout
from repro.workloads.trace import TraceReplayer, record
from repro.workloads.walker import PathWalker

POLICIES = ("baseline", "pdip_44", "eip_46", "fec_ideal")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="tpcc")
    parser.add_argument("--blocks", type=int, default=80_000,
                        help="basic blocks to record")
    parser.add_argument("--instructions", type=int, default=150_000)
    parser.add_argument("--warmup", type=int, default=50_000)
    args = parser.parse_args()

    profile = get_profile(args.benchmark)
    layout = generate_layout(profile, seed=1)

    # -- record ----------------------------------------------------------
    walker = PathWalker(layout, seed=1,
                        indirect_noise=profile.indirect_noise)
    buf = io.StringIO()
    instructions = record(walker, args.blocks, buf,
                          workload=args.benchmark, seed=1)
    trace_text = buf.getvalue()
    print(f"recorded {args.blocks:,} blocks / {instructions:,} instructions "
          f"({len(trace_text) // 1024} KB trace)")

    # -- replay under each policy ------------------------------------------
    print(f"\nreplaying the identical stream under {len(POLICIES)} policies:")
    results = {}
    for policy in POLICIES:
        replayer = TraceReplayer(layout, trace_text, loop=True)
        machine = build_machine(layout, profile, get_policy(policy), seed=1)
        machine.walker = replayer
        stats = machine.run(args.instructions, warmup=args.warmup)
        results[policy] = stats
        print(f"  {policy:12s} IPC={stats.ipc:.3f} "
              f"L1I-MPKI={stats.l1i_mpki:6.1f} PPKI={stats.ppki:5.1f}")

    base = results["baseline"]
    print("\nspeedups on the identical instruction stream:")
    for policy in POLICIES[1:]:
        print(f"  {policy:12s} {(results[policy].ipc / base.ipc - 1) * 100:+.2f}%")

    # -- determinism check ----------------------------------------------------
    again = build_machine(layout, profile, get_policy("baseline"), seed=1)
    again.walker = TraceReplayer(layout, trace_text, loop=True)
    repeat = again.run(args.instructions, warmup=args.warmup)
    assert repeat.cycles == base.cycles, "replay must be bit-identical"
    print("\nreplay determinism verified: two baseline replays agree "
          f"cycle-for-cycle ({repeat.cycles:,} cycles)")

    # -- the same study over an ingested external trace -------------------
    # Bundled traces (see `repro ingest` / `repro list`) are ordinary
    # benchmark names whose frontend *is* a TraceReplayer over the
    # reconstructed layout — so the comparison below is trace-driven by
    # construction, no recording step needed.
    from repro import run_benchmark
    from repro.traces.registry import trace_benchmark_names

    bundled = sorted(trace_benchmark_names())
    if not bundled:
        print("\n(no bundled traces in this checkout; skipping part 2)")
        return
    name = bundled[0]
    print(f"\nthe same comparison over the ingested trace {name!r}:")
    trace_results = {}
    for policy in POLICIES:
        stats = run_benchmark(name, policy,
                              instructions=args.instructions,
                              warmup=args.warmup, seed=1, use_cache=False)
        trace_results[policy] = stats
        print(f"  {policy:12s} IPC={stats.ipc:.3f} "
              f"L1I-MPKI={stats.l1i_mpki:6.1f} PPKI={stats.ppki:5.1f}")
    tbase = trace_results["baseline"]
    for policy in POLICIES[1:]:
        speedup = (trace_results[policy].ipc / tbase.ipc - 1) * 100
        print(f"  {policy:12s} {speedup:+.2f}% vs baseline")


if __name__ == "__main__":
    main()

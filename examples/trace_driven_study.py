#!/usr/bin/env python
"""Trace-driven methodology: record once, replay under many designs.

gem5-style execution-driven studies are slow because every configuration
re-executes the workload. The trace methodology decouples the two: record
the committed control-flow stream once, then replay the *identical*
stream under each machine configuration — removing run-to-run workload
variance from the comparison entirely (every policy sees byte-identical
fetch behaviour).

This example records a trace of one benchmark, replays it under several
policies, and verifies the replay's determinism along the way.

Usage::

    python examples/trace_driven_study.py [--benchmark NAME]
"""

import argparse
import io

from repro import build_machine, get_policy, get_profile
from repro.workloads.generator import generate_layout
from repro.workloads.trace import TraceReplayer, record
from repro.workloads.walker import PathWalker

POLICIES = ("baseline", "pdip_44", "eip_46", "fec_ideal")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="tpcc")
    parser.add_argument("--blocks", type=int, default=80_000,
                        help="basic blocks to record")
    parser.add_argument("--instructions", type=int, default=150_000)
    parser.add_argument("--warmup", type=int, default=50_000)
    args = parser.parse_args()

    profile = get_profile(args.benchmark)
    layout = generate_layout(profile, seed=1)

    # -- record ----------------------------------------------------------
    walker = PathWalker(layout, seed=1,
                        indirect_noise=profile.indirect_noise)
    buf = io.StringIO()
    instructions = record(walker, args.blocks, buf,
                          workload=args.benchmark, seed=1)
    trace_text = buf.getvalue()
    print(f"recorded {args.blocks:,} blocks / {instructions:,} instructions "
          f"({len(trace_text) // 1024} KB trace)")

    # -- replay under each policy ------------------------------------------
    print(f"\nreplaying the identical stream under {len(POLICIES)} policies:")
    results = {}
    for policy in POLICIES:
        replayer = TraceReplayer(layout, trace_text, loop=True)
        machine = build_machine(layout, profile, get_policy(policy), seed=1)
        machine.walker = replayer
        stats = machine.run(args.instructions, warmup=args.warmup)
        results[policy] = stats
        print(f"  {policy:12s} IPC={stats.ipc:.3f} "
              f"L1I-MPKI={stats.l1i_mpki:6.1f} PPKI={stats.ppki:5.1f}")

    base = results["baseline"]
    print("\nspeedups on the identical instruction stream:")
    for policy in POLICIES[1:]:
        print(f"  {policy:12s} {(results[policy].ipc / base.ipc - 1) * 100:+.2f}%")

    # -- determinism check ----------------------------------------------------
    again = build_machine(layout, profile, get_policy("baseline"), seed=1)
    again.walker = TraceReplayer(layout, trace_text, loop=True)
    repeat = again.run(args.instructions, warmup=args.warmup)
    assert repeat.cycles == base.cycles, "replay must be bit-identical"
    print("\nreplay determinism verified: two baseline replays agree "
          f"cycle-for-cycle ({repeat.cycles:,} cycles)")


if __name__ == "__main__":
    main()

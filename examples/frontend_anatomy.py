#!/usr/bin/env python
"""Dissect where a decoupled front end loses its cycles.

Walks one workload through the machine and breaks the result down the
way Sections 2-4 of the paper reason: top-down slots, the resteer mix
(conditional vs indirect vs BTB miss), how much decode starvation the
FEC minority causes, and what an oracle that hides every FEC miss
(FEC-Ideal) would recover. This is the analysis that motivates building
a priority-directed prefetcher in the first place.

Usage::

    python examples/frontend_anatomy.py [--benchmark NAME]
"""

import argparse

from repro import build_machine, get_policy, get_profile
from repro.simulator.probe import TimelineProbe
from repro.workloads.generator import generate_layout


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="tomcat")
    parser.add_argument("--instructions", type=int, default=250_000)
    parser.add_argument("--warmup", type=int, default=80_000)
    args = parser.parse_args()

    profile = get_profile(args.benchmark)
    layout = generate_layout(profile, seed=1)
    print(f"{args.benchmark}: {len(layout.functions)} functions, "
          f"{layout.footprint_lines()} code lines "
          f"({layout.footprint_bytes() // 1024} KB text)")

    machine = build_machine(layout, profile, get_policy("baseline"), seed=1)
    machine.probe = probe = TimelineProbe(sample_every=50)
    stats = machine.run(args.instructions, warmup=args.warmup)

    print(f"\nIPC {stats.ipc:.3f} over {stats.cycles:,} cycles")
    print("\nTop-down issue slots (Figure 1 style):")
    for bucket, frac in stats.topdown.items():
        bar = "#" * int(frac * 50)
        print(f"  {bucket:16s} {frac * 100:5.1f}%  {bar}")

    print("\nCache pressure (Figure 9 style):")
    print(f"  L1-I MPKI {stats.l1i_mpki:6.1f}   L2-I {stats.l2i_mpki:5.1f}   "
          f"L2-D {stats.l2d_mpki:5.1f}   L3 {stats.l3_mpki:5.2f}")

    ki = stats.instructions / 1000
    print("\nResteer mix (what empties the FTQ):")
    print(f"  conditional mispredicts {stats.resteers_cond / ki:6.2f} /kiloinstr")
    print(f"  indirect mispredicts    {stats.resteers_indirect / ki:6.2f} /kiloinstr")
    print(f"  BTB misses              {stats.resteers_btb_miss / ki:6.2f} /kiloinstr")
    print(f"  return mispredicts      {stats.resteers_return / ki:6.2f} /kiloinstr")

    print("\nFront-end criticality (Figure 4 style):")
    print(f"  {stats.fec_line_fraction * 100:.1f}% of retired lines are FEC, "
          f"causing {stats.fec_starvation_fraction * 100:.1f}% of "
          f"decode starvation")

    print("\nPipeline timeline (one sample per 50 cycles):")
    print(probe.render())

    ideal_machine = build_machine(layout, profile, get_policy("fec_ideal"),
                                  seed=1)
    ideal = ideal_machine.run(args.instructions, warmup=args.warmup)
    print(f"\nFEC-Ideal oracle (every FEC miss at L1 latency): "
          f"IPC {ideal.ipc:.3f} ({(ideal.ipc / stats.ipc - 1) * 100:+.2f}%)")
    print("That gap is the room a front-end-criticality-aware prefetcher "
          "like PDIP plays in.")


if __name__ == "__main__":
    main()

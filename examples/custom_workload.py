#!/usr/bin/env python
"""Model your own service and ask whether PDIP would help it.

The paper's motivation is a datacenter service whose code footprint
dwarfs the instruction cache. This example builds a *custom* synthetic
workload from first-principles knobs — how many request handlers, how
deep the software stack is, how hot the shared library code is — and then
answers the practical question: is this workload front-end bound, and
what does each mitigation (bigger L1-I, EMISSARY, EIP, PDIP) buy?

Usage::

    python examples/custom_workload.py [--handlers N] [--depth D] ...
"""

import argparse

from repro import PolicySpec, WorkloadProfile, build_machine_for, get_policy

POLICIES = ("baseline", "2x_il1", "emissary", "eip_46", "pdip_44",
            "pdip_44_emissary")


def build_profile(args: argparse.Namespace) -> WorkloadProfile:
    return WorkloadProfile(
        name="custom-service",
        description="user-defined service model",
        num_functions=args.functions,
        num_handlers=args.handlers,
        num_leaves=args.leaves,
        call_depth=args.depth,
        call_sites_mean=args.fanout,
        leaf_call_frac=args.library_hotness,
        handler_zipf_alpha=args.skew,
        callee_zipf_alpha=args.skew,
        backend_stall_prob=args.backend_stalls,
        data_access_prob=args.data_rate,
        data_lines=args.data_lines,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--functions", type=int, default=900,
                        help="total functions in the binary")
    parser.add_argument("--handlers", type=int, default=48,
                        help="top-level request handlers")
    parser.add_argument("--leaves", type=int, default=50,
                        help="shared leaf/library functions (hot code)")
    parser.add_argument("--depth", type=int, default=6,
                        help="software-stack depth (call-graph tiers)")
    parser.add_argument("--fanout", type=float, default=1.9,
                        help="call sites per function")
    parser.add_argument("--library-hotness", type=float, default=0.12,
                        help="fraction of calls into shared leaves")
    parser.add_argument("--skew", type=float, default=0.2,
                        help="request-popularity Zipf alpha (0=flat)")
    parser.add_argument("--backend-stalls", type=float, default=0.10)
    parser.add_argument("--data-rate", type=float, default=0.06)
    parser.add_argument("--data-lines", type=int, default=2500)
    parser.add_argument("--instructions", type=int, default=250_000)
    parser.add_argument("--warmup", type=int, default=80_000)
    args = parser.parse_args()

    profile = build_profile(args)
    print(f"Workload: {profile.num_functions} functions, "
          f"{profile.num_handlers} handlers, depth {profile.call_depth}")

    results = {}
    for policy in POLICIES:
        machine = build_machine_for(profile, get_policy(policy), seed=1)
        results[policy] = machine.run(args.instructions, warmup=args.warmup)
        st = results[policy]
        print(f"  {policy:18s} IPC={st.ipc:.3f} L1I-MPKI={st.l1i_mpki:6.1f} "
              f"PPKI={st.ppki:5.1f}")

    base = results["baseline"]
    td = base.topdown
    print(f"\nDiagnosis: {td['frontend_bound'] * 100:.0f}% of issue slots are "
          f"front-end bound;")
    print(f"{base.fec_line_fraction * 100:.0f}% of lines are front-end "
          f"critical and cause "
          f"{base.fec_starvation_fraction * 100:.0f}% of decode starvation.")
    print("\nWhat each mitigation buys (IPC speedup over FDIP):")
    for policy in POLICIES[1:]:
        gain = (results[policy].ipc / base.ipc - 1) * 100
        print(f"  {policy:18s} {gain:+.2f}%")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: simulate one server workload with and without PDIP.

Runs the cassandra workload (the paper's headline benchmark) on the FDIP
baseline and with the PDIP(44) prefetcher, then prints the comparison the
paper's abstract is about: how much of the front-end stall a
priority-directed prefetcher recovers.

Usage::

    python examples/quickstart.py [--instructions N] [--benchmark NAME]
"""

import argparse

from repro import BENCHMARK_NAMES, run_benchmark


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="cassandra",
                        choices=BENCHMARK_NAMES)
    parser.add_argument("--instructions", type=int, default=200_000,
                        help="measured instructions (default 200k)")
    parser.add_argument("--warmup", type=int, default=60_000)
    args = parser.parse_args()

    print(f"Simulating {args.benchmark} "
          f"({args.instructions:,} instructions after "
          f"{args.warmup:,} warmup)...\n")

    baseline = run_benchmark(args.benchmark, "baseline",
                             instructions=args.instructions,
                             warmup=args.warmup)
    pdip = run_benchmark(args.benchmark, "pdip_44",
                         instructions=args.instructions, warmup=args.warmup)

    td = baseline.topdown
    print("FDIP baseline:")
    print(f"  IPC                 {baseline.ipc:.3f}")
    print(f"  L1-I MPKI           {baseline.l1i_mpki:.1f}")
    print(f"  front-end bound     {td['frontend_bound'] * 100:.1f}% of slots")
    print(f"  decode starvation   {baseline.decode_starvation_cycles:,} cycles")
    print(f"  FEC starvation      {baseline.fec_starvation_cycles:,} cycles")

    speedup = (pdip.ipc / baseline.ipc - 1) * 100
    fec_cut = (1 - pdip.fec_starvation_cycles
               / max(1, baseline.fec_starvation_cycles)) * 100
    print("\nWith PDIP (43.5 KB table):")
    print(f"  IPC                 {pdip.ipc:.3f}  ({speedup:+.2f}%)")
    print(f"  prefetches/kiloinstr {pdip.ppki:.1f}")
    print(f"  prefetch accuracy   {pdip.prefetch_accuracy * 100:.0f}%")
    print(f"  late prefetches     {pdip.prefetch_late_fraction * 100:.0f}%")
    print(f"  FEC stalls cut by   {fec_cut:.0f}%")


if __name__ == "__main__":
    main()

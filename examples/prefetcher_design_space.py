#!/usr/bin/env python
"""Explore the PDIP design space on one workload.

Reproduces the paper's design-exploration methodology (Sections 5.1-5.3)
interactively: sweep the table budget, the insertion probability, and the
candidate filters on a single benchmark, and print how coverage,
accuracy, pollution, and IPC move. This is the experiment you would run
before committing silicon area to a PDIP table.

Usage::

    python examples/prefetcher_design_space.py [--benchmark NAME]
"""

import argparse

from repro import PolicySpec, build_machine, get_profile
from repro.simulator.policies import PDIP_ASSOC_FOR_KB, get_policy
from repro.workloads.generator import generate_layout


def run(layout, profile, spec, instructions, warmup, seed=1):
    machine = build_machine(layout, profile, spec, seed=seed)
    stats = machine.run(instructions, warmup=warmup)
    return machine, stats


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="cassandra")
    parser.add_argument("--instructions", type=int, default=250_000)
    parser.add_argument("--warmup", type=int, default=80_000)
    args = parser.parse_args()

    profile = get_profile(args.benchmark)
    layout = generate_layout(profile, seed=1)
    _, base = run(layout, profile, get_policy("baseline"),
                  args.instructions, args.warmup)
    print(f"{args.benchmark}: baseline IPC {base.ipc:.3f}, "
          f"L1I MPKI {base.l1i_mpki:.1f}\n")

    header = (f"{'variant':34s} {'KB':>5s} {'spd%':>7s} {'PPKI':>6s} "
              f"{'acc%':>5s} {'cov%':>5s} {'late%':>6s}")

    print("Table budget sweep (512 sets, assoc 2..16):")
    print(header)
    for kb in (11, 22, 44, 87):
        spec = PolicySpec(f"pdip_{kb}", "", pdip_kb=kb)
        m, st = run(layout, profile, spec, args.instructions, args.warmup)
        print(f"{'PDIP(%d)' % kb:34s} {m.prefetcher.storage_kb:5.1f} "
              f"{(st.ipc / base.ipc - 1) * 100:+7.2f} {st.ppki:6.1f} "
              f"{st.prefetch_accuracy * 100:5.0f} "
              f"{st.fec_coverage * 100:5.0f} "
              f"{st.prefetch_late_fraction * 100:6.0f}")

    print("\nInsertion probability sweep (43.5 KB table):")
    print(header)
    for prob in (0.125, 0.25, 0.5, 1.0):
        spec = PolicySpec("pdip_p", "", pdip_kb=44,
                          pdip_overrides=dict(insert_prob=prob))
        m, st = run(layout, profile, spec, args.instructions, args.warmup)
        print(f"{'insert_prob=%g' % prob:34s} {m.prefetcher.storage_kb:5.1f} "
              f"{(st.ipc / base.ipc - 1) * 100:+7.2f} {st.ppki:6.1f} "
              f"{st.prefetch_accuracy * 100:5.0f} "
              f"{st.fec_coverage * 100:5.0f} "
              f"{st.prefetch_late_fraction * 100:6.0f}")

    print("\nCandidate filter sweep (what qualifies for insertion):")
    print(header)
    filters = {
        "high-cost + backend-stall (paper)": dict(),
        "high-cost only": dict(require_backend_stall=False),
        "all FEC lines": dict(require_high_cost=False,
                              require_backend_stall=False),
    }
    for label, overrides in filters.items():
        spec = PolicySpec("pdip_f", "", pdip_kb=44,
                          pdip_overrides=overrides)
        m, st = run(layout, profile, spec, args.instructions, args.warmup)
        print(f"{label:34s} {m.prefetcher.storage_kb:5.1f} "
              f"{(st.ipc / base.ipc - 1) * 100:+7.2f} {st.ppki:6.1f} "
              f"{st.prefetch_accuracy * 100:5.0f} "
              f"{st.fec_coverage * 100:5.0f} "
              f"{st.prefetch_late_fraction * 100:6.0f}")


if __name__ == "__main__":
    main()

"""Benchmark harness: regenerate Table 1.

The simulated processor configuration next to the paper's.
"""

from repro.experiments import tab01_config as driver


def test_tab01_config(benchmark, emit):
    result = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    emit("tab01_config", driver.render(result))

"""Ablation bench: iTLB sensitivity (paper Section 4.2 side experiment).

The paper tried iTLB misses as PDIP trigger events and saw no gain; this
ablation enables the iTLB substrate and checks PDIP's gain is stable.
"""

from repro.experiments import ablations


def test_ablation_itlb(benchmark, emit):
    result = benchmark.pedantic(ablations.itlb, rounds=1, iterations=1)
    emit("ablation_itlb", ablations.render(result, "iTLB sensitivity"))

"""Benchmark harness: regenerate Figure 1.

Top-down issue-slot breakdown of cassandra on the FDIP baseline
(paper: 16.9% retiring / 53.6% front-end bound / 10.6% bad
speculation / 18.9% back-end bound).
"""

from repro.experiments import fig01_topdown as driver


def test_fig01_topdown(benchmark, emit, emit_svg):
    result = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    if hasattr(driver, "render_svg"):
        emit_svg("fig01_topdown", driver.render_svg(result))
    emit("fig01_topdown", driver.render(result))

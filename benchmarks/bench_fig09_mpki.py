"""Benchmark harness: regenerate Figure 9.

Baseline MPKI at L1-I / L2-I / L2-D / L3 for all 16 benchmarks.
"""

from repro.experiments import fig09_mpki as driver


def test_fig09_mpki(benchmark, emit, emit_svg):
    result = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    if hasattr(driver, "render_svg"):
        emit_svg("fig09_mpki", driver.render_svg(result))
    emit("fig09_mpki", driver.render(result))

"""Benchmark harness: regenerate Table 4.

Mean prefetches per kilo-instruction and prefetch accuracy for the
EIP and PDIP configurations.
"""

from repro.experiments import tab04_ppki_accuracy as driver


def test_tab04_ppki_accuracy(benchmark, emit):
    result = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    emit("tab04_ppki_accuracy", driver.render(result))

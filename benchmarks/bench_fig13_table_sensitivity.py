"""Benchmark harness: regenerate Figure 13.

PDIP table size sensitivity: 11 / 22 / 43.5 / 87 KB.
"""

from repro.experiments import fig13_table_sensitivity as driver


def test_fig13_table_sensitivity(benchmark, emit, emit_svg):
    result = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    if hasattr(driver, "render_svg"):
        emit_svg("fig13_table_sensitivity", driver.render_svg(result))
    emit("fig13_table_sensitivity", driver.render(result))

"""Extension bench (beyond the paper's figures): related-work prefetchers.

Puts the Section 8 related-work designs — a sequential next-line
prefetcher and RDIP — on the same simulator as EIP and PDIP, plus the
paper's dropped path-information PDIP variant (Section 5.2).
"""

from repro.experiments import ext_related_work as driver


def test_ext_related_work(benchmark, emit, emit_svg):
    result = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    emit_svg("ext_related_work", driver.render_svg(result))
    emit("ext_related_work", driver.render(result))

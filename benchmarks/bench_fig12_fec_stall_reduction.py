"""Benchmark harness: regenerate Figure 12.

Reduction in FEC starvation cycles for PDIP(44), EIP(46), and
PDIP+EMISSARY, plus FEC coverage.
"""

from repro.experiments import fig12_fec_stall_reduction as driver


def test_fig12_fec_stall_reduction(benchmark, emit, emit_svg):
    result = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    if hasattr(driver, "render_svg"):
        emit_svg("fig12_fec_stall_reduction", driver.render_svg(result))
    emit("fig12_fec_stall_reduction", driver.render(result))

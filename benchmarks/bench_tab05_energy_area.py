"""Benchmark harness: regenerate Table 5.

Core-relative energy and area overheads of the PDIP tables.
"""

from repro.experiments import tab05_energy_area as driver


def test_tab05_energy_area(benchmark, emit):
    result = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    emit("tab05_energy_area", driver.render(result))

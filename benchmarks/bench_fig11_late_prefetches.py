"""Benchmark harness: regenerate Figure 11.

Percentage of late prefetches (partial hits) for PDIP(44) vs EIP(46).
"""

from repro.experiments import fig11_late_prefetches as driver


def test_fig11_late_prefetches(benchmark, emit, emit_svg):
    result = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    if hasattr(driver, "render_svg"):
        emit_svg("fig11_late_prefetches", driver.render_svg(result))
    emit("fig11_late_prefetches", driver.render(result))

"""Ablation bench: PDIP candidate filters.

Section 5.3's two pollution filters: insert only high-cost FEC
lines, only back-end-stalling ones, both (paper), or all FEC lines.
"""

from repro.experiments import ablations


def test_ablation_candidate_filter(benchmark, emit):
    result = benchmark.pedantic(ablations.candidate_filter, rounds=1, iterations=1)
    emit("ablation_candidate_filter", ablations.render(result, "PDIP candidate filters"))

"""Benchmark harness: regenerate Figure 15.

IPC gain against total front-end storage (BTB + prefetch table),
normalized to FDIP with the smallest BTB.
"""

from repro.experiments import fig15_storage_efficiency as driver


def test_fig15_storage_efficiency(benchmark, emit, emit_svg):
    result = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    if hasattr(driver, "render_svg"):
        emit_svg("fig15_storage_efficiency", driver.render_svg(result))
    emit("fig15_storage_efficiency", driver.render(result))

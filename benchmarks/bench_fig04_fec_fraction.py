"""Benchmark harness: regenerate Figure 4.

FEC lines as a fraction of retired lines, and the share of decode
starvation they cause (paper: ~10% of lines cause ~62% of stalls).
"""

from repro.experiments import fig04_fec_fraction as driver


def test_fig04_fec_fraction(benchmark, emit, emit_svg):
    result = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    if hasattr(driver, "render_svg"):
        emit_svg("fig04_fec_fraction", driver.render_svg(result))
    emit("fig04_fec_fraction", driver.render(result))

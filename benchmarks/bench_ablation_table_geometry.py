"""Ablation bench: PDIP table geometry.

Section 5.1: targets per entry and the following-blocks mask width
(paper chose 2 targets + 4-bit mask).
"""

from repro.experiments import ablations


def test_ablation_table_geometry(benchmark, emit):
    result = benchmark.pedantic(ablations.table_geometry, rounds=1, iterations=1)
    emit("ablation_table_geometry", ablations.render(result, "PDIP table geometry"))

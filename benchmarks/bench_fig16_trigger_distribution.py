"""Benchmark harness: regenerate Figure 16.

Distribution of PDIP prefetch triggers: mispredict-family vs
last-taken-branch (paper: 89% / 11%).
"""

from repro.experiments import fig16_trigger_distribution as driver


def test_fig16_trigger_distribution(benchmark, emit, emit_svg):
    result = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    if hasattr(driver, "render_svg"):
        emit_svg("fig16_trigger_distribution", driver.render_svg(result))
    emit("fig16_trigger_distribution", driver.render(result))

"""Benchmark harness: regenerate Figure 10.

The headline comparison: EIP(46), EIP-Analytical, EMISSARY,
PDIP(44), PDIP(44)+EMISSARY and the zero-cost PDIP bound.
"""

from repro.experiments import fig10_speedup as driver


def test_fig10_speedup(benchmark, emit, emit_svg):
    result = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    if hasattr(driver, "render_svg"):
        emit_svg("fig10_speedup", driver.render_svg(result))
    emit("fig10_speedup", driver.render(result))

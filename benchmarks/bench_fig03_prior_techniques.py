"""Benchmark harness: regenerate Figure 3.

Speedups of 2X IL1, EMISSARY, EIP-Analytical, EIP+EMISSARY, and
FEC-Ideal over the FDIP baseline, per benchmark plus geomean.
"""

from repro.experiments import fig03_prior_techniques as driver


def test_fig03_prior_techniques(benchmark, emit, emit_svg):
    result = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    if hasattr(driver, "render_svg"):
        emit_svg("fig03_prior_techniques", driver.render_svg(result))
    emit("fig03_prior_techniques", driver.render(result))

"""Benchmark harness: regenerate Figure 14.

Prefetch policy gains at BTB sizes 4K-64K entries (vs the baseline
at the same BTB size).
"""

from repro.experiments import fig14_btb_sensitivity as driver


def test_fig14_btb_sensitivity(benchmark, emit, emit_svg):
    result = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    if hasattr(driver, "render_svg"):
        emit_svg("fig14_btb_sensitivity", driver.render_svg(result))
    emit("fig14_btb_sensitivity", driver.render(result))

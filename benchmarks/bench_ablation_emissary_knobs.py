"""Ablation bench: EMISSARY protected ways / promotion.

The paper's EMISSARY configuration knobs: ways reserved per L2 set
and the promotion probability.
"""

from repro.experiments import ablations


def test_ablation_emissary_knobs(benchmark, emit):
    result = benchmark.pedantic(ablations.emissary_knobs, rounds=1, iterations=1)
    emit("ablation_emissary_knobs", ablations.render(result, "EMISSARY protected ways / promotion"))

"""Shared helpers for the per-figure benchmark harnesses.

Each bench regenerates one paper artifact: it runs the experiment driver
(through the on-disk result cache, so repeated invocations are cheap),
prints the paper-style table, and writes it to ``benchmarks/output/``.

Budget control (environment variables):

* ``REPRO_INSTRUCTIONS`` / ``REPRO_WARMUP`` — per-run instruction budget
  (defaults 400k/120k; use e.g. 60000/20000 for a quick smoke pass);
* ``REPRO_BENCHMARKS`` — comma-separated benchmark subset or ``all``.
"""

import os
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture
def emit():
    """Print a rendered experiment table and persist it to output/."""

    def _emit(name: str, text: str) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / (name + ".txt")).write_text(text + "\n")
        print()
        print(text)

    return _emit


@pytest.fixture
def emit_svg():
    """Persist an SVG rendering of the figure to output/."""

    def _emit(name: str, svg: str) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / (name + ".svg")).write_text(svg)

    return _emit

"""Ablation bench: FTQ depth vs PDIP gain.

Ishii et al.: prefetcher gains shrink as the FTQ deepens, because
FDIP hides more misses by itself.
"""

from repro.experiments import ablations


def test_ablation_ftq_depth(benchmark, emit):
    result = benchmark.pedantic(ablations.ftq_depth, rounds=1, iterations=1)
    emit("ablation_ftq_depth", ablations.render(result, "FTQ depth vs PDIP gain"))

"""Ablation bench: PDIP insertion probability.

Section 5.3: the paper found 0.25 best among 1 -> 0.03 at 100M
instructions; the scaled reproduction defaults to 1.0 because the
table must converge ~400x faster.
"""

from repro.experiments import ablations


def test_ablation_insertion_prob(benchmark, emit):
    result = benchmark.pedantic(ablations.insertion_probability, rounds=1, iterations=1)
    emit("ablation_insertion_prob", ablations.render(result, "PDIP insertion probability"))

"""``repro bench`` — wall-clock benchmark of the simulation core.

Times representative (benchmark x policy) cells — short and long
budgets, each prefetcher family, probe attached and detached — and
writes ``BENCH_runner.json`` with per-cell simulated cycles/sec plus
the speedup against a recorded baseline (``benchmarks/bench_baseline.json``
by default, recorded from the pre-event-horizon seed implementation).

Cross-host comparability: raw cycles/sec depends on the machine running
the bench, so every run also measures a small pure-Python *calibration
kernel* and stores each cell's score normalized by it
(``norm = cycles_per_sec / calib``). The CI regression gate compares
normalized scores, which cancels most host-speed variation; same-host
comparisons (e.g. the committed baseline vs. an optimization branch on
one workstation) can use the raw numbers directly.

Usage::

    python -m repro bench                  # default grid, write BENCH_runner.json
    python -m repro bench --quick          # small subset for CI smoke
    python -m repro bench --record-baseline benchmarks/bench_baseline.json
    python -m repro bench --check          # fail (exit 1) on >tolerance regression

The bench refuses to run (exit 2) while ``REPRO_TELEMETRY=1`` is set:
a score taken with the trace recorder attached measures telemetry
overhead, not the simulator, and must never land in
``BENCH_runner.json`` or a recorded baseline.

The bench also bypasses every result cache — the on-disk cache, and
deliberately the durable service store (``REPRO_STORE`` is ignored;
there is no ``--store`` flag): a bench score must time a real
simulation, never a lookup. Each cell builds its machine directly and
calls ``Machine.run``, so no caching layer can intervene.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional

from repro.simulator.config import MachineConfig
from repro.simulator.policies import build_machine, get_policy
from repro.simulator.probe import TimelineProbe
from repro.utils import geomean
from repro.workloads.generator import generate_layout
from repro.workloads.profiles import external_benchmark, get_profile

#: default output document, at the repo root (next to the run manifests)
DEFAULT_OUT = "BENCH_runner.json"

#: default recorded baseline (committed; recorded from the seed
#: per-cycle implementation before the event-horizon fast path landed)
DEFAULT_BASELINE = Path(__file__).resolve().parents[2] / "benchmarks" / "bench_baseline.json"

#: allowed normalized-score regression before --check fails (the CI gate)
DEFAULT_TOLERANCE = 0.20


@dataclass
class BenchCell:
    """One timed simulation: a (benchmark, policy, budget, probe) point."""

    name: str
    benchmark: str
    policy: str
    instructions: int
    warmup: int
    seed: int = 1
    probe: bool = False
    #: simulation core timed by this cell; pinned explicitly so an
    #: ambient ``REPRO_BACKEND`` cannot silently change what a recorded
    #: number means (see :func:`expand_backends`)
    backend: str = "ref"

    @property
    def key(self) -> str:
        """Stable identity used to join runs against the baseline."""
        return self.name


def expand_backends(cells: List[BenchCell], backend: str) -> List[BenchCell]:
    """Expand a cell list into the requested backend matrix.

    ``"ref"`` returns the cells unchanged; ``"fast"`` returns fast-core
    variants (named ``<cell>-fast`` so ref and fast rows coexist in one
    report and baseline); ``"both"`` interleaves each ref cell with its
    fast twin, which keeps the pair adjacent in time and makes the
    within-pair speedup robust to slow host drift.
    """
    if backend == "ref":
        return list(cells)
    fast = [replace(c, name=c.name + "-fast", backend="fast")
            for c in cells]
    if backend == "fast":
        return fast
    if backend == "both":
        return [c for pair in zip(cells, fast) for c in pair]
    raise ValueError("unknown bench backend matrix %r" % (backend,))


def _cell(name, benchmark, policy, instructions, warmup, **kw) -> BenchCell:
    return BenchCell(name=name, benchmark=benchmark, policy=policy,
                     instructions=instructions, warmup=warmup, **kw)


#: the default grid's representative cells: short and long budgets,
#: every prefetcher family (none / next-line / RDIP / EIP / PDIP),
#: and the probe-attached path (which disables cycle skipping)
DEFAULT_CELLS: List[BenchCell] = [
    _cell("tatp-baseline-short", "tatp", "baseline", 40_000, 8_000),
    _cell("tatp-pdip44-short", "tatp", "pdip_44", 40_000, 8_000),
    _cell("dotty-pdip44-short", "dotty", "pdip_44", 40_000, 8_000),
    _cell("kafka-eip46-short", "kafka", "eip_46", 40_000, 8_000),
    _cell("tomcat-nextline-short", "tomcat", "next_line", 40_000, 8_000),
    _cell("xalan-rdip-short", "xalan", "rdip", 40_000, 8_000),
    _cell("tatp-pdip44-long", "tatp", "pdip_44", 150_000, 30_000),
    _cell("dotty-baseline-long", "dotty", "baseline", 150_000, 30_000),
    _cell("tatp-pdip44-probe", "tatp", "pdip_44", 40_000, 8_000, probe=True),
    # ingested-trace workloads: replayer-driven frontend (no PathWalker)
    _cell("trphase-pdip44-short", "trace-phase", "pdip_44", 40_000, 8_000),
    _cell("trcold-baseline-short", "trace-coldburst", "baseline",
          40_000, 8_000),
]

#: CI smoke subset (~15 s of simulation on a laptop-class host)
QUICK_CELLS: List[BenchCell] = [
    _cell("tatp-baseline-short", "tatp", "baseline", 40_000, 8_000),
    _cell("tatp-pdip44-short", "tatp", "pdip_44", 40_000, 8_000),
    _cell("kafka-eip46-short", "kafka", "eip_46", 40_000, 8_000),
    _cell("tatp-pdip44-probe", "tatp", "pdip_44", 40_000, 8_000, probe=True),
]


# ----------------------------------------------------------------------
# calibration
# ----------------------------------------------------------------------
def calibrate(iterations: int = 3) -> float:
    """Host-speed score from a fixed pure-Python kernel (higher = faster).

    The kernel exercises the same primitives the simulator leans on
    (dict lookups, attribute access, integer arithmetic, RNG), so the
    normalized cell scores transfer across hosts reasonably well. Best
    of ``iterations`` to shrug off scheduler noise.
    """
    import random

    best = 0.0
    for _ in range(iterations):
        rng = random.Random(1234)
        d: Dict[int, int] = {}
        t0 = time.perf_counter()
        acc = 0
        for i in range(120_000):
            key = (i * 2654435761) & 0xFFFF
            d[key] = d.get(key, 0) + 1
            acc += d[key] + (i % 7)
            if rng.random() < 0.01:
                acc ^= key
        dt = time.perf_counter() - t0
        best = max(best, 120_000 / dt)
    return best


# ----------------------------------------------------------------------
# cell execution
# ----------------------------------------------------------------------
def run_cell(cell: BenchCell, repeats: int = 2) -> Dict[str, object]:
    """Time one cell; returns its result record (best wall of ``repeats``).

    Layout generation and machine construction are excluded from the
    timed region — only :meth:`Machine.run` is measured. The simulated
    cycles/sec figure counts *all* simulated cycles (warmup included),
    because the wall time covers them too.
    """
    profile = get_profile(cell.benchmark)
    ext = external_benchmark(cell.benchmark)
    if ext is not None:
        layout = ext.layout_builder(cell.seed)
    else:
        layout = generate_layout(profile, seed=cell.seed)
    best_wall = None
    cycles = 0
    ipc = 0.0
    skipped = 0
    config = MachineConfig(backend=cell.backend)
    for _ in range(max(1, repeats)):
        machine = build_machine(layout, profile, get_policy(cell.policy),
                                config=config, seed=cell.seed)
        if cell.probe:
            machine.probe = TimelineProbe(sample_every=200)
        t0 = time.perf_counter()
        stats = machine.run(cell.instructions, warmup=cell.warmup)
        wall = time.perf_counter() - t0
        cycles = machine.cycle
        ipc = stats.ipc
        skipped = getattr(machine, "fast_forwarded_cycles", 0)
        if best_wall is None or wall < best_wall:
            best_wall = wall
    return {
        "name": cell.name,
        "benchmark": cell.benchmark,
        "policy": cell.policy,
        "instructions": cell.instructions,
        "warmup": cell.warmup,
        "seed": cell.seed,
        "probe": cell.probe,
        "backend": cell.backend,
        "wall_s": best_wall,
        "simulated_cycles": cycles,
        "cycles_per_sec": cycles / best_wall if best_wall else 0.0,
        "ipc": ipc,
        "fast_forwarded_cycles": skipped,
    }


@dataclass
class BenchReport:
    """Aggregated bench run: per-cell records plus baseline comparison."""

    calib: float
    cells: List[Dict[str, object]] = field(default_factory=list)
    baseline_path: Optional[str] = None
    baseline_calib: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "schema": 1,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "calib_score": self.calib,
            "baseline": self.baseline_path,
            "cells": self.cells,
        }
        speedups = [c["speedup_vs_baseline"] for c in self.cells
                    if isinstance(c.get("speedup_vs_baseline"), float)]
        if speedups:
            doc["geomean_speedup_vs_baseline"] = geomean(speedups)
        norm_ratios = [c["norm_ratio_vs_baseline"] for c in self.cells
                       if isinstance(c.get("norm_ratio_vs_baseline"), float)]
        if norm_ratios:
            doc["geomean_norm_ratio_vs_baseline"] = geomean(norm_ratios)
        # fast-vs-ref matrix: join each '<cell>-fast' row to its ref twin
        by_name = {c["name"]: c for c in self.cells}
        pair_speedups = []
        for c in self.cells:
            name = str(c["name"])
            if not name.endswith("-fast"):
                continue
            ref = by_name.get(name[:-len("-fast")])
            if ref and ref.get("cycles_per_sec"):
                ratio = c["cycles_per_sec"] / ref["cycles_per_sec"]
                c["speedup_fast_vs_ref"] = ratio
                pair_speedups.append(ratio)
        if pair_speedups:
            doc["geomean_fast_vs_ref"] = geomean(pair_speedups)
        return doc


def load_baseline(path) -> Optional[Dict[str, object]]:
    """Parse a recorded baseline document (None when absent)."""
    path = Path(path)
    if not path.exists():
        return None
    with open(path) as fh:
        return json.load(fh)


def run_bench(cells: List[BenchCell], repeats: int = 2,
              baseline_path=DEFAULT_BASELINE,
              verbose: bool = True) -> BenchReport:
    """Run the grid and join each cell against the recorded baseline."""
    calib = calibrate()
    baseline = load_baseline(baseline_path) if baseline_path else None
    base_cells = {c["name"]: c for c in baseline["cells"]} if baseline else {}
    base_calib = baseline.get("calib_score") if baseline else None
    report = BenchReport(calib=calib,
                         baseline_path=str(baseline_path) if baseline else None,
                         baseline_calib=base_calib)
    for cell in cells:
        rec = run_cell(cell, repeats=repeats)
        rec["norm_score"] = rec["cycles_per_sec"] / calib
        base = base_cells.get(cell.name)
        if base:
            rec["baseline_cycles_per_sec"] = base["cycles_per_sec"]
            rec["speedup_vs_baseline"] = (
                rec["cycles_per_sec"] / base["cycles_per_sec"])
            if base.get("norm_score"):
                rec["norm_ratio_vs_baseline"] = (
                    rec["norm_score"] / base["norm_score"])
        report.cells.append(rec)
        if verbose:
            extra = ""
            if "speedup_vs_baseline" in rec:
                extra = "  %5.2fx vs baseline" % rec["speedup_vs_baseline"]
            print("%-24s %9.0f cyc/s%s" % (cell.name,
                                           rec["cycles_per_sec"], extra))
    return report


def check_regression(report: BenchReport,
                     tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Normalized-score regression check; returns failure messages.

    A cell fails when its host-normalized score drops more than
    ``tolerance`` below the baseline's normalized score. Cells missing
    from the baseline are skipped (new cells never gate).
    """
    failures = []
    for rec in report.cells:
        ratio = rec.get("norm_ratio_vs_baseline")
        if not isinstance(ratio, float):
            continue
        if ratio < 1.0 - tolerance:
            failures.append(
                "%s: normalized score regressed to %.2fx of baseline "
                "(tolerance %.0f%%)" % (rec["name"], ratio, tolerance * 100))
    return failures


def write_report(report: BenchReport, out_path=DEFAULT_OUT) -> Path:
    """Write ``BENCH_runner.json``; returns the path."""
    out = Path(out_path)
    with open(out, "w") as fh:
        json.dump(report.to_dict(), fh, indent=1, sort_keys=True)
        fh.write("\n")
    return out


def record_baseline(cells: List[BenchCell], out_path, repeats: int = 2,
                    verbose: bool = True) -> Path:
    """Record the current implementation's scores as the new baseline."""
    report = run_bench(cells, repeats=repeats, baseline_path=None,
                       verbose=verbose)
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(report.to_dict(), fh, indent=1, sort_keys=True)
        fh.write("\n")
    return out


# ----------------------------------------------------------------------
# CLI glue (invoked from repro.cli)
# ----------------------------------------------------------------------
def main(args) -> int:
    """Drive a bench run from parsed ``repro bench`` arguments."""
    from repro.telemetry import telemetry_enabled

    if telemetry_enabled():
        # a bench score taken with the trace recorder attached measures
        # telemetry overhead, not the simulator — refuse to record it
        print("repro bench: REPRO_TELEMETRY is enabled; refusing to "
              "benchmark with the trace recorder attached.\n"
              "Bench scores must measure the simulator's zero-overhead "
              "path — unset REPRO_TELEMETRY and rerun.", file=sys.stderr)
        return 2
    if os.environ.get("REPRO_BACKEND"):
        # bench cells pin their backend explicitly (each recorded number
        # must say which core produced it); an ambient override would
        # have no effect and usually signals a stale shell export
        print("repro bench: REPRO_BACKEND=%s is set but ignored — bench "
              "cells pin their backend explicitly; use --backend to pick "
              "the timed core matrix." % os.environ["REPRO_BACKEND"],
              file=sys.stderr)
    cells = QUICK_CELLS if args.quick else DEFAULT_CELLS
    if args.cells:
        wanted = {name.strip() for name in args.cells.split(",")}
        index = {c.name: c for c in DEFAULT_CELLS}
        unknown = wanted - set(index)
        if unknown:
            print("unknown bench cells: %s" % ", ".join(sorted(unknown)),
                  file=sys.stderr)
            print("available: %s" % ", ".join(sorted(index)), file=sys.stderr)
            return 2
        cells = [index[name] for name in sorted(wanted)]
    cells = expand_backends(cells, getattr(args, "backend", None) or "both")
    if args.record_baseline:
        out = record_baseline(cells, args.record_baseline,
                              repeats=args.repeats)
        print("baseline recorded to %s" % out)
        return 0
    report = run_bench(cells, repeats=args.repeats,
                       baseline_path=args.baseline)
    out = write_report(report, args.out)
    doc = report.to_dict()
    if "geomean_speedup_vs_baseline" in doc:
        print("geomean speedup vs baseline: %.2fx"
              % doc["geomean_speedup_vs_baseline"])
    if "geomean_fast_vs_ref" in doc:
        print("geomean fast-core speedup vs ref: %.2fx"
              % doc["geomean_fast_vs_ref"])
    print("report: %s" % out)
    if args.check:
        failures = check_regression(report, tolerance=args.tolerance)
        if failures:
            for msg in failures:
                print("REGRESSION: " + msg, file=sys.stderr)
            return 1
        print("regression check passed (tolerance %.0f%%)"
              % (args.tolerance * 100))
    return 0

"""Best-effort intraprocedural call graph over a lint :class:`Project`.

The concurrency rules (:mod:`repro.analysis.rules.concurrency`) need to
answer "which callable does this ``ast.Call`` reach?" across module
boundaries: a blocking ``sqlite3`` call is just as harmful three sync
helpers below an ``async def`` as it is inline. This module builds that
map once per project and caches it on the :class:`Project`.

Resolution is deliberately *best effort* and silent on failure: a call
whose target cannot be determined produces no :class:`CallSite` at all,
so rules built on the graph never guess. The resolvable surface:

* plain names — local/nested defs, module-level functions, classes and
  functions reached through ``from X import Y [as Z]`` chains
  (re-exports are followed), plain ``import X [as Y]`` modules, and
  builtins (``open``);
* methods — ``self.m()`` with inheritance walk, ``super().m()``,
  ``self.attr.m()`` and ``local.m()`` where the receiver's type is known
  from an annotation (``x: T``, ``self.x: Optional[T] = None``), a
  constructor call (``x = T(...)``), an annotated parameter, or a
  ``with T(...) as x`` item;
* external values — calling an external dotted name tags the result
  with that name, so ``sqlite3.connect(...).execute(...)`` resolves to
  the external string ``sqlite3.connect.execute``.

Known, accepted false negatives (documented in DESIGN §16): calls on
untyped locals, containers of callables, ``Callable`` attributes,
nested classes, and anything passed by reference. Lambda bodies and
nested function bodies are excluded from their *enclosing* function's
call list — each nested ``def`` gets its own :class:`FunctionInfo` — so
``run_in_executor(None, lambda: blocking())`` is naturally not
attributed to the async caller.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.analysis.engine import ModuleInfo, Project, dotted_name

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: separator between a function and the defs nested inside it
LOCALS = ".<locals>."


class TypeRef:
    """The inferred type of a value.

    ``kind`` is ``"class"`` for a project class (``target`` is its
    qualified name ``module:Class``) or ``"external"`` for anything
    else (``target`` is the dotted origin, e.g.
    ``concurrent.futures.ProcessPoolExecutor`` for an annotation or
    ``sqlite3.connect`` for a factory-call result).
    """

    __slots__ = ("kind", "target")

    def __init__(self, kind: str, target: str):
        self.kind = kind
        self.target = target

    def __repr__(self) -> str:
        return f"TypeRef({self.kind}:{self.target})"


class CallSite:
    """One resolved call inside a function body."""

    __slots__ = ("node", "line", "callee", "external")

    def __init__(
        self,
        node: ast.Call,
        callee: Optional[str],
        external: Optional[str],
    ):
        self.node = node
        self.line = node.lineno
        #: qualified name of the project function called, if any
        self.callee = callee
        #: canonical dotted name of the external callable, if any
        self.external = external


class FunctionInfo:
    """One function or method definition in the project."""

    __slots__ = ("qname", "module", "name", "node", "is_async", "class_qname", "calls")

    def __init__(
        self,
        qname: str,
        module: str,
        node: FunctionNode,
        class_qname: Optional[str],
    ):
        self.qname = qname
        self.module = module
        self.name = node.name
        self.node = node
        self.is_async = isinstance(node, ast.AsyncFunctionDef)
        self.class_qname = class_qname
        self.calls: List[CallSite] = []

    @property
    def short_name(self) -> str:
        """Name without the module prefix (``Class.method`` / ``func``)."""
        return self.qname.split(":", 1)[1]


class ClassInfo:
    """One top-level project class: bases, methods, attribute types."""

    __slots__ = ("qname", "module", "node", "bases", "methods", "attr_types")

    def __init__(self, qname: str, module: str, node: ast.ClassDef):
        self.qname = qname
        self.module = module
        self.node = node
        #: project base-class qnames, in declaration order
        self.bases: List[str] = []
        #: method name -> function qname (directly defined only)
        self.methods: Dict[str, str] = {}
        #: attribute name -> inferred type
        self.attr_types: Dict[str, TypeRef] = {}


class _ModuleEnv:
    """Per-module name-resolution environment."""

    __slots__ = ("name", "from_imports", "module_aliases")

    def __init__(self, module: ModuleInfo):
        self.name = module.name
        #: ``from X import Y as Z`` -> {Z: "X.Y"} (relative imports resolved)
        self.from_imports: Dict[str, str] = {}
        #: ``import X.Y as Z`` -> {Z: "X.Y"}; ``import X.Y`` -> {X: "X"}
        self.module_aliases: Dict[str, str] = {}
        package = module.name if module.is_package else module.name.rpartition(".")[0]
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                base = _resolve_import_base(node, package)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name != "*":
                        bound = alias.asname or alias.name
                        self.from_imports[bound] = f"{base}.{alias.name}"
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.module_aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".", 1)[0]
                        self.module_aliases[head] = head


def _resolve_import_base(node: ast.ImportFrom, package: str) -> Optional[str]:
    """Absolute module an ``ImportFrom`` pulls names out of."""
    if node.level == 0:
        return node.module
    parts = package.split(".")
    if node.level - 1 >= len(parts):
        return None
    if node.level > 1:
        parts = parts[: -(node.level - 1)]
    if node.module:
        parts.append(node.module)
    return ".".join(parts) if parts else None


class CallGraph:
    """Project-wide function/class tables plus per-function call sites."""

    def __init__(self, project: Project):
        self.project = project
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._envs: Dict[str, _ModuleEnv] = {}
        self._by_node: Dict[int, CallSite] = {}

    # -- public lookups ------------------------------------------------
    def function(self, qname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qname)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for qname in sorted(self.functions):
            yield self.functions[qname]

    def site_for(self, node: ast.Call) -> Optional[CallSite]:
        """The resolved :class:`CallSite` for an AST call, if any."""
        return self._by_node.get(id(node))

    def lookup_method(self, class_qname: str, method: str) -> Optional[str]:
        """Resolve ``method`` on a class, walking project base classes."""
        seen: Set[str] = set()
        stack = [class_qname]
        while stack:
            qname = stack.pop(0)
            if qname in seen:
                continue
            seen.add(qname)
            info = self.classes.get(qname)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            stack.extend(info.bases)
        return None

    def attr_type(self, class_qname: str, attr: str) -> Optional[TypeRef]:
        """Inferred type of ``self.<attr>``, walking project bases."""
        seen: Set[str] = set()
        stack = [class_qname]
        while stack:
            qname = stack.pop(0)
            if qname in seen:
                continue
            seen.add(qname)
            info = self.classes.get(qname)
            if info is None:
                continue
            if attr in info.attr_types:
                return info.attr_types[attr]
            stack.extend(info.bases)
        return None

    # -- construction --------------------------------------------------
    def build(self) -> "CallGraph":
        for module in self.project.iter_modules():
            self._envs[module.name] = _ModuleEnv(module)
        for module in self.project.iter_modules():
            self._collect_defs(module)
        for info in list(self.classes.values()):
            self._resolve_class(info)
        for fn in list(self.functions.values()):
            self._collect_calls(fn)
        return self

    def _collect_defs(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module.name, f"{module.name}:{node.name}", node, None)
            elif isinstance(node, ast.ClassDef):
                qname = f"{module.name}:{node.name}"
                info = ClassInfo(qname, module.name, node)
                self.classes[qname] = info
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        mq = f"{module.name}:{node.name}.{item.name}"
                        info.methods[item.name] = mq
                        self._add_function(module.name, mq, item, qname)

    def _add_function(
        self,
        module: str,
        qname: str,
        node: FunctionNode,
        class_qname: Optional[str],
    ) -> None:
        self.functions[qname] = FunctionInfo(qname, module, node, class_qname)
        for child in _iter_scope(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = f"{qname}{LOCALS}{child.name}"
                self._add_function(module, nested, child, class_qname)

    def _resolve_class(self, info: ClassInfo) -> None:
        env = self._envs[info.module]
        for base in info.node.bases:
            name = dotted_name(base)
            if name is None:
                continue
            resolved = self._resolve_dotted(env, name)
            if resolved is not None and resolved[0] == "class":
                info.bases.append(resolved[1])
        # field annotations in the class body (dataclass style)
        for item in info.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                ref = self._ann_type(env, item.annotation)
                if ref is not None:
                    info.attr_types[item.target.id] = ref
        # ``self.x: T = ...`` annotations anywhere in the class's methods
        # always win; plain ``self.x = ...`` in __init__ fills the gaps.
        for method_q in info.methods.values():
            method = self.functions[method_q]
            for stmt in iter_scope_nodes(method.node):
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and _is_self_attr(stmt.target)
                    and isinstance(stmt.target, ast.Attribute)
                ):
                    ref = self._ann_type(env, stmt.annotation)
                    if ref is not None:
                        info.attr_types[stmt.target.attr] = ref
        init_q = info.methods.get("__init__")
        if init_q is not None:
            init = self.functions[init_q]
            params = _param_types(self, env, init.node)
            for stmt in iter_scope_nodes(init.node):
                if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                    continue
                target = stmt.targets[0]
                if not (_is_self_attr(target) and isinstance(target, ast.Attribute)):
                    continue
                if target.attr in info.attr_types:
                    continue
                ref = self._value_type(env, stmt.value, params)
                if ref is not None:
                    info.attr_types[target.attr] = ref

    # -- name resolution ----------------------------------------------
    def _resolve_global(
        self, module: str, name: str, _seen: Optional[Set[str]] = None
    ) -> Optional[Tuple[str, str]]:
        """Resolve a module-global ``name`` to ``(kind, target)``.

        Kinds: ``func``/``class`` (project, target is a qname),
        ``module`` (project module, dotted), ``external`` (dotted).
        Returns ``None`` when the name cannot be pinned down.
        """
        if _seen is None:
            _seen = set()
        key = f"{module}:{name}"
        if key in _seen:
            return None
        _seen.add(key)
        if key in self.functions:
            return ("func", key)
        if key in self.classes:
            return ("class", key)
        env = self._envs.get(module)
        if env is None:
            return None
        if name in env.from_imports:
            full = env.from_imports[name]
            if full in self.project.modules:
                return ("module", full)
            head, _, leaf = full.rpartition(".")
            if head in self.project.modules:
                # project module: follow re-export chains
                return self._resolve_global(head, leaf, _seen)
            return ("external", full)
        if name in env.module_aliases:
            target = env.module_aliases[name]
            if target in self.project.modules:
                return ("module", target)
            return ("external-module", target)
        if hasattr(builtins, name):
            return ("external", name)
        return None

    def _resolve_dotted(
        self, env: _ModuleEnv, dotted: str
    ) -> Optional[Tuple[str, str]]:
        """Resolve a dotted chain rooted at a module-global name."""
        parts = dotted.split(".")
        resolved = self._resolve_global(env.name, parts[0])
        if resolved is None:
            return None
        kind, target = resolved
        rest = parts[1:]
        if not rest:
            if kind == "external-module":
                return ("external", target)
            return (kind, target)
        if kind in ("external", "external-module"):
            return ("external", ".".join([target] + rest))
        if kind == "module":
            # descend through project submodules: pkg.sub.helper()
            while rest and f"{target}.{rest[0]}" in self.project.modules:
                target = f"{target}.{rest[0]}"
                rest = rest[1:]
            if not rest:
                return ("module", target)
            if len(rest) == 1:
                return self._resolve_global(target, rest[0])
            inner = self._resolve_global(target, rest[0])
            if inner is not None and inner[0] == "class" and len(rest) == 2:
                method = self.lookup_method(inner[1], rest[1])
                if method is not None:
                    return ("func", method)
            return None
        if kind == "class" and len(rest) == 1:
            method = self.lookup_method(target, rest[0])
            if method is not None:
                return ("func", method)
            return None
        return None

    def _ann_type(self, env: _ModuleEnv, ann: ast.expr) -> Optional[TypeRef]:
        """Type named by an annotation (unwraps ``Optional[...]`` and
        string annotations)."""
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.Subscript):
            base = dotted_name(ann.value)
            if base is not None and base.split(".")[-1] == "Optional":
                return self._ann_type(env, ann.slice)
            return None
        name = dotted_name(ann)
        if name is None:
            return None
        resolved = self._resolve_dotted(env, name)
        if resolved is None:
            return None
        kind, target = resolved
        if kind == "class":
            return TypeRef("class", target)
        if kind == "external":
            return TypeRef("external", target)
        return None

    def _value_type(
        self,
        env: _ModuleEnv,
        value: ast.expr,
        locals_: Dict[str, TypeRef],
    ) -> Optional[TypeRef]:
        """Type of an expression: ctor/factory calls, typed names,
        typed ``self`` attributes."""
        if isinstance(value, ast.Await):
            value = value.value
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            if name is None:
                return None
            if name.split(".")[0] in ("self", "cls"):
                return None
            resolved = self._resolve_dotted(env, name)
            if resolved is None:
                return None
            kind, target = resolved
            if kind == "class":
                return TypeRef("class", target)
            if kind == "external":
                return TypeRef("external", target)
            return None
        if isinstance(value, ast.Name):
            return locals_.get(value.id)
        return None

    # -- call collection -----------------------------------------------
    def _collect_calls(self, fn: FunctionInfo) -> None:
        env = self._envs[fn.module]
        locals_ = _param_types(self, env, fn.node)
        # first pass: local variable types from assignments/withitems
        for node in iter_scope_nodes(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    ref = self._value_type(env, node.value, locals_)
                    if ref is not None:
                        locals_[target.id] = ref
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                ref = self._ann_type(env, node.annotation)
                if ref is not None:
                    locals_[node.target.id] = ref
            elif isinstance(node, ast.withitem):
                if isinstance(node.optional_vars, ast.Name):
                    ref = self._value_type(env, node.context_expr, locals_)
                    if ref is not None:
                        locals_[node.optional_vars.id] = ref
        for node in iter_scope_nodes(fn.node):
            if isinstance(node, ast.Call):
                site = self._resolve_call(fn, env, node, locals_)
                if site is not None:
                    fn.calls.append(site)
                    self._by_node[id(node)] = site

    def _resolve_call(
        self,
        fn: FunctionInfo,
        env: _ModuleEnv,
        call: ast.Call,
        locals_: Dict[str, TypeRef],
    ) -> Optional[CallSite]:
        func = call.func
        # super().m(...)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
        ):
            if fn.class_qname is not None:
                info = self.classes.get(fn.class_qname)
                for base in info.bases if info is not None else []:
                    method = self.lookup_method(base, func.attr)
                    if method is not None:
                        return CallSite(call, method, None)
            return None
        # chained call: f(...).m(...) — type the inner call's result
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Call):
            ref = self._value_type(env, func.value, locals_)
            return self._method_site(call, ref, func.attr)
        name = dotted_name(func)
        if name is None or name == "super":
            return None
        parts = name.split(".")
        if parts[0] == "self" and fn.class_qname is not None:
            if len(parts) == 2:
                method = self.lookup_method(fn.class_qname, parts[1])
                if method is not None:
                    return CallSite(call, method, None)
                return None
            if len(parts) == 3:
                ref = self.attr_type(fn.class_qname, parts[1])
                return self._method_site(call, ref, parts[2])
            return None
        if len(parts) == 1:
            # nested defs visible from the enclosing scope chain
            scope = fn.qname
            while True:
                nested = f"{scope}{LOCALS}{parts[0]}"
                if nested in self.functions:
                    return CallSite(call, nested, None)
                if LOCALS not in scope:
                    break
                scope = scope.rsplit(LOCALS, 1)[0]
        if parts[0] in locals_ and len(parts) == 2:
            return self._method_site(call, locals_[parts[0]], parts[1])
        resolved = self._resolve_dotted(env, name)
        if resolved is None:
            return None
        kind, target = resolved
        if kind == "func":
            return CallSite(call, target, None)
        if kind == "class":
            init = self.lookup_method(target, "__init__")
            return CallSite(call, init, f"class:{target}")
        if kind == "external":
            return CallSite(call, None, target)
        return None

    def _method_site(
        self, call: ast.Call, ref: Optional[TypeRef], method: str
    ) -> Optional[CallSite]:
        if ref is None:
            return None
        if ref.kind == "class":
            resolved = self.lookup_method(ref.target, method)
            if resolved is not None:
                return CallSite(call, resolved, None)
            return None
        return CallSite(call, None, f"{ref.target}.{method}")


def _param_types(
    graph: CallGraph, env: _ModuleEnv, node: FunctionNode
) -> Dict[str, TypeRef]:
    """Types of annotated parameters (the seed local environment)."""
    out: Dict[str, TypeRef] = {}
    args = list(node.args.posonlyargs) + list(node.args.args) + list(
        node.args.kwonlyargs
    )
    for arg in args:
        if arg.annotation is not None:
            ref = graph._ann_type(env, arg.annotation)
            if ref is not None:
                out[arg.arg] = ref
    return out


def _is_self_attr(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _iter_scope(node: FunctionNode) -> Iterator[ast.AST]:
    """Direct statement-level children of a function body."""
    for stmt in node.body:
        yield stmt


def iter_scope_nodes(node: FunctionNode) -> Iterator[ast.AST]:
    """Every AST node in a function's own scope, in source (preorder)
    order — nested function and lambda bodies are *not* descended into
    (they are separate scopes with their own :class:`FunctionInfo`)."""
    stack: List[ast.AST] = list(reversed(node.body))
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield current
        stack.extend(reversed(list(ast.iter_child_nodes(current))))


def build_callgraph(project: Project) -> CallGraph:
    """Build (and return) the call graph for ``project``."""
    return CallGraph(project).build()

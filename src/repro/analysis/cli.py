"""Driver for the ``repro lint`` subcommand.

Exit codes: 0 — clean (baselined findings and warnings do not fail the
gate); 1 — at least one new error-severity finding; 2 — usage or
internal error (bad path, malformed baseline, unknown rule name).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, TextIO

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    match_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    Finding,
    discover,
    find_project_root,
    run_rules,
)
from repro.analysis.rules import ALL_RULES, get_rules

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _print_rule_list(out: TextIO) -> None:
    width = max(len(rule.name) for rule in ALL_RULES)
    for rule in ALL_RULES:
        out.write(
            f"{rule.name:<{width}}  [{rule.severity}/{rule.scope}] "
            f"{rule.description}\n"
        )


def _gh_escape(text: str) -> str:
    """Escape a message for a GitHub Actions workflow command."""
    return (text.replace("%", "%25")
                .replace("\r", "%0D")
                .replace("\n", "%0A"))


def _gh_annotation(finding: Finding) -> str:
    level = "error" if finding.severity == "error" else "warning"
    return (
        f"::{level} file={finding.path},line={finding.line},"
        f"title={finding.rule}::{_gh_escape(finding.message)}"
    )


def _print_timings(timings: Dict[str, float], total: float,
                   out: TextIO) -> None:
    width = max(len(name) for name in timings) if timings else 4
    out.write("rule timings:\n")
    for name in sorted(timings, key=lambda n: (-timings[n], n)):
        out.write(f"  {name:<{width}}  {timings[name]:7.3f}s\n")
    out.write(f"  {'total':<{width}}  {total:7.3f}s\n")


def run_lint(
    paths: List[str],
    fmt: str = "text",
    baseline: Optional[str] = None,
    no_baseline: bool = False,
    write_baseline_path: Optional[str] = None,
    select: Optional[List[str]] = None,
    list_rules: bool = False,
    timings: bool = False,
    budget: Optional[float] = None,
    out: Optional[TextIO] = None,
    err: Optional[TextIO] = None,
) -> int:
    """Lint ``paths`` and report; returns the process exit code."""
    # resolved at call time so pytest capsys / redirected streams work
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    if list_rules:
        _print_rule_list(out)
        return EXIT_CLEAN

    try:
        rules = get_rules(select)
    except ValueError as exc:
        err.write(f"repro lint: {exc}\n")
        return EXIT_USAGE

    scan_paths = [Path(p) for p in (paths or ["src/repro"])]
    missing = [p for p in scan_paths if not p.exists()]
    if missing:
        err.write(
            f"repro lint: no such path: {', '.join(str(p) for p in missing)}\n"
        )
        return EXIT_USAGE

    started = time.monotonic()
    root = find_project_root(scan_paths)
    project = discover(scan_paths, root=root)
    rule_timings: Dict[str, float] = {}
    findings = run_rules(project, rules, timings=rule_timings)
    elapsed = time.monotonic() - started

    if write_baseline_path is not None:
        target = Path(write_baseline_path)
        write_baseline(target, findings)
        out.write(f"wrote {len(findings)} finding(s) to {target}\n")
        return EXIT_CLEAN

    grandfathered: List[Finding] = []
    stale_count = 0
    if not no_baseline:
        baseline_path = (
            Path(baseline) if baseline is not None else root / DEFAULT_BASELINE_NAME
        )
        if baseline is not None and not baseline_path.exists():
            err.write(f"repro lint: baseline not found: {baseline_path}\n")
            return EXIT_USAGE
        if baseline_path.exists():
            try:
                entries = load_baseline(baseline_path)
            except ValueError as exc:
                err.write(f"repro lint: {exc}\n")
                return EXIT_USAGE
            findings, grandfathered, stale = match_baseline(findings, entries)
            stale_count = sum(stale.values())

    errors = [f for f in findings if f.severity == "error"]
    warnings = [f for f in findings if f.severity != "error"]

    if fmt == "json":
        payload = {
            "findings": [f.to_dict() for f in findings],
            "summary": {
                "errors": len(errors),
                "warnings": len(warnings),
                "baselined": len(grandfathered),
                "stale_baseline_entries": stale_count,
            },
        }
        out.write(json.dumps(payload, indent=2) + "\n")
    elif fmt == "github":
        for finding in findings:
            out.write(_gh_annotation(finding) + "\n")
        out.write(
            f"{len(errors)} error(s), {len(warnings)} warning(s), "
            f"{len(grandfathered)} baselined\n"
        )
    else:
        for finding in findings:
            out.write(finding.render() + "\n")
        summary = f"{len(errors)} error(s), {len(warnings)} warning(s)"
        if grandfathered:
            summary += f", {len(grandfathered)} baselined"
        if stale_count:
            summary += f", {stale_count} stale baseline entr(y/ies)"
        out.write(summary + "\n")

    if timings:
        _print_timings(rule_timings, elapsed, out)
    over_budget = False
    if budget is not None and elapsed > budget:
        over_budget = True
        message = (
            f"lint took {elapsed:.1f}s, over the {budget:.0f}s budget"
        )
        if fmt == "github":
            out.write(f"::error title=lint-budget::{_gh_escape(message)}\n")
        err.write(f"repro lint: {message}\n")

    return EXIT_FINDINGS if errors or over_budget else EXIT_CLEAN

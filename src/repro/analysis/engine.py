"""AST-rule engine: module discovery, suppressions, and rule dispatch.

The engine parses every ``.py`` file under the scanned paths into a
:class:`ModuleInfo` (AST + dotted module name + inline suppressions) and
hands the resulting :class:`Project` to each :class:`Rule`. Rules come in
two scopes: ``module`` rules visit one module at a time; ``project``
rules see the whole tree at once (cross-module invariants such as stats
parity and config coherence).

Findings can be silenced inline with ``# repro: lint-ignore[rule-name]``
(comma-separated names or ``*``) on the flagged line or on a
comment-only line directly above it, or grandfathered in a committed
baseline file (:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.callgraph import CallGraph

#: inline suppression marker: ``# repro: lint-ignore[rule-a,rule-b]``
SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-ignore\[([^\]]+)\]")

#: finding severities, most severe first; only ``error`` affects the exit code
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  # POSIX path relative to the project root
    line: int
    message: str
    severity: str = "error"

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity — deliberately line-independent so moving
        unrelated code inside a file does not churn the baseline."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> Dict[str, object]:
        """JSON payload for ``--format json`` and the baseline file."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "severity": self.severity,
        }

    def render(self) -> str:
        """One-line human-readable form."""
        return f"{self.path}:{self.line}: [{self.severity}] {self.rule}: {self.message}"


class _Suppression:
    """A parsed ``lint-ignore`` comment."""

    __slots__ = ("rules", "comment_only")

    def __init__(self, rules: Set[str], comment_only: bool):
        self.rules = rules
        self.comment_only = comment_only

    def covers(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules


class ModuleInfo:
    """One parsed source module: path, dotted name, AST, suppressions."""

    def __init__(self, path: Path, root: Path, name: str, source: str):
        self.path = path
        self.rel_path = _relpath(path, root)
        self.name = name
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.suppressions = _parse_suppressions(source)

    @property
    def is_package(self) -> bool:
        """True for a package ``__init__`` module."""
        return self.path.stem == "__init__"

    @property
    def unit(self) -> str:
        """The architecture unit: first dotted component below the root
        package (``repro.simulator.runner`` -> ``simulator``,
        ``repro.cli`` -> ``cli``, the root ``__init__`` -> ``""``)."""
        parts = self.name.split(".")
        return parts[1] if len(parts) > 1 else ""

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when an inline suppression covers ``rule`` at ``line``."""
        return self.suppression_line(rule, line) is not None

    def suppression_line(self, rule: str, line: int) -> Optional[int]:
        """The line of the suppression covering ``rule`` at ``line``
        (the flagged line itself or a comment-only line above), or
        None. Lets the engine track which suppressions actually fire."""
        here = self.suppressions.get(line)
        if here is not None and here.covers(rule):
            return line
        above = self.suppressions.get(line - 1)
        if above is not None and above.comment_only and above.covers(rule):
            return line - 1
        return None


class Project:
    """Every module discovered under the scanned paths."""

    def __init__(self, root: Path):
        self.root = root
        self.modules: Dict[str, ModuleInfo] = {}
        self._by_rel_path: Dict[str, ModuleInfo] = {}
        #: parse failures, reported as findings of the ``parse-error`` rule
        self.errors: List[Finding] = []
        self._callgraph: Optional["CallGraph"] = None

    def callgraph(self) -> "CallGraph":
        """The project call graph, built on first use and cached (the
        concurrency rules share one graph per lint run)."""
        if self._callgraph is None:
            from repro.analysis.callgraph import build_callgraph

            self._callgraph = build_callgraph(self)
        return self._callgraph

    def add(self, module: ModuleInfo) -> None:
        self.modules[module.name] = module
        self._by_rel_path[module.rel_path] = module

    def get_by_suffix(self, suffix: str) -> Optional[ModuleInfo]:
        """Find the module named ``suffix`` or ``*.suffix`` (lets rules
        name targets like ``simulator.machine`` independently of the
        root package name, so fixture trees work too)."""
        for name, module in self.modules.items():
            if name == suffix or name.endswith("." + suffix):
                return module
        return None

    def module_at(self, rel_path: str) -> Optional[ModuleInfo]:
        return self._by_rel_path.get(rel_path)

    def iter_modules(self) -> Iterator[ModuleInfo]:
        for name in sorted(self.modules):
            yield self.modules[name]


class Rule:
    """Base class for one lint rule.

    ``module`` scope rules implement :meth:`check_module`; ``project``
    scope rules implement :meth:`check_project`.
    """

    name: str = ""
    description: str = ""
    severity: str = "error"
    scope: str = "module"  # "module" | "project"

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    def finding(
        self,
        module: ModuleInfo,
        line: int,
        message: str,
        severity: Optional[str] = None,
    ) -> Finding:
        """Construct a finding attributed to ``module``."""
        return Finding(
            rule=self.name,
            path=module.rel_path,
            line=line,
            message=message,
            severity=severity if severity is not None else self.severity,
        )


# ----------------------------------------------------------------------
# discovery
# ----------------------------------------------------------------------
def find_project_root(paths: Sequence[Path]) -> Path:
    """Locate the repo root: the nearest ancestor of the first scanned
    path holding a ``pyproject.toml`` or ``.git``; else that path's own
    directory. Determines relative finding paths and the default
    baseline location."""
    start = paths[0].resolve() if paths else Path.cwd()
    probe = start if start.is_dir() else start.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").exists() or (candidate / ".git").exists():
            return candidate
    return probe


def module_name_of(path: Path) -> str:
    """Dotted module name, walking up through ``__init__.py`` packages."""
    path = path.resolve()
    parts: List[str] = []
    if path.stem != "__init__":
        parts.append(path.stem)
    package = path.parent
    while (package / "__init__.py").exists():
        parts.append(package.name)
        package = package.parent
    return ".".join(reversed(parts)) if parts else path.stem


def discover(
    paths: Sequence[Path], root: Optional[Path] = None
) -> Project:
    """Parse every ``.py`` file under ``paths`` into a :class:`Project`."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    if root is None:
        root = find_project_root(list(paths))
    project = Project(root)
    for path in sorted(set(p.resolve() for p in files)):
        try:
            source = path.read_text()
            module = ModuleInfo(path, root, module_name_of(path), source)
        except (OSError, SyntaxError, ValueError) as exc:
            project.errors.append(
                Finding(
                    rule="parse-error",
                    path=_relpath(path, root),
                    line=getattr(exc, "lineno", None) or 1,
                    message=f"cannot parse module: {exc}",
                )
            )
            continue
        project.add(module)
    return project


# ----------------------------------------------------------------------
# rule dispatch
# ----------------------------------------------------------------------
def run_rules(
    project: Project,
    rules: Sequence[Rule],
    timings: Optional[Dict[str, float]] = None,
) -> List[Finding]:
    """Run every rule; return suppression-filtered, sorted findings.

    Suppressions that silence at least one finding are *used*; the rest
    are reported as warning-severity ``unused-suppression`` findings —
    but only when every rule the marker names actually ran (a
    ``--select`` subset must not flag markers for the rules it skipped),
    and never for ``*`` markers (what they would cover is unknowable).

    ``timings``, when given, is filled with per-rule wall seconds
    (plus ``"<discover>"`` if the caller pre-populated it).
    """
    findings: List[Finding] = list(project.errors)
    for rule in rules:
        start = time.perf_counter()
        if rule.scope == "project":
            findings.extend(rule.check_project(project))
        else:
            for module in project.iter_modules():
                findings.extend(rule.check_module(module, project))
        if timings is not None:
            timings[rule.name] = (timings.get(rule.name, 0.0)
                                  + time.perf_counter() - start)
    used: Set[Tuple[str, int]] = set()
    kept = [f for f in findings if not _suppressed(project, f, used)]
    executed = {rule.name for rule in rules} | {"parse-error"}
    unused = [f for f in _unused_suppressions(project, used, executed)
              if not _suppressed(project, f, used)]
    kept.extend(unused)
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return kept


def _suppressed(
    project: Project, finding: Finding, used: Set[Tuple[str, int]]
) -> bool:
    module = project.module_at(finding.path)
    if module is None:
        return False
    line = module.suppression_line(finding.rule, finding.line)
    if line is None:
        return False
    used.add((finding.path, line))
    return True


def _unused_suppressions(
    project: Project, used: Set[Tuple[str, int]], executed: Set[str]
) -> Iterator[Finding]:
    """Warning findings for ``lint-ignore`` markers that silenced
    nothing in this run (dead suppressions must not accumulate)."""
    for module in project.iter_modules():
        for line in sorted(module.suppressions):
            suppression = module.suppressions[line]
            if (module.rel_path, line) in used:
                continue
            if "*" in suppression.rules:
                continue
            if not suppression.rules <= executed:
                continue
            yield Finding(
                rule="unused-suppression",
                path=module.rel_path,
                line=line,
                message=("suppression for %s silences nothing; "
                         "remove the stale lint-ignore marker"
                         % ", ".join(sorted(suppression.rules))),
                severity="warning",
            )


# ----------------------------------------------------------------------
# shared AST helpers used by the rule modules
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """Render an ``Attribute``/``Name`` chain as ``a.b.c`` (None if the
    chain bottoms out in anything but a plain name)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def from_import_map(tree: ast.Module) -> Dict[str, str]:
    """Map names bound by ``from X import Y [as Z]`` to ``X.Y``."""
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name != "*":
                    out[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return out


def iter_functions(tree: ast.AST) -> Iterator[ast.AST]:
    """Yield every function/async-function definition, at any depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def class_methods(classdef: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    """Yield the class's directly-defined methods."""
    for node in classdef.body:
        if isinstance(node, ast.FunctionDef):
            yield node


def find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    """Find a top-level class definition by name."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def ann_field_names(classdef: ast.ClassDef) -> List[str]:
    """Names of the class body's annotated assignments (dataclass fields)."""
    return [
        node.target.id
        for node in classdef.body
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name)
    ]


def _relpath(path: Path, root: Path) -> str:
    return Path(os.path.relpath(path.resolve(), root)).as_posix()


def _parse_suppressions(source: str) -> Dict[int, _Suppression]:
    out: Dict[int, _Suppression] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        out[lineno] = _Suppression(rules, text.lstrip().startswith("#"))
    return out

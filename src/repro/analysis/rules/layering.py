"""Import-layering rule: enforce the architecture DAG.

Each unit (first dotted component below the root package) may import
only the units beneath it. The table encodes the intended architecture:
``utils`` at the bottom; the hardware model (``memory``/``branch``/
``frontend``/``backend``/``prefetchers``/``core``) above ``workloads``;
``simulator`` orchestrating the model; ``experiments``/``bench``/
``service``/``cli`` as drivers on top. Crucially, the model and the
simulator never import the drivers (``experiments``, ``reporting``,
``bench``, ``service``, ``cli``), and ``workloads`` never import the
simulator — workload generation must not be able to observe simulation
state, and a simulation must not be able to observe the service that
scheduled it.

``telemetry`` sits beside ``utils`` at the bottom so every layer may
hold a telemetry handle; *which* telemetry module a hot path may import
is further narrowed by the ``telemetry-noop-import`` rule (only
``telemetry.handle``, the zero-overhead no-op side — see
:mod:`repro.analysis.rules.telemetry_imports`).

``traces`` (external-trace ingestion) may build on ``workloads`` and
archive blobs through ``service``, but nothing in the model or the
simulator may import it: ingested benchmarks reach the simulator only
through the provider hook in ``workloads.profiles``, which loads
``repro.traces.registry`` by dotted name at lookup time — deliberately
leaving no static import edge for this rule to see.

Units absent from the table (currently only ``cli`` and the root
package's ``__init__``/``__main__`` facade) are unconstrained. Adding a
new subpackage should come with a row here.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.analysis.engine import Finding, ModuleInfo, Project, Rule

_MODEL_DEPS = frozenset(
    {"utils", "telemetry", "workloads", "branch", "memory", "frontend"}
)

#: unit -> units it may import (itself is always allowed)
ALLOWED: Dict[str, FrozenSet[str]] = {
    "utils": frozenset(),
    "telemetry": frozenset({"utils"}),
    "workloads": frozenset({"utils"}),
    "memory": frozenset({"utils", "telemetry"}),
    "backend": frozenset({"utils", "telemetry"}),
    "branch": frozenset({"utils", "telemetry", "workloads"}),
    "frontend": frozenset(
        {"utils", "telemetry", "workloads", "branch", "memory"}
    ),
    "prefetchers": _MODEL_DEPS | frozenset({"core"}),
    "core": _MODEL_DEPS | frozenset({"prefetchers"}),
    "energy": frozenset({"utils", "core"}),
    "simulator": _MODEL_DEPS | frozenset({"backend", "prefetchers", "core"}),
    "reporting": frozenset({"utils"}),
    "reporting_svg": frozenset({"utils"}),
    "analysis": frozenset({"utils"}),
    "bench": _MODEL_DEPS | frozenset({"backend", "prefetchers", "core", "simulator"}),
    # the dashboard is pure presentation: the service embeds it, so it
    # may depend on nothing that could close a cycle back to the
    # service — only the metrics registry and utils
    "dash": frozenset({"utils", "telemetry"}),
    # the serving layer wraps the simulator (store keys, runner
    # internals); nothing in the model or the simulator may import it,
    # so a simulation can never observe the service that scheduled it
    "service": _MODEL_DEPS | frozenset(
        {"backend", "prefetchers", "core", "simulator", "dash"}
    ),
    # sweeps orchestrate the store, runner, and service client; the
    # model/simulator must never know it is being swept
    "sweeps": _MODEL_DEPS | frozenset(
        {"backend", "prefetchers", "core", "simulator", "service"}
    ),
    # trace ingestion builds workloads (layouts + replay streams) and
    # archives blobs in the service store; the model and the simulator
    # must never import it — they see only the CodeLayout/walker the
    # registry hands back through workloads.profiles' provider hook
    # (loaded by dotted name precisely so no static edge exists here)
    "traces": frozenset({"utils", "telemetry", "workloads", "service"}),
    "experiments": frozenset(
        {
            "utils",
            "telemetry",
            "workloads",
            "memory",
            "branch",
            "frontend",
            "backend",
            "prefetchers",
            "core",
            "energy",
            "simulator",
            "reporting",
            "reporting_svg",
            "service",
            "sweeps",
        }
    ),
}


class LayeringRule(Rule):
    """Flag imports that violate the architecture DAG."""

    name = "layering-forbidden-import"
    description = (
        "each unit may import only the units beneath it in the "
        "architecture DAG (simulator/core never import experiments/"
        "reporting/cli; workloads never import the simulator)"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        own_unit = module.unit
        if own_unit == "" or own_unit not in ALLOWED:
            return
        allowed = ALLOWED[own_unit]
        root_package = module.name.split(".", 1)[0]
        for lineno, target in _internal_imports(module, root_package):
            target_unit = target.split(".")[1] if "." in target else ""
            if target_unit == "":
                # importing the root facade pulls in every layer at once
                yield self.finding(
                    module,
                    lineno,
                    f"'{own_unit}' imports the root package facade "
                    f"'{root_package}', which re-exports every layer; "
                    f"import the concrete module instead",
                )
            elif target_unit != own_unit and target_unit not in allowed:
                yield self.finding(
                    module,
                    lineno,
                    f"'{own_unit}' must not import '{target_unit}' "
                    f"(allowed: {', '.join(sorted(allowed)) or 'nothing'})",
                )


def _internal_imports(
    module: ModuleInfo, root_package: str
) -> List[Tuple[int, str]]:
    """(line, absolute dotted target) for imports within the root package."""
    out: List[Tuple[int, str]] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == root_package:
                    out.append((node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _resolve_relative(module, node.level, node.module)
                if base:
                    out.append((node.lineno, base))
            elif node.module and node.module.split(".")[0] == root_package:
                out.append((node.lineno, node.module))
    return out


def _resolve_relative(module: ModuleInfo, level: int, target: Optional[str]) -> str:
    """Absolute dotted name of a relative import's base package."""
    parts = module.name.split(".")
    # level 1 means the module's own package: all parts for a package
    # __init__, all but the last for a plain module; each extra level
    # climbs one package higher
    own = parts if module.is_package else parts[:-1]
    base = own[: len(own) - (level - 1)] if len(own) >= level - 1 else []
    if target:
        base = base + str(target).split(".")
    return ".".join(base)

"""Determinism rules: no entropy sources on stat-affecting paths.

Every stochastic component of the simulator draws from a named, seeded
stream (``repro.utils.derive_rng``); reproduction fidelity depends on no
module reintroducing the global ``random`` state, wall-clock reads, or
hash-order iteration. These rules apply only to the stat-affecting
units (``simulator``, ``core``, ``frontend``, ``branch``, ``memory``,
``prefetchers``, ``backend``) — reporting, experiments drivers, and the
bench harness may read clocks freely.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    dotted_name,
    from_import_map,
)

#: units whose code can perturb ``SimulationStats``
STAT_AFFECTING_UNITS = frozenset(
    {"simulator", "core", "frontend", "branch", "memory", "prefetchers", "backend"}
)

#: dotted suffixes of banned wall-clock / entropy reads
WALLCLOCK_BANNED = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.randbelow",
        "secrets.choice",
    }
)

#: ``random.<fn>`` module-level functions that use the shared global RNG
GLOBAL_RNG_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "seed",
    }
)


def _stat_affecting(module: ModuleInfo) -> bool:
    return module.unit in STAT_AFFECTING_UNITS


def _resolved_name(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Dotted name of a reference, with ``from X import Y`` resolved."""
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    if head in imports:
        return imports[head] + ("." + rest if rest else "")
    return name


def _matches_banned(name: str, banned: frozenset) -> Optional[str]:
    for entry in banned:
        if name == entry or name.endswith("." + entry):
            return entry
    return None


class WallClockRule(Rule):
    """Ban wall-clock and OS-entropy reads in stat-affecting modules."""

    name = "determinism-wallclock"
    description = (
        "time/datetime/os.urandom/uuid reads are banned in stat-affecting "
        "modules; stats must be a pure function of (layout, profile, seed)"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        if not _stat_affecting(module):
            return
        imports = from_import_map(module.tree)
        for node in ast.walk(module.tree):
            # flag the *maximal* reference chain once, call or not (a bare
            # ``default_factory=time.time`` is as nondeterministic as a call)
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            name = _resolved_name(node, imports)
            if name is None:
                continue
            hit = _matches_banned(name, WALLCLOCK_BANNED)
            if hit is None:
                continue
            yield self.finding(
                module,
                node.lineno,
                f"reference to wall-clock/entropy source '{hit}'; simulation "
                f"state must derive only from the run's seed",
            )


class UnseededRngRule(Rule):
    """Ban the global ``random`` module state and unseeded ``Random()``."""

    name = "determinism-unseeded-rng"
    description = (
        "module-level random.* draws and unseeded random.Random() are "
        "banned; derive a named stream via repro.utils.derive_rng"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        if not _stat_affecting(module):
            return
        imports = from_import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _resolved_name(node.func, imports)
            if name is None:
                continue
            if name == "random.Random" and not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node.lineno,
                    "unseeded random.Random() (seeds from OS entropy); pass "
                    "an explicit seed or use repro.utils.derive_rng",
                )
            elif name.startswith("random.") and name[7:] in GLOBAL_RNG_FUNCS:
                yield self.finding(
                    module,
                    node.lineno,
                    f"'{name}()' uses the shared global RNG; draw from a "
                    f"seeded stream via repro.utils.derive_rng instead",
                )


def _is_set_expr(node: ast.AST, local_sets: Set[str], attr_sets: Set[str]) -> bool:
    """Syntactically set-typed: literal/comprehension/constructor, a local
    tracked as a set, or a ``self.<attr>`` the class tracks as a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.Name) and node.id in local_sets:
        return True
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in attr_sets
    ):
        return True
    return False


def _annotation_is_set(annotation: ast.AST) -> bool:
    name = dotted_name(
        annotation.value if isinstance(annotation, ast.Subscript) else annotation
    )
    if name is None:
        return False
    leaf = name.rsplit(".", 1)[-1]
    return leaf in ("Set", "set", "FrozenSet", "frozenset", "MutableSet", "AbstractSet")


def _set_attrs_of_class(classdef: ast.ClassDef) -> Set[str]:
    """``self.<attr>`` names a class's ``__init__`` binds to sets."""
    attrs: Set[str] = set()
    for method in classdef.body:
        if not isinstance(method, ast.FunctionDef) or method.name != "__init__":
            continue
        for node in ast.walk(method):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                if _annotation_is_set(node.annotation):
                    value = None  # annotation alone decides
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
                    continue
            if (
                target is not None
                and value is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and _is_set_expr(value, set(), set())
            ):
                attrs.add(target.attr)
    return attrs


class SetIterationRule(Rule):
    """Flag iteration over sets without ``sorted()`` in stat modules.

    Set iteration order depends on insertion history and (for strings)
    ``PYTHONHASHSEED``; any stat computed from it is silently
    irreproducible. ``sorted(s)``/``min``/``max``/``sum`` consumers are
    naturally exempt (the flagged expression is the loop iterable
    itself), as are set-builder comprehensions (``{f(x) for x in s}``),
    whose result is order-free.
    """

    name = "determinism-set-iteration"
    description = (
        "iterating a set in a stat-affecting module without sorted() "
        "makes stats depend on hash/insertion order"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        if not _stat_affecting(module):
            return
        yield from self._scan(
            module, module.tree, self._local_sets(module.tree), set()
        )

    def _local_sets(self, scope: ast.AST) -> Set[str]:
        """Names bound to set expressions anywhere inside ``scope``."""
        names: Set[str] = set()
        for node in ast.walk(scope):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_set_expr(node.value, set(), set())
            ):
                names.add(node.targets[0].id)
        return names

    def _scan(
        self,
        module: ModuleInfo,
        node: ast.AST,
        local_sets: Set[str],
        attr_sets: Set[str],
    ) -> Iterator[Finding]:
        iterables: List[Tuple[int, ast.expr]] = []
        if isinstance(node, ast.For):
            iterables.append((node.lineno, node.iter))
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            iterables.extend((node.lineno, gen.iter) for gen in node.generators)
        for lineno, iterable in iterables:
            if _is_set_expr(iterable, local_sets, attr_sets):
                yield self.finding(
                    module,
                    lineno,
                    "iteration over a set; wrap in sorted() (or iterate a "
                    "deterministically-ordered structure) so results do not "
                    "depend on hash order",
                )
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from self._scan(
                    module, child, set(), _set_attrs_of_class(child)
                )
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._scan(
                    module, child, self._local_sets(child), attr_sets
                )
            else:
                yield from self._scan(module, child, local_sets, attr_sets)

"""Config-coherence rules: reads and definitions must agree.

The experiment matrix drives the simulator entirely through two frozen
dataclasses — ``MachineConfig`` (``simulator/config.py``) and
``HierarchyConfig`` (``memory/hierarchy.py``). Because both flow through
plain dataclass construction, a typo'd field read (``cfg.fetch_witdh``)
or a constructor keyword for a field that no longer exists surfaces only
at runtime, possibly hours into a sweep.

Two project-scope rules share one analysis:

* ``config-unknown-field`` (error) — an attribute read on a tracked
  config binding, or a constructor/``dataclasses.replace`` keyword, that
  names no field (or method) of the config class.
* ``config-unused-field`` (warning) — a declared field never read (or
  passed to a constructor) anywhere in the scanned tree; likely a
  leftover from a removed mechanism. Warning severity: it cannot crash,
  it just rots.

Bindings are tracked conservatively — only names provably tied to a
config class: parameters annotated with the class (``Optional[...]`` and
string annotations included), locals assigned from its constructor /
classmethods / ``dataclasses.replace`` / already-tracked names, ``self``
attributes bound in ``__init__`` from tracked expressions, and ``self``
inside the config class's own methods. Anything else (other objects
that happen to be called ``config``) is ignored rather than guessed at.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    ann_field_names,
    dotted_name,
    find_class,
    from_import_map,
)

#: (module suffix, class name) of each tracked config dataclass
CONFIG_CLASSES: Tuple[Tuple[str, str], ...] = (
    ("simulator.config", "MachineConfig"),
    ("memory.hierarchy", "HierarchyConfig"),
)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


class _ConfigClassInfo:
    """Field/member inventory of one tracked config class."""

    __slots__ = ("name", "module", "classdef", "fields", "members", "field_lines")

    def __init__(self, name: str, module: ModuleInfo, classdef: ast.ClassDef):
        self.name = name
        self.module = module
        self.classdef = classdef
        self.fields: Set[str] = set(ann_field_names(classdef))
        self.field_lines: Dict[str, int] = {
            node.target.id: node.lineno
            for node in classdef.body
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name)
        }
        #: attribute names legal on an instance: fields plus methods,
        #: properties, and class-level constants
        self.members: Set[str] = set(self.fields)
        for node in classdef.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.members.add(node.name)
            elif isinstance(node, ast.Assign):
                self.members.update(
                    t.id for t in node.targets if isinstance(t, ast.Name)
                )


class _Analysis:
    """Shared result: unknown-member uses and the project-wide used-field set."""

    __slots__ = ("classes", "unknown", "used")

    def __init__(self) -> None:
        self.classes: Dict[str, _ConfigClassInfo] = {}
        #: (module, line, class name, attribute, kind); kind is
        #: "attribute" or "keyword"
        self.unknown: List[Tuple[ModuleInfo, int, str, str, str]] = []
        self.used: Dict[str, Set[str]] = {}


def _annotation_mentions(annotation: Optional[ast.AST], class_name: str) -> bool:
    """True when ``class_name`` appears anywhere in the annotation,
    including inside ``Optional[...]`` and string annotations."""
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id == class_name:
            return True
        if isinstance(node, ast.Attribute) and node.attr == class_name:
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if class_name in node.value:
                return True
    return False


def _walk_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s subtree without descending into nested
    function/class definitions (the nested defs themselves are yielded
    so callers can recurse with fresh scopes)."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        if node is root or not isinstance(node, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(node))


class _ModuleScanner:
    """Track config bindings and record member uses in one module."""

    def __init__(self, module: ModuleInfo, analysis: _Analysis):
        self.module = module
        self.analysis = analysis
        self.imports = from_import_map(module.tree)

    def scan(self) -> None:
        self._process_scope(list(self.module.tree.body), {}, {})

    # -- binding resolution -------------------------------------------
    def _call_class(
        self,
        node: ast.Call,
        env: Dict[str, str],
        self_env: Dict[str, str],
    ) -> Optional[str]:
        """Class name when ``node`` constructs a tracked config (direct
        constructor, a classmethod on the class, or dataclasses.replace
        on a tracked binding)."""
        name = dotted_name(node.func)
        if name is None:
            return None
        head = name.split(".")[0]
        resolved = self.imports.get(head, head)
        for cls in self.analysis.classes:
            if resolved == cls or resolved.endswith("." + cls):
                return cls
            if name == cls or name.endswith("." + cls):
                return cls
            # ``HierarchyConfig.paper_table1()``-style classmethods
            parts = name.split(".")
            if len(parts) >= 2 and parts[-2] == cls:
                return cls
        if name.rsplit(".", 1)[-1] == "replace" and node.args:
            return self._expr_class(node.args[0], env, self_env)
        return None

    def _expr_class(
        self,
        expr: ast.AST,
        env: Dict[str, str],
        self_env: Dict[str, str],
    ) -> Optional[str]:
        """Config class of an expression, or None if not provably one."""
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if expr.value.id == "self":
                return self_env.get(expr.attr)
            return None
        if isinstance(expr, ast.Call):
            cls = self._call_class(expr, env, self_env)
            if cls is not None:
                return cls
            # methods returning the class itself: cfg.scaled(...)
            if isinstance(expr.func, ast.Attribute):
                base = self._expr_class(expr.func.value, env, self_env)
                if base is not None:
                    info = self.analysis.classes[base]
                    if expr.func.attr in (info.members - info.fields):
                        return base
            return None
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                cls = self._expr_class(value, env, self_env)
                if cls is not None:
                    return cls
        if isinstance(expr, ast.IfExp):
            for value in (expr.body, expr.orelse):
                cls = self._expr_class(value, env, self_env)
                if cls is not None:
                    return cls
        return None

    # -- scope processing ---------------------------------------------
    def _process_scope(
        self,
        stmts: List[ast.stmt],
        env: Dict[str, str],
        self_env: Dict[str, str],
    ) -> None:
        env = dict(env)
        plain = [
            stmt for stmt in stmts if not isinstance(stmt, _SCOPE_NODES)
        ]
        # fixed point so aliases resolve regardless of statement order
        # (``cfg = base`` above/below ``base = MachineConfig(...)``)
        changed = True
        while changed:
            changed = False
            for stmt in plain:
                for target_name, cls in self._scope_assignments(
                    stmt, env, self_env
                ):
                    if env.get(target_name) != cls:
                        env[target_name] = cls
                        changed = True
        nested: List[ast.AST] = []
        for stmt in stmts:
            if isinstance(stmt, _SCOPE_NODES):
                nested.append(stmt)
            else:
                nested.extend(self._scan_uses(stmt, env, self_env))
        for node in nested:
            if isinstance(node, ast.ClassDef):
                self._process_class(node, env)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._process_scope(
                    list(node.body), {**env, **self._param_env(node)}, self_env
                )

    def _process_class(self, classdef: ast.ClassDef, env: Dict[str, str]) -> None:
        class_self_env = self._class_self_env(classdef, env)
        is_config = classdef.name in self.analysis.classes
        for stmt in classdef.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_env = {**env, **self._param_env(stmt)}
                if is_config and stmt.args.args and not any(
                    isinstance(deco, ast.Name)
                    and deco.id in ("staticmethod", "classmethod")
                    for deco in stmt.decorator_list
                ):
                    # ``self`` inside the config class's own methods
                    method_env.setdefault(stmt.args.args[0].arg, classdef.name)
                self._process_scope(list(stmt.body), method_env, class_self_env)
            elif isinstance(stmt, ast.ClassDef):
                self._process_class(stmt, env)
            else:
                for node in self._scan_uses(stmt, env, class_self_env):
                    if isinstance(node, ast.ClassDef):
                        self._process_class(node, env)

    def _scope_assignments(
        self,
        stmt: ast.stmt,
        env: Dict[str, str],
        self_env: Dict[str, str],
    ) -> Iterator[Tuple[str, str]]:
        for node in _walk_scope(stmt):
            if node is not stmt and isinstance(node, _SCOPE_NODES):
                continue
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            if isinstance(target, ast.Name) and value is not None:
                cls = self._expr_class(value, env, self_env)
                if cls is not None:
                    yield target.id, cls

    def _scan_uses(
        self,
        stmt: ast.stmt,
        env: Dict[str, str],
        self_env: Dict[str, str],
    ) -> List[ast.AST]:
        """Record member uses in ``stmt``; return nested defs skipped
        (the caller recurses into them with fresh scopes)."""
        nested: List[ast.AST] = []
        for node in _walk_scope(stmt):
            if node is not stmt and isinstance(node, _SCOPE_NODES):
                nested.append(node)
                continue
            if isinstance(node, ast.Attribute):
                cls = self._expr_class(node.value, env, self_env)
                if cls is not None and not node.attr.startswith("_"):
                    self._record_use(node, cls, node.attr)
            elif isinstance(node, ast.Call):
                cls = self._call_class(node, env, self_env)
                if cls is not None:
                    info = self.analysis.classes[cls]
                    for keyword in node.keywords:
                        if keyword.arg is None:
                            continue
                        if keyword.arg in info.fields:
                            self.analysis.used[cls].add(keyword.arg)
                        else:
                            self.analysis.unknown.append(
                                (
                                    self.module,
                                    node.lineno,
                                    cls,
                                    keyword.arg,
                                    "keyword",
                                )
                            )
        return nested

    def _record_use(self, node: ast.Attribute, cls: str, attr: str) -> None:
        info = self.analysis.classes[cls]
        if attr in info.fields:
            self.analysis.used[cls].add(attr)
        elif attr not in info.members:
            self.analysis.unknown.append(
                (self.module, node.lineno, cls, attr, "attribute")
            )

    def _param_env(
        self, func: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> Dict[str, str]:
        env: Dict[str, str] = {}
        args = func.args
        all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in all_args:
            for cls in self.analysis.classes:
                if _annotation_mentions(arg.annotation, cls):
                    env[arg.arg] = cls
        return env

    def _class_self_env(
        self, classdef: ast.ClassDef, env: Dict[str, str]
    ) -> Dict[str, str]:
        """``self.<attr>`` bindings established in ``__init__``."""
        self_env: Dict[str, str] = {}
        for method in classdef.body:
            if not isinstance(method, ast.FunctionDef) or method.name != "__init__":
                continue
            init_env = {**env, **self._param_env(method)}
            # combined fixed point: ``self.config = config or ...`` and
            # ``cfg = self.config`` feed each other, in either order
            changed = True
            while changed:
                changed = False
                for stmt in method.body:
                    if isinstance(stmt, _SCOPE_NODES):
                        continue
                    for name, cls in self._scope_assignments(
                        stmt, init_env, self_env
                    ):
                        if init_env.get(name) != cls:
                            init_env[name] = cls
                            changed = True
                    for node in _walk_scope(stmt):
                        if node is not stmt and isinstance(node, _SCOPE_NODES):
                            continue
                        if (
                            isinstance(node, ast.Assign)
                            and len(node.targets) == 1
                            and isinstance(node.targets[0], ast.Attribute)
                            and isinstance(node.targets[0].value, ast.Name)
                            and node.targets[0].value.id == "self"
                        ):
                            cls = self._expr_class(node.value, init_env, self_env)
                            if cls is not None and self_env.get(
                                node.targets[0].attr
                            ) != cls:
                                self_env[node.targets[0].attr] = cls
                                changed = True
        return self_env


def _analyze(project: Project) -> Optional[_Analysis]:
    analysis = _Analysis()
    for suffix, class_name in CONFIG_CLASSES:
        module = project.get_by_suffix(suffix)
        if module is None:
            continue
        classdef = find_class(module.tree, class_name)
        if classdef is None:
            continue
        analysis.classes[class_name] = _ConfigClassInfo(class_name, module, classdef)
        analysis.used[class_name] = set()
    if not analysis.classes:
        return None
    for module in project.iter_modules():
        _ModuleScanner(module, analysis).scan()
    return analysis


class ConfigUnknownFieldRule(Rule):
    """Attribute reads / constructor keywords must name real fields."""

    name = "config-unknown-field"
    description = (
        "an attribute or constructor keyword on MachineConfig/"
        "HierarchyConfig must name a declared field"
    )
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        analysis = _analyze(project)
        if analysis is None:
            return
        for module, lineno, cls, attr, kind in analysis.unknown:
            yield self.finding(
                module,
                lineno,
                f"{kind} '{attr}' does not exist on {cls} "
                f"(defined in {analysis.classes[cls].module.rel_path})",
            )


class ConfigUnusedFieldRule(Rule):
    """Declared config fields should be read somewhere in the tree."""

    name = "config-unused-field"
    description = (
        "a MachineConfig/HierarchyConfig field never read anywhere in "
        "the scanned tree is likely dead configuration"
    )
    severity = "warning"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        analysis = _analyze(project)
        if analysis is None:
            return
        for cls in sorted(analysis.classes):
            info = analysis.classes[cls]
            for field_name in sorted(info.fields - analysis.used[cls]):
                yield self.finding(
                    info.module,
                    info.field_lines.get(field_name, info.classdef.lineno),
                    f"field '{cls}.{field_name}' is never read in the "
                    f"scanned tree; remove it or wire it up",
                )

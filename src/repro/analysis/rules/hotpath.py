"""Hot-path hygiene rules: ``__slots__`` on per-event record classes.

The simulator allocates record objects (FTQ entries, cache line states,
BTB/TLB entries, FEC events) millions of times per run; a missing
``__slots__`` costs a per-instance ``__dict__`` and slower attribute
access on exactly the paths the bench gate watches (DESIGN.md §10).

Two rules:

* ``hotpath-missing-slots`` — a class defined in a hot-path module and
  *allocated inside a method other than* ``__init__`` (i.e. per event,
  not once at construction) must declare ``__slots__`` — either
  literally or via the ``@dataclass(**SLOTTED)`` /
  ``@dataclass(slots=True)`` idiom. One-shot manager objects built in
  ``__init__`` (predictors, caches, the machine itself) are exempt:
  their per-instance dict is irrelevant and slotting them would break
  ad-hoc attachment in tests.
* ``hotpath-attr-outside-init`` — a slotted class must not assign new
  ``self`` attributes outside ``__init__``/``__post_init__``; on 3.10+
  that raises at runtime, and on 3.9 (where ``SLOTTED`` degrades to a
  plain dataclass) it silently grows the instance.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    class_methods,
)

#: units whose modules are hot-path (per-cycle or per-event code)
HOT_UNITS = frozenset(
    {"frontend", "branch", "memory", "core", "prefetchers", "backend"}
)

#: extra hot-path modules outside those units
HOT_MODULE_SUFFIXES = ("simulator.machine", "simulator.fastcore")

#: base classes that exempt a class from the slots requirement
EXEMPT_BASES = frozenset(
    {
        "Enum",
        "IntEnum",
        "StrEnum",
        "Flag",
        "IntFlag",
        "Exception",
        "BaseException",
        "Protocol",
        "NamedTuple",
        "TypedDict",
        "ABC",
    }
)

_INIT_METHODS = ("__init__", "__post_init__")


def is_hot_module(module: ModuleInfo) -> bool:
    """True for modules on the simulator's per-cycle/per-event paths."""
    if module.unit in HOT_UNITS:
        return True
    return any(
        module.name == suffix or module.name.endswith("." + suffix)
        for suffix in HOT_MODULE_SUFFIXES
    )


def class_is_slotted(classdef: ast.ClassDef) -> bool:
    """Literal ``__slots__`` or the slotted-dataclass decorator idiom."""
    for node in classdef.body:
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in node.targets
            ):
                return True
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "__slots__"
        ):
            return True
    for deco in classdef.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        for keyword in deco.keywords:
            if keyword.arg == "slots" and (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
            if keyword.arg is None and isinstance(keyword.value, ast.Name):
                # ``@dataclass(**SLOTTED)``: slots on 3.10+, the sanctioned
                # downgrade path on 3.9
                if keyword.value.id == "SLOTTED":
                    return True
    return False


def _is_dataclass(classdef: ast.ClassDef) -> bool:
    for deco in classdef.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _is_exempt(classdef: ast.ClassDef) -> bool:
    for base in classdef.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else None
        )
        if name in EXEMPT_BASES:
            return True
    return False


class _AllocSiteVisitor(ast.NodeVisitor):
    """Record class-name calls made outside ``__init__``/``__post_init__``."""

    def __init__(self, class_names: Set[str]):
        self.class_names = class_names
        self.sites: Dict[str, Tuple[str, int]] = {}  # class -> (func, line)
        self._func_stack: List[str] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in self.class_names
            and self._func_stack
            and self._func_stack[-1] not in _INIT_METHODS
            and node.func.id not in self.sites
        ):
            self.sites[node.func.id] = (self._func_stack[-1], node.lineno)
        self.generic_visit(node)


class MissingSlotsRule(Rule):
    """Per-event record classes in hot-path modules must be slotted."""

    name = "hotpath-missing-slots"
    description = (
        "a class allocated per event in a hot-path module must declare "
        "__slots__ (or use @dataclass(**SLOTTED))"
    )
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        # pass 1: every class defined in a hot module, with slots status
        registry: Dict[str, Tuple[ModuleInfo, ast.ClassDef, bool]] = {}
        hot_modules = [m for m in project.iter_modules() if is_hot_module(m)]
        for module in hot_modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and not _is_exempt(node):
                    registry[node.name] = (module, node, class_is_slotted(node))
        unslotted = {name for name, info in registry.items() if not info[2]}
        if not unslotted:
            return
        # pass 2: allocation sites of those classes outside __init__
        for module in hot_modules:
            visitor = _AllocSiteVisitor(unslotted)
            visitor.visit(module.tree)
            for class_name, (func, lineno) in sorted(visitor.sites.items()):
                def_module, classdef, _ = registry[class_name]
                yield self.finding(
                    def_module,
                    classdef.lineno,
                    f"class '{class_name}' is allocated per event "
                    f"({module.rel_path}:{lineno} in {func}()) but declares "
                    f"no __slots__; add __slots__ or @dataclass(**SLOTTED)",
                )
                unslotted.discard(class_name)


class AttrOutsideInitRule(Rule):
    """Slotted classes must not grow attributes outside ``__init__``."""

    name = "hotpath-attr-outside-init"
    description = (
        "a slotted class must assign every attribute in __init__/"
        "__post_init__; late assignments raise under __slots__ on 3.10+"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        if not is_hot_module(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and class_is_slotted(node):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleInfo, classdef: ast.ClassDef
    ) -> Iterable[Finding]:
        declared = self._declared_attrs(classdef)
        if declared is None:
            return
        for method in class_methods(classdef):
            if method.name in _INIT_METHODS:
                continue
            for target, lineno in _self_assignments(method):
                if target not in declared:
                    yield self.finding(
                        module,
                        lineno,
                        f"'{classdef.name}.{method.name}' assigns "
                        f"'self.{target}', which is not declared in "
                        f"__slots__/__init__; slotted instances must not "
                        f"grow attributes after construction",
                    )

    def _declared_attrs(self, classdef: ast.ClassDef) -> Optional[Set[str]]:
        declared: Set[str] = set()
        for node in classdef.body:
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                declared.add(node.target.id)  # dataclass fields
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if target.id == "__slots__":
                            literal = _slots_literal(node.value)
                            if literal is None:
                                return None  # dynamic __slots__: skip class
                            declared.update(literal)
                        else:
                            declared.add(target.id)
        for method in class_methods(classdef):
            if method.name in _INIT_METHODS:
                declared.update(t for t, _ in _self_assignments(method))
        return declared


def _slots_literal(node: ast.expr) -> Optional[List[str]]:
    if not isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return None
    names: List[str] = []
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant) and isinstance(element.value, str)
        ):
            return None
        names.append(element.value)
    return names


def _self_assignments(func: ast.FunctionDef) -> List[Tuple[str, int]]:
    """(attribute, line) for every plain ``self.x = ...`` in ``func``."""
    out: List[Tuple[str, int]] = []
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                out.append((target.attr, node.lineno))
    return out

"""Fast-core allocation rule: no per-event objects in the hot loops.

The flat-array core (DESIGN.md §15) exists precisely because per-entry
record objects — :class:`FTQEntry` per fetched block,
:class:`ControlFlowEvent` per walked edge — dominate the reference
core's profile. Its contract is that FTQ slots, backend slots, and
control-flow steps live in preallocated parallel arrays, with exactly
two ``FTQEntry`` *proxy* objects built once in ``__init__`` and reused
(their fields overwritten per call) wherever a prefetcher or hook
demands the object API.

This rule pins that down structurally: inside
``simulator.fastcore``, calling ``FTQEntry(...)`` or
``ControlFlowEvent(...)`` anywhere other than ``__init__`` is flagged.
A future edit that "fixes" a fast-core bug by materializing a real
entry in the decode or retire path would silently reintroduce the
allocation rate the backend was built to eliminate — long before the
bench regression gate could attribute the slowdown.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Tuple

from repro.analysis.engine import Finding, ModuleInfo, Project, Rule

#: the fast core module (suffix-matched, like every module anchor here)
FASTCORE_MODULE_SUFFIX = "simulator.fastcore"

#: per-event record classes the flat arrays replace
FORBIDDEN_ALLOCS = frozenset({"FTQEntry", "ControlFlowEvent"})

#: construction-time methods where proxy allocation is sanctioned
ALLOWED_FUNCS = frozenset({"__init__", "__post_init__"})


class FastcoreAllocRule(Rule):
    """Forbid per-event record allocation inside the fast core."""

    name = "fastcore-no-per-event-alloc"
    description = (
        "the flat-array core must not allocate FTQEntry/ControlFlowEvent "
        "outside __init__; slots live in preallocated arrays and the two "
        "reusable proxies cover every object-API consumer"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        name = module.name
        if not (
            name == FASTCORE_MODULE_SUFFIX
            or name.endswith("." + FASTCORE_MODULE_SUFFIX)
        ):
            return
        for class_name, func, lineno in _forbidden_calls(module.tree):
            yield self.finding(
                module,
                lineno,
                f"fast core allocates {class_name}() in {func}(); per-event "
                f"records belong in the preallocated slot arrays — reuse "
                f"the __init__-built proxies for object-API consumers",
            )


def _forbidden_calls(tree: ast.Module) -> List[Tuple[str, str, int]]:
    """(class, enclosing func, line) for each hot-loop record allocation."""
    out: List[Tuple[str, str, int]] = []
    stack: List[str] = []

    def walk(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.append(node.name)
            for child in ast.iter_child_nodes(node):
                walk(child)
            stack.pop()
            return
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in FORBIDDEN_ALLOCS
            and stack
            and stack[-1] not in ALLOWED_FUNCS
        ):
            out.append((node.func.id, stack[-1], node.lineno))
        for child in ast.iter_child_nodes(node):
            walk(child)

    walk(tree)
    return out

"""Concurrency-safety rules over the asyncio/multiprocessing service stack.

Five rules guard the bug classes the service layers (PR 5/6) are
exposed to, using the project call graph
(:mod:`repro.analysis.callgraph`) where syntax alone cannot answer:

* ``async-blocking-call`` — a blocking primitive (``time.sleep``, sync
  sqlite/socket/subprocess/file I/O, a ``wait=True`` executor shutdown)
  reachable from an ``async def``, transitively through sync helpers.
  Off-loading through ``run_in_executor``/``asyncio.to_thread`` is
  naturally clean: by-reference and lambda arguments are not call
  edges of the async caller.
* ``unawaited-coroutine`` — the result of a call known to return a
  coroutine is discarded as a bare expression statement.
* ``fire-and-forget-task`` — a ``create_task``/``ensure_future`` result
  is discarded; an unreferenced task can be garbage-collected mid-
  flight and its exceptions are lost.
* ``pool-child-init`` — every ``ProcessPoolExecutor`` construction must
  pass ``initializer=pool_child_init``. Pool children inherit the
  parent loop's signal wakeup fd; a child that takes a SIGTERM without
  the initializer writes into the *parent's* wakeup pipe and triggers a
  spurious drain (the PR-6 bug, enforced forever).
* ``route-conformance`` — the hand-framed HTTP protocol cannot drift:
  every route a client sends (``ServiceClient``, coordinator->worker,
  worker->coordinator) must match a handler shape in the corresponding
  ``_route`` dispatcher, and every handler shape must have a sender.
  Handler shapes are recovered by walking the ``_route`` ``if`` chains
  symbolically (``parts == [...]``, ``parts[i] == "lit"``,
  ``len(parts) >= n``, ``method == "X"``); dynamic path segments match
  as wildcards.

All resolution is best effort: an unresolvable call is silent, never a
guess (false-negative limits are catalogued in DESIGN §16).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.callgraph import CallGraph, CallSite, iter_scope_nodes
from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    dotted_name,
    find_class,
)

# ----------------------------------------------------------------------
# blocking-call catalogue
# ----------------------------------------------------------------------
#: external callables that block the event loop when called directly
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "sqlite3.connect",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.popen", "os.wait", "os.waitpid",
    "socket.create_connection", "socket.getaddrinfo",
    "socket.gethostbyname", "socket.gethostbyaddr",
    "urllib.request.urlopen",
    "shutil.copy", "shutil.copy2", "shutil.copytree", "shutil.rmtree",
    "open", "io.open",
})

#: value origins whose *every* method call blocks (sync handles):
#: ``conn = sqlite3.connect(...); conn.execute(...)`` etc.
BLOCKING_ORIGINS = (
    "sqlite3.connect",
    "socket.socket",
    "socket.create_connection",
    "open",
    "io.open",
    "http.client.HTTPConnection",
    "http.client.HTTPSConnection",
)

#: executor shutdowns block unless called with ``wait=False``
_EXECUTOR_SHUTDOWNS = ("ProcessPoolExecutor.shutdown",
                       "ThreadPoolExecutor.shutdown")

#: stdlib coroutine factories for the unawaited-coroutine rule
KNOWN_COROUTINES = frozenset({
    "asyncio.sleep", "asyncio.gather", "asyncio.wait", "asyncio.wait_for",
    "asyncio.open_connection", "asyncio.start_server", "asyncio.to_thread",
    "asyncio.shield", "asyncio.wait_closed",
})

_EXECUTOR_HINT = ("move it off the event loop "
                  "(run_in_executor / asyncio.to_thread)")


def _blocking_external(site: CallSite) -> Optional[str]:
    """The blocking external name a call site hits, if any."""
    ext = site.external
    if ext is None:
        return None
    if ext in BLOCKING_CALLS:
        return ext
    for origin in BLOCKING_ORIGINS:
        if ext.startswith(origin + "."):
            return ext
    for suffix in _EXECUTOR_SHUTDOWNS:
        if ext.endswith(suffix) and not _has_wait_false(site.node):
            return ext
    return None


def _has_wait_false(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "wait" and isinstance(kw.value, ast.Constant):
            return kw.value.value is False
    return False


class AsyncBlockingCallRule(Rule):
    """Blocking primitives reachable from ``async def`` bodies."""

    name = "async-blocking-call"
    description = ("an async function (transitively) calls a blocking "
                   "primitive on the event loop")
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = project.callgraph()
        memo: Dict[str, Optional[List[str]]] = {}
        for fn in graph.iter_functions():
            if not fn.is_async:
                continue
            module = project.modules.get(fn.module)
            if module is None:
                continue
            for site in fn.calls:
                ext = _blocking_external(site)
                if ext is not None:
                    yield self.finding(
                        module, site.line,
                        "async '%s' calls blocking '%s'; %s"
                        % (fn.short_name, ext, _EXECUTOR_HINT))
                    continue
                if site.callee is None:
                    continue
                callee = graph.functions.get(site.callee)
                if callee is None or callee.is_async:
                    continue
                chain = self._chain(graph, site.callee, memo, set())
                if chain is not None:
                    yield self.finding(
                        module, site.line,
                        "async '%s' reaches blocking '%s' via %s; %s"
                        % (fn.short_name, chain[-1],
                           " -> ".join(chain[:-1]), _EXECUTOR_HINT))

    def _chain(
        self,
        graph: CallGraph,
        qname: str,
        memo: Dict[str, Optional[List[str]]],
        active: Set[str],
    ) -> Optional[List[str]]:
        """Shortest-found path from sync ``qname`` down to a blocking
        primitive: ``[helper, helper, ..., external]``; None if clean."""
        if qname in memo:
            return memo[qname]
        if qname in active:
            return None  # cycle: never concluded blocking through itself
        active.add(qname)
        fn = graph.functions[qname]
        result: Optional[List[str]] = None
        for site in fn.calls:
            ext = _blocking_external(site)
            if ext is not None:
                result = [fn.short_name, ext]
                break
            if site.callee is None:
                continue
            callee = graph.functions.get(site.callee)
            if callee is None or callee.is_async:
                continue
            sub = self._chain(graph, site.callee, memo, active)
            if sub is not None:
                result = [fn.short_name] + sub
                break
        active.discard(qname)
        memo[qname] = result
        return result


class UnawaitedCoroutineRule(Rule):
    """A known-coroutine call whose result is discarded unawaited."""

    name = "unawaited-coroutine"
    description = ("a coroutine call result is discarded without "
                   "await/create_task/gather")
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = project.callgraph()
        for fn in graph.iter_functions():
            module = project.modules.get(fn.module)
            if module is None:
                continue
            for node in iter_scope_nodes(fn.node):
                if not (isinstance(node, ast.Expr)
                        and isinstance(node.value, ast.Call)):
                    continue
                site = graph.site_for(node.value)
                if site is None:
                    continue
                label: Optional[str] = None
                if site.callee is not None:
                    callee = graph.functions.get(site.callee)
                    if callee is not None and callee.is_async:
                        label = callee.short_name
                elif site.external in KNOWN_COROUTINES:
                    label = site.external
                if label is not None:
                    yield self.finding(
                        module, site.line,
                        "coroutine '%s' is never awaited; await it or "
                        "schedule it with asyncio.create_task" % label)


class FireAndForgetTaskRule(Rule):
    """A scheduled task whose handle is dropped on the floor."""

    name = "fire-and-forget-task"
    description = ("a create_task/ensure_future result is discarded; "
                   "unreferenced tasks can be garbage-collected mid-flight")
    scope = "module"

    _SCHEDULERS = frozenset({"create_task", "ensure_future"})

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)):
                continue
            func = node.value.func
            name: Optional[str] = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name in self._SCHEDULERS:
                yield self.finding(
                    module, node.value.lineno,
                    "task from %s(...) is discarded; keep the handle "
                    "(assign it or add it to a tracked set) so the task "
                    "is not garbage-collected mid-flight and its "
                    "exceptions are observed" % name)


class PoolChildInitRule(Rule):
    """Every ProcessPoolExecutor must install ``pool_child_init``."""

    name = "pool-child-init"
    description = ("ProcessPoolExecutor constructions must pass "
                   "initializer=pool_child_init (children inherit the "
                   "parent loop's signal wakeup fd)")
    scope = "module"

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or name.split(".")[-1] != "ProcessPoolExecutor":
                continue
            init = None
            splatted = False
            for kw in node.keywords:
                if kw.arg is None:
                    splatted = True
                elif kw.arg == "initializer":
                    init = kw.value
            if init is None:
                if splatted:
                    continue  # **kwargs may carry it; cannot tell
                yield self.finding(
                    module, node.lineno,
                    "ProcessPoolExecutor without initializer="
                    "pool_child_init: pool children inherit the parent's "
                    "signal wakeup fd and SIGTERM dispositions (see "
                    "repro.utils.pool_child_init)")
                continue
            init_name = dotted_name(init)
            leaf = init_name.split(".")[-1] if init_name else None
            if leaf != "pool_child_init":
                yield self.finding(
                    module, node.lineno,
                    "ProcessPoolExecutor initializer is %s, expected "
                    "pool_child_init (children must detach the parent's "
                    "signal plumbing first)"
                    % (init_name or "not a plain name"))


# ----------------------------------------------------------------------
# route conformance
# ----------------------------------------------------------------------
class _RouteEnv:
    """Accumulated constraints on (method, parts) along one ``if`` path."""

    __slots__ = ("method", "length", "minlen", "segs")

    def __init__(self) -> None:
        self.method: Optional[str] = None
        self.length: Optional[int] = None
        self.minlen = 0
        self.segs: Dict[int, str] = {}

    def copy(self) -> "_RouteEnv":
        env = _RouteEnv()
        env.method = self.method
        env.length = self.length
        env.minlen = self.minlen
        env.segs = dict(self.segs)
        return env


#: a route shape: (HTTP method, path segments with "*" wildcards)
_Shape = Tuple[str, Tuple[str, ...]]


def _apply_test(test: ast.expr, env: _RouteEnv) -> None:
    """Fold one recognised ``if`` condition into ``env`` (unknown
    conjuncts are ignored — an over-approximation, never a guess)."""
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        for value in test.values:
            _apply_test(value, env)
        return
    if isinstance(test, ast.Name) and test.id == "parts":
        env.minlen = max(env.minlen, 1)
        return
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1
            and len(test.comparators) == 1):
        return
    left, op, right = test.left, test.ops[0], test.comparators[0]
    if isinstance(left, ast.Name) and left.id == "method" \
            and isinstance(op, ast.Eq) \
            and isinstance(right, ast.Constant) \
            and isinstance(right.value, str):
        env.method = right.value
        return
    if isinstance(left, ast.Name) and left.id == "parts" \
            and isinstance(op, ast.Eq):
        literal = _string_list(right)
        if literal is not None:
            env.length = len(literal)
            for i, seg in enumerate(literal):
                env.segs[i] = seg
        return
    if isinstance(left, ast.Call) and isinstance(left.func, ast.Name) \
            and left.func.id == "len" and len(left.args) == 1 \
            and isinstance(left.args[0], ast.Name) \
            and left.args[0].id == "parts" \
            and isinstance(right, ast.Constant) \
            and isinstance(right.value, int):
        if isinstance(op, ast.Eq):
            env.length = right.value
        elif isinstance(op, ast.GtE):
            env.minlen = max(env.minlen, right.value)
        elif isinstance(op, ast.Gt):
            env.minlen = max(env.minlen, right.value + 1)
        return
    if isinstance(left, ast.Subscript) and isinstance(left.value, ast.Name) \
            and left.value.id == "parts" and isinstance(op, ast.Eq):
        if isinstance(left.slice, ast.Constant) \
                and isinstance(left.slice.value, int) \
                and isinstance(right, ast.Constant) \
                and isinstance(right.value, str):
            index = left.slice.value
            env.segs[index] = right.value
            env.minlen = max(env.minlen, index + 1)
            return
        if isinstance(left.slice, ast.Slice) and left.slice.upper is None \
                and left.slice.step is None \
                and isinstance(left.slice.lower, ast.Constant) \
                and isinstance(left.slice.lower.value, int):
            literal = _string_list(right)
            if literal is not None:
                start = left.slice.lower.value
                env.length = start + len(literal)
                for i, seg in enumerate(literal):
                    env.segs[start + i] = seg
        return


def _string_list(node: ast.expr) -> Optional[List[str]]:
    if not isinstance(node, ast.List):
        return None
    out: List[str] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            return None
        out.append(element.value)
    return out


def _is_super_route_call(node: ast.expr) -> bool:
    if isinstance(node, ast.Await):
        node = node.value
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "_route"
            and isinstance(node.func.value, ast.Call)
            and isinstance(node.func.value.func, ast.Name)
            and node.func.value.func.id == "super")


_RouteDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _collect_shapes(fn: _RouteDef) -> Tuple[Dict[_Shape, int], bool]:
    """Shapes a ``_route`` dispatcher answers, and whether it delegates
    to ``super()._route``. A shape is recorded at a ``return`` whose
    path constraints pin an exact segment count and a single method;
    unconstrained returns (404 fallthroughs) yield nothing."""
    shapes: Dict[_Shape, int] = {}
    delegates = any(_is_super_route_call(node) for node in ast.walk(fn)
                    if isinstance(node, ast.expr))

    def walk(stmts: Sequence[ast.stmt], env: _RouteEnv) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                child = env.copy()
                _apply_test(stmt.test, child)
                walk(stmt.body, child)
                walk(stmt.orelse, env)
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None \
                        and _is_super_route_call(stmt.value):
                    continue
                if env.method is None or env.length is None:
                    continue
                if env.length < env.minlen:
                    continue
                segs = tuple(env.segs.get(i, "*")
                             for i in range(env.length))
                shapes.setdefault((env.method, segs), stmt.lineno)
            elif isinstance(stmt, (ast.With, ast.AsyncWith, ast.For,
                                   ast.AsyncFor, ast.While)):
                walk(stmt.body, env.copy())
            elif isinstance(stmt, ast.Try):
                walk(stmt.body, env.copy())
                for handler in stmt.handlers:
                    walk(handler.body, env.copy())
                walk(stmt.finalbody, env.copy())

    walk(fn.body, _RouteEnv())
    return shapes, delegates


def _path_text(expr: ast.expr) -> Optional[str]:
    """Render a client path expression with dynamic pieces as ``*``."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Mod) \
            and isinstance(expr.left, ast.Constant) \
            and isinstance(expr.left.value, str):
        text = expr.left.value
        for conversion in ("%s", "%d", "%r"):
            text = text.replace(conversion, "*")
        return text
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
        left = _path_text(expr.left)
        if left is None:
            return None
        right = _path_text(expr.right)
        return left + (right if right is not None else "*")
    if isinstance(expr, ast.JoinedStr):
        out = []
        for value in expr.values:
            if isinstance(value, ast.Constant) \
                    and isinstance(value.value, str):
                out.append(value.value)
            else:
                out.append("*")
        return "".join(out)
    return None


def _path_segments(expr: ast.expr) -> Optional[Tuple[str, ...]]:
    text = _path_text(expr)
    if text is None or not text.startswith("/"):
        return None
    return tuple("*" if "*" in seg else seg
                 for seg in text.split("/") if seg)


def _shape_matches(send: _Shape, handler: _Shape) -> bool:
    if send[0] != handler[0] or len(send[1]) != len(handler[1]):
        return False
    return all(a == b or a == "*" or b == "*"
               for a, b in zip(send[1], handler[1]))


def _render(shape: _Shape) -> str:
    return "%s /%s" % (shape[0], "/".join(shape[1]))


class _Send:
    """One client-side request: (method, segments) at a source line."""

    __slots__ = ("module", "line", "shape")

    def __init__(self, module: ModuleInfo, line: int, shape: _Shape):
        self.module = module
        self.line = line
        self.shape = shape


class _Dispatch:
    """One server-side ``_route`` dispatcher's recovered shapes."""

    __slots__ = ("module", "cls", "shapes", "delegates")

    def __init__(self, module: ModuleInfo, cls: str,
                 shapes: Dict[_Shape, int], delegates: bool):
        self.module = module
        self.cls = cls
        self.shapes = shapes
        self.delegates = delegates


class RouteConformanceRule(Rule):
    """Client route strings and ``_route`` dispatch shapes must agree."""

    name = "route-conformance"
    description = ("every client-sent route needs a matching _route "
                   "handler shape, and every handler shape a sender")
    scope = "project"

    #: (module suffix, dispatcher class) pairs this project serves from
    _DISPATCHERS = (
        ("service.server", "SimulationServer"),
        ("service.cluster", "Coordinator"),
        ("service.cluster", "WorkerNode"),
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        dispatchers = self._find_dispatchers(project)
        client_sends = self._client_sends(project)
        coord_sends, worker_sends = self._cluster_sends(project)

        # direction 1: every send matches some handler shape
        yield from self._check_sends(
            client_sends, [dispatchers.get("SimulationServer"),
                           dispatchers.get("Coordinator")])
        yield from self._check_sends(
            coord_sends, [dispatchers.get("WorkerNode")])
        yield from self._check_sends(
            worker_sends, [dispatchers.get("Coordinator"),
                           dispatchers.get("SimulationServer")])

        # direction 2: every handler shape has a sender
        server_senders: List[List[_Send]] = []
        if client_sends is not None:
            server_senders.append(client_sends)
        if worker_sends is not None:
            server_senders.append(worker_sends)
        yield from self._check_handlers(
            dispatchers.get("SimulationServer"), server_senders)
        yield from self._check_handlers(
            dispatchers.get("Coordinator"), server_senders)
        yield from self._check_handlers(
            dispatchers.get("WorkerNode"),
            [coord_sends] if coord_sends is not None else [])

    # -- extraction ----------------------------------------------------
    def _find_dispatchers(
        self, project: Project
    ) -> Dict[str, _Dispatch]:
        out: Dict[str, _Dispatch] = {}
        for suffix, cls_name in self._DISPATCHERS:
            module = project.get_by_suffix(suffix)
            if module is None:
                continue
            cls = find_class(module.tree, cls_name)
            if cls is None:
                continue
            route = None
            for item in cls.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and item.name == "_route":
                    route = item
                    break
            if route is None:
                continue
            shapes, delegates = _collect_shapes(route)
            out[cls_name] = _Dispatch(module, cls_name, shapes, delegates)
        return out

    def _client_sends(self, project: Project) -> Optional[List[_Send]]:
        module = project.get_by_suffix("service.client")
        if module is None:
            return None
        sends: List[_Send] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in ("_checked", "_request")):
                continue
            if len(node.args) < 2:
                continue
            method = node.args[0]
            if not (isinstance(method, ast.Constant)
                    and isinstance(method.value, str)):
                continue
            segments = _path_segments(node.args[1])
            if segments is None:
                continue
            sends.append(_Send(module, node.lineno,
                               (method.value, segments)))
        return sends

    def _cluster_sends(
        self, project: Project
    ) -> Tuple[Optional[List[_Send]], Optional[List[_Send]]]:
        module = project.get_by_suffix("service.cluster")
        if module is None:
            return None, None
        groups: Dict[str, List[_Send]] = {"Coordinator": [],
                                          "WorkerNode": []}
        for cls_name, sends in groups.items():
            cls = find_class(module.tree, cls_name)
            if cls is None:
                continue
            for node in ast.walk(cls):
                if not isinstance(node, ast.Call):
                    continue
                if not (isinstance(node.func, ast.Name)
                        and node.func.id == "_http_json"):
                    continue
                if len(node.args) < 4:
                    continue
                method = node.args[2]
                if not (isinstance(method, ast.Constant)
                        and isinstance(method.value, str)):
                    continue
                segments = _path_segments(node.args[3])
                if segments is None:
                    continue
                sends.append(_Send(module, node.lineno,
                                   (method.value, segments)))
        return groups["Coordinator"], groups["WorkerNode"]

    # -- checks --------------------------------------------------------
    def _check_sends(
        self,
        sends: Optional[List[_Send]],
        dispatchers: Sequence[Optional[_Dispatch]],
    ) -> Iterable[Finding]:
        targets = [d for d in dispatchers if d is not None]
        if sends is None or not targets:
            return
        names = "/".join("%s._route" % d.cls for d in targets)
        for send in sends:
            if any(_shape_matches(send.shape, shape)
                   for d in targets for shape in d.shapes):
                continue
            yield self.finding(
                send.module, send.line,
                "client sends %s but no handler shape in %s matches "
                "(protocol drift?)" % (_render(send.shape), names))

    def _check_handlers(
        self,
        dispatch: Optional[_Dispatch],
        sender_groups: Sequence[List[_Send]],
    ) -> Iterable[Finding]:
        if dispatch is None or not sender_groups:
            return
        sends = [send for group in sender_groups for send in group]
        for shape in sorted(dispatch.shapes):
            if any(_shape_matches(send.shape, shape) for send in sends):
                continue
            yield self.finding(
                dispatch.module, dispatch.shapes[shape],
                "route %s in %s._route has no client-side sender "
                "(dead route or protocol drift?)"
                % (_render(shape), dispatch.cls))

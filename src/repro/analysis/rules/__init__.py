"""Rule registry for ``repro lint``.

Eight rule families guard the properties the reproduction depends on:
determinism (no entropy on stat-affecting paths), layering (the
architecture DAG), hot-path hygiene (``__slots__`` on per-event
records), stats parity (the event-horizon bit-identity invariant,
checked for both simulation cores), fast-core allocation (no per-event
record objects inside the flat-array hot loops), config coherence
(field reads match field definitions), telemetry imports (hot paths
see only the zero-overhead no-op handle), and concurrency safety
(no blocking calls reachable from async code, no dropped
coroutines/tasks, process pools install the child initializer, and
client route strings agree with the ``_route`` dispatchers).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.engine import Rule
from repro.analysis.rules.concurrency import (
    AsyncBlockingCallRule,
    FireAndForgetTaskRule,
    PoolChildInitRule,
    RouteConformanceRule,
    UnawaitedCoroutineRule,
)
from repro.analysis.rules.config_coherence import (
    ConfigUnknownFieldRule,
    ConfigUnusedFieldRule,
)
from repro.analysis.rules.determinism import (
    SetIterationRule,
    UnseededRngRule,
    WallClockRule,
)
from repro.analysis.rules.fastcore_alloc import FastcoreAllocRule
from repro.analysis.rules.hotpath import AttrOutsideInitRule, MissingSlotsRule
from repro.analysis.rules.layering import LayeringRule
from repro.analysis.rules.stats_parity import StatsParityRule
from repro.analysis.rules.telemetry_imports import TelemetryNoopImportRule

#: every registered rule, in report order
ALL_RULES: List[Rule] = [
    WallClockRule(),
    UnseededRngRule(),
    SetIterationRule(),
    LayeringRule(),
    MissingSlotsRule(),
    AttrOutsideInitRule(),
    StatsParityRule(),
    FastcoreAllocRule(),
    ConfigUnknownFieldRule(),
    ConfigUnusedFieldRule(),
    TelemetryNoopImportRule(),
    AsyncBlockingCallRule(),
    UnawaitedCoroutineRule(),
    FireAndForgetTaskRule(),
    PoolChildInitRule(),
    RouteConformanceRule(),
]


def get_rules(names: Optional[Sequence[str]] = None) -> List[Rule]:
    """The registered rules, optionally filtered by exact name.

    Raises ``ValueError`` on an unknown name so typos in ``--select``
    fail loudly instead of silently selecting nothing.
    """
    if names is None:
        return list(ALL_RULES)
    known = {rule.name: rule for rule in ALL_RULES}
    unknown = [name for name in names if name not in known]
    if unknown:
        raise ValueError(
            f"unknown rule(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return [known[name] for name in names]


__all__ = [
    "ALL_RULES",
    "get_rules",
    "AsyncBlockingCallRule",
    "AttrOutsideInitRule",
    "ConfigUnknownFieldRule",
    "ConfigUnusedFieldRule",
    "FastcoreAllocRule",
    "FireAndForgetTaskRule",
    "LayeringRule",
    "MissingSlotsRule",
    "PoolChildInitRule",
    "RouteConformanceRule",
    "SetIterationRule",
    "StatsParityRule",
    "TelemetryNoopImportRule",
    "UnawaitedCoroutineRule",
    "WallClockRule",
]

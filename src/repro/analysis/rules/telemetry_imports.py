"""Telemetry import rule: hot paths see only the no-op handle.

The telemetry package has two sides (DESIGN.md §12): the zero-overhead
handle (``telemetry.handle`` — a class-level ``enabled = False`` flag
and a do-nothing ``emit``) that simulation components hold by default,
and the live machinery (recorder, registry, export, session, diff) that
drivers attach explicitly. The overhead policy only holds if per-cycle
code can never accidentally construct — or even import — the live side:
a recorder import in ``machine.py`` would put ring-buffer code on the
path the bench gate (DESIGN.md §10) protects.

This rule pins every hot-path module (the same set the ``hotpath-*``
rules guard: ``frontend``/``branch``/``memory``/``core``/
``prefetchers``/``backend`` plus ``simulator.machine``) to importing
*only* ``<root>.telemetry.handle`` from the telemetry package. Importing
the bare package is also flagged — its ``__init__`` re-exports the full
live side. Drivers (``simulator.runner``, ``bench``, ``cli``,
``experiments``) are unconstrained: attaching sessions is their job.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.engine import Finding, ModuleInfo, Project, Rule
from repro.analysis.rules.hotpath import is_hot_module
from repro.analysis.rules.layering import _internal_imports

#: the one telemetry module hot paths may import (suffix under the root)
HANDLE_MODULE = "telemetry.handle"


class TelemetryNoopImportRule(Rule):
    """Hot-path modules may import only the no-op telemetry handle."""

    name = "telemetry-noop-import"
    description = (
        "hot-path modules must import only telemetry.handle (the no-op "
        "side); the live recorder/registry/session machinery is for "
        "drivers, never for per-cycle code"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        if not is_hot_module(module):
            return
        root_package = module.name.split(".", 1)[0]
        allowed = f"{root_package}.{HANDLE_MODULE}"
        for lineno, target in _internal_imports(module, root_package):
            parts = target.split(".")
            if len(parts) < 2 or parts[1] != "telemetry":
                continue
            if target == allowed:
                continue
            what = (
                "the telemetry package facade (re-exports the live "
                "recorder/registry/diff machinery)"
                if target == f"{root_package}.telemetry"
                else f"'{target}'"
            )
            yield self.finding(
                module,
                lineno,
                f"hot-path module imports {what}; per-cycle code may "
                f"import only '{allowed}' so telemetry stays "
                f"zero-overhead when off",
            )

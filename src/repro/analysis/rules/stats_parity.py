"""Stats-parity rule: per-cycle counters must survive event-horizon skips.

The event-horizon fast path (DESIGN.md §10) replaces runs of provably
idle cycles with one arithmetic batch update in
``Machine._fast_forward``. The repo's core guarantee — ``SimulationStats``
bit-identical with skipping on or off — therefore requires that every
stats counter mutated on the per-cycle path (``Machine.run``'s inlined
loop, ``Machine.step``, ``Machine._decode``) is either:

* **batch-applied** in ``_fast_forward`` (cycle-proportional counters:
  ``cycles``, ``slots_total``, ``slots_frontend_bound``,
  ``decode_starvation_cycles``), or
* **event-gated** — provably zero during idle cycles because it only
  moves when decode delivers, the back end retires, or the back end
  blocks (``instructions``, ``slots_retiring``,
  ``slots_bad_speculation``, ``slots_backend_bound``), declared in
  :data:`EVENT_GATED_COUNTERS`.

A counter added to the per-cycle path that is neither batch-applied nor
declared event-gated is exactly the bug class this rule exists for: it
would silently diverge under skipping while every example-based test
that happens to avoid idle stretches stays green. The reverse direction
is checked too — a counter batch-applied in ``_fast_forward`` with no
per-cycle counterpart is stale and equally suspect.

The same invariant binds the flat-array core: ``FastMachine`` inlines
its per-cycle loop into ``run`` (with counters localized and synced
back through the ``st`` alias, which the mutation scan resolves) and
carries its own ``_fast_forward``, so both machine classes are checked
against the identical contract.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    ann_field_names,
    find_class,
)

#: module/class anatomy the rule inspects (suffix-matched so fixture
#: trees with any root package name work)
MACHINE_MODULE_SUFFIX = "simulator.machine"
MACHINE_CLASS = "Machine"
STATS_MODULE_SUFFIX = "simulator.stats"
STATS_CLASS = "SimulationStats"

#: every simulation core bound by the bit-identity contract:
#: (module suffix, class name). A new backend gets a row here.
CORE_TARGETS = (
    (MACHINE_MODULE_SUFFIX, MACHINE_CLASS),
    ("simulator.fastcore", "FastMachine"),
)

#: the per-cycle path: functions executed every non-skipped cycle
PER_CYCLE_FUNCS = ("run", "step", "_decode")
FAST_FORWARD_FUNC = "_fast_forward"

#: counters that provably cannot move during an idle cycle: decode
#: delivered nothing (slots_retiring / slots_bad_speculation), the back
#: end was not the blocker (slots_backend_bound), and nothing retired
#: (instructions). Adding a counter here asserts that invariant — the
#: fast path does not need to (and must not) batch-apply it.
EVENT_GATED_COUNTERS = frozenset(
    {
        "instructions",
        "slots_retiring",
        "slots_bad_speculation",
        "slots_backend_bound",
        # only moves when the IAG enqueues a wrong-path block, and
        # _skippable returns 0 on any cycle the IAG would enqueue; the
        # fast core mutates it inside run()'s inlined loop, the
        # reference core inside _enqueue_next (off the per-cycle list)
        "wrong_path_blocks",
    }
)

#: non-counter fields of SimulationStats (never subject to parity)
NON_COUNTER_FIELDS = frozenset({"extra"})


class StatsParityRule(Rule):
    """Counters on the per-cycle path must be handled by ``_fast_forward``."""

    name = "stats-parity-fast-forward"
    description = (
        "every SimulationStats counter mutated on a simulation core's "
        "per-cycle path must be batch-applied in _fast_forward or "
        "declared event-gated (bit-identical event-horizon invariant); "
        "checked for both the reference and the flat-array core"
    )
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        stats_module = project.get_by_suffix(STATS_MODULE_SUFFIX)
        if stats_module is None:
            return  # linting a subtree without the simulator: nothing to do
        stats_class = find_class(stats_module.tree, STATS_CLASS)
        if stats_class is None:
            return
        counters = {
            name
            for name in ann_field_names(stats_class)
            if name not in NON_COUNTER_FIELDS
        }
        for module_suffix, class_name in CORE_TARGETS:
            machine_module = project.get_by_suffix(module_suffix)
            if machine_module is None:
                continue
            machine_class = find_class(machine_module.tree, class_name)
            if machine_class is None:
                continue
            yield from self._check_core(
                machine_module, machine_class, class_name, counters
            )

    def _check_core(
        self,
        machine_module: ModuleInfo,
        machine_class: ast.ClassDef,
        class_name: str,
        counters: Set[str],
    ) -> Iterable[Finding]:
        methods = {
            node.name: node
            for node in machine_class.body
            if isinstance(node, ast.FunctionDef)
        }

        per_cycle: Dict[str, Tuple[str, int]] = {}  # counter -> (func, line)
        for func_name in PER_CYCLE_FUNCS:
            method = methods.get(func_name)
            if method is None:
                continue
            for counter, lineno in _stats_mutations(method, counters):
                per_cycle.setdefault(counter, (func_name, lineno))

        fast_forward = methods.get(FAST_FORWARD_FUNC)
        if fast_forward is None:
            if per_cycle:
                yield self.finding(
                    machine_module,
                    machine_class.lineno,
                    f"'{class_name}' mutates stats counters on the "
                    f"per-cycle path but defines no {FAST_FORWARD_FUNC}()",
                )
            return
        batched: Dict[str, int] = {}
        for counter, lineno in _stats_mutations(fast_forward, counters):
            batched.setdefault(counter, lineno)

        for counter in sorted(per_cycle):
            if counter in EVENT_GATED_COUNTERS or counter in batched:
                continue
            func_name, lineno = per_cycle[counter]
            yield self.finding(
                machine_module,
                lineno,
                f"counter '{counter}' is mutated on the per-cycle path "
                f"({func_name}()) but not batch-applied in "
                f"{FAST_FORWARD_FUNC}(); event-horizon skipping would "
                f"silently diverge — batch it there, or declare it "
                f"event-gated in the stats-parity rule if it provably "
                f"cannot move during an idle cycle",
            )
        for counter in sorted(batched):
            if counter not in per_cycle:
                yield self.finding(
                    machine_module,
                    batched[counter],
                    f"counter '{counter}' is batch-applied in "
                    f"{FAST_FORWARD_FUNC}() but never mutated on the "
                    f"per-cycle path ({', '.join(PER_CYCLE_FUNCS)}); the "
                    f"batch update is stale",
                )


def _stats_mutations(
    func: ast.FunctionDef, counters: Set[str]
) -> List[Tuple[str, int]]:
    """(counter, line) for every stats-counter store in ``func``.

    Detects ``self.stats.X`` directly and through local aliases bound
    with ``st = self.stats`` (the hot loop's idiom).
    """
    aliases: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and _is_self_stats(node.value)
        ):
            aliases.add(node.targets[0].id)
    out: List[Tuple[str, int]] = []
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.Assign):
            targets = list(node.targets)
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            base = target.value
            is_stats = _is_self_stats(base) or (
                isinstance(base, ast.Name) and base.id in aliases
            )
            if is_stats and target.attr in counters:
                out.append((target.attr, node.lineno))
    return out


def _is_self_stats(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "stats"
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )

"""Baseline files: grandfather known findings without weakening the gate.

A baseline is a committed JSON file listing findings that existed when a
rule was introduced. ``repro lint`` subtracts baselined findings from
the report, so the gate only fires on *new* violations — adopting a new
rule never requires fixing the whole tree in one PR. Entries are keyed
on ``(rule, path, message)``, deliberately excluding the line number so
unrelated edits to a file do not churn the baseline, and matched as a
multiset so two identical findings need two baseline entries.

The shipped ``lint_baseline.json`` is empty: the tree lints clean, and
the review bar for adding an entry is the same as for a suppression.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from repro.analysis.engine import Finding

BASELINE_VERSION = 1

#: default baseline filename, resolved against the project root
DEFAULT_BASELINE_NAME = "lint_baseline.json"

_Key = Tuple[str, str, str]


def load_baseline(path: Path) -> Counter:
    """Baseline keys (as a multiset) from ``path``.

    Raises ``ValueError`` on malformed content — a broken baseline must
    fail the run, not silently un-grandfather everything.
    """
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has unsupported version "
            f"{payload.get('version') if isinstance(payload, dict) else payload!r} "
            f"(expected {BASELINE_VERSION})"
        )
    entries = payload.get("findings")
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path}: 'findings' must be a list")
    keys: Counter = Counter()
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ValueError(f"baseline {path}: entry {index} is not an object")
        try:
            keys[(str(entry["rule"]), str(entry["path"]), str(entry["message"]))] += 1
        except KeyError as exc:
            raise ValueError(
                f"baseline {path}: entry {index} is missing {exc}"
            ) from exc
    return keys


def match_baseline(
    findings: List[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding], Counter]:
    """Split ``findings`` into (new, grandfathered); also return the
    baseline entries that matched nothing (stale — the defect was fixed
    but the entry lingers)."""
    remaining = Counter(baseline)
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        key = finding.key()
        if remaining[key] > 0:
            remaining[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    stale = +remaining  # drop zero/negative counts
    return new, grandfathered, stale


def write_baseline(path: Path, findings: List[Finding]) -> None:
    """Serialise ``findings`` as the new baseline (sorted, stable)."""
    entries: List[Dict[str, str]] = [
        {"rule": f.rule, "path": f.path, "message": f.message}
        for f in sorted(findings, key=Finding.key)
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n")

"""Static analysis for the reproduction's correctness invariants.

``repro lint`` (see :mod:`repro.analysis.cli`) runs an AST-rule engine
(:mod:`repro.analysis.engine`) over the source tree and enforces the
properties the test suite can only spot-check:

* **determinism** — no unseeded RNG draws, wall-clock reads, or
  unordered-set iteration in stat-affecting modules;
* **import layering** — the architecture DAG (simulator never imports
  experiments/reporting/CLI, workloads never import the simulator);
* **hot-path hygiene** — per-event record classes declare ``__slots__``
  and never grow attributes outside ``__init__``;
* **stats parity** — counters mutated on ``Machine``'s per-cycle path
  are batch-applied in ``_fast_forward`` (the bit-identical
  event-horizon invariant, DESIGN.md §10);
* **config coherence** — config fields read anywhere exist on the
  config dataclasses, and every declared field is actually consumed.

The package deliberately imports nothing from the simulator: it parses
the tree, it never executes it.
"""

from repro.analysis.baseline import load_baseline, match_baseline, write_baseline
from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    discover,
    run_rules,
)
from repro.analysis.rules import ALL_RULES, get_rules

__all__ = [
    "ALL_RULES",
    "Finding",
    "ModuleInfo",
    "Project",
    "Rule",
    "discover",
    "get_rules",
    "load_baseline",
    "match_baseline",
    "run_rules",
    "write_baseline",
]

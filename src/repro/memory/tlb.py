"""Instruction TLB.

Section 4.2 of the paper notes the authors "also experimented with
instruction TLB misses as a trackable event that can also expose the
front-end to cache-miss-related stalls, but saw no performance gain".
This optional substrate lets the reproduction re-run that experiment:
when enabled (``HierarchyConfig.itlb_enabled``), every instruction-stream
access translates its page through a set-associative iTLB, and a miss
adds a page-walk latency to the fill. Large-footprint workloads touch
many pages, so iTLB misses cluster on the same resteer paths PDIP
already targets — which is exactly why the paper saw no *additional*
gain from tracking them separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.utils import LINE_SHIFT, SLOTTED

#: 4 KB pages: 64 lines per page
PAGE_SHIFT = 12
LINES_PER_PAGE = 1 << (PAGE_SHIFT - LINE_SHIFT)


@dataclass(**SLOTTED)
class _TLBEntry:
    tag: int
    lru: int = 0


class InstructionTLB:
    """Set-associative iTLB over line-number addresses."""

    def __init__(self, entries: int = 64, assoc: int = 4,
                 miss_latency: int = 25):
        if entries % assoc != 0:
            raise ValueError("entries must be a multiple of associativity")
        self.entries = entries
        self.assoc = assoc
        self.num_sets = entries // assoc
        self.miss_latency = miss_latency
        self._sets: Dict[int, Dict[int, _TLBEntry]] = {}
        self._clock = 0
        self.accesses = 0
        self.misses = 0

    @staticmethod
    def page_of_line(line: int) -> int:
        """Page number containing a cache line."""
        return line // LINES_PER_PAGE

    def translate(self, line: int) -> int:
        """Translate the page containing ``line``; returns added latency
        (0 on a hit, ``miss_latency`` on a walk)."""
        self.accesses += 1
        page = self.page_of_line(line)
        set_idx = page % self.num_sets
        tag = page // self.num_sets
        ways = self._sets.setdefault(set_idx, {})
        self._clock += 1
        entry = ways.get(tag)
        if entry is not None:
            entry.lru = self._clock
            return 0
        self.misses += 1
        if len(ways) >= self.assoc:
            victim = min(ways, key=lambda t: ways[t].lru)
            del ways[victim]
        ways[tag] = _TLBEntry(tag=tag, lru=self._clock)
        return self.miss_latency

    def miss_rate(self) -> float:
        """Misses / accesses (0 when unused)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def storage_bits(self) -> int:
        # tag (~24 bits VPN residue) + PPN (22) + valid + LRU
        """Storage footprint in bits."""
        return self.entries * (24 + 22 + 1 + 1)

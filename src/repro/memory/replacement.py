"""Replacement policies: LRU and EMISSARY.

EMISSARY (Nagendra et al., ISCA '23) adds a priority bit (P-bit) per
line. Lines that caused front-end-critical misses are *promoted* (P-bit
set) with a small probability — the paper and our reproduction use 1/32 —
which keeps single-instance FEC lines from hogging the protected ways.
On eviction, non-priority lines are victimized first; priority lines are
shielded as long as at most ``protected_ways`` of the set hold P-bits.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, TYPE_CHECKING

from repro.utils import derive_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.cache import CacheLineState


class ReplacementPolicy:
    """Strategy interface: pick a victim among a set's resident lines."""

    def victim(self, ways: Dict[int, "CacheLineState"]) -> int:
        """Return the tag of the line to evict. ``ways`` is non-empty."""
        raise NotImplementedError

    def on_promote(self, line_state: "CacheLineState",
                   ways: Dict[int, "CacheLineState"]) -> bool:
        """Request FEC promotion of a resident line; returns True if the
        P-bit was set. ``ways`` is the line's set, so policies can cap the
        number of protected ways. Default policies ignore promotions."""
        return False


class LRUPolicy(ReplacementPolicy):
    """Evict the least-recently-used line."""

    def victim(self, ways: Dict[int, "CacheLineState"]) -> int:
        """Pick the tag to evict from a full set."""
        # explicit scan instead of min(..., key=lambda ...): victim
        # selection sits on the cache-fill hot path and the closure call
        # per way is measurable; first-minimum semantics are preserved
        best_tag = -1
        best_lru = None
        for tag, state in ways.items():
            lru = state.lru
            if best_lru is None or lru < best_lru:
                best_lru = lru
                best_tag = tag
        return best_tag


class EmissaryPolicy(ReplacementPolicy):
    """EMISSARY: LRU that shields up to ``protected_ways`` priority lines.

    ``promote_prob`` is applied here (one coin flip per qualifying retire
    event). The paper promotes with probability 1/32, tuned for
    100M-instruction runs; the reproduction's default is 0.25 so the
    protected set converges at ~400x shorter budgets (the EMISSARY
    ablation bench sweeps the knob, including the paper's 1/32).
    """

    PAPER_PROMOTE_PROB = 1 / 32

    def __init__(self, protected_ways: int = 8, promote_prob: float = 0.25,
                 seed: int = 0):
        if protected_ways < 0:
            raise ValueError("protected_ways must be >= 0")
        if not 0.0 <= promote_prob <= 1.0:
            raise ValueError("promote_prob must be a probability")
        self.protected_ways = protected_ways
        self.promote_prob = promote_prob
        self._rng = derive_rng(seed, "emissary")
        self.promotions = 0
        self.promotion_requests = 0

    def victim(self, ways: Dict[int, "CacheLineState"]) -> int:
        """Pick the tag to evict from a full set."""
        # single pass over the non-priority ways (first-minimum, like the
        # former min-with-key over a filtered dict)
        best_tag = None
        best_lru = None
        for tag, state in ways.items():
            if state.p_bit:
                continue
            lru = state.lru
            if best_lru is None or lru < best_lru:
                best_lru = lru
                best_tag = tag
        if best_tag is not None:
            return best_tag
        # every way is priority: fall back to plain LRU
        for tag, state in ways.items():
            lru = state.lru
            if best_lru is None or lru < best_lru:
                best_lru = lru
                best_tag = tag
        return best_tag

    def on_promote(self, line_state: "CacheLineState",
                   ways: Dict[int, "CacheLineState"]) -> bool:
        """Request FEC promotion of a resident line."""
        self.promotion_requests += 1
        if line_state.p_bit:
            return True
        if self._rng.random() >= self.promote_prob:
            return False
        if self.priority_count(ways) >= self.protected_ways:
            return False
        line_state.p_bit = True
        self.promotions += 1
        return True

    def priority_count(self, ways: Dict[int, "CacheLineState"]) -> int:
        """Number of P-bit lines in the set."""
        return sum(1 for s in ways.values() if s.p_bit)

"""Cache hierarchy: L1-I, unified L2, shared L3 (Table 1 geometry).

Includes the EMISSARY front-end-criticality-aware L2 replacement policy
(Nagendra et al., ISCA '23) that the paper pairs PDIP with, an MSHR model
(prefetches yield to demand traffic), per-line prefetch accounting
(useful / late / useless), and the FEC-Ideal latency override used for
the paper's oracle configuration.
"""

from repro.memory.cache import AccessResult, Cache, CacheLineState
from repro.memory.replacement import (
    EmissaryPolicy,
    LRUPolicy,
    ReplacementPolicy,
)
from repro.memory.hierarchy import (
    InstructionFetchResult,
    MemoryHierarchy,
)

__all__ = [
    "Cache",
    "CacheLineState",
    "AccessResult",
    "ReplacementPolicy",
    "LRUPolicy",
    "EmissaryPolicy",
    "MemoryHierarchy",
    "InstructionFetchResult",
]

"""Three-level memory hierarchy for the instruction and data streams.

Geometry and hit latencies follow Table 1:

* L1-I: 32 KB, 8-way, 2-cycle hit, 16 MSHRs
* L2 (unified): 1 MB, 16-way, 10-cycle hit
* L3: 2 MB, 16-way, 20-cycle hit
* memory: flat latency beyond L3

The instruction stream (FDIP's run-ahead fetch plus PDIP/EIP prefetches)
and the back end's data stream (L1-D misses reaching the L2) share the L2
and L3, which is how EMISSARY's protected instruction ways create the L2
data contention the paper discusses (dotty/tatp/smallbank).

Special modes:

* ``fec_ideal`` — lines in the FEC set are always served at L1 hit
  latency (the paper's FEC-Ideal oracle upper bound);
* ``zero_cost_prefetch`` — prefetch fills are instantaneous (the paper's
  zero-cost timeliness study, Section 7.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from repro.memory.cache import AccessResult, Cache, CacheLineState
from repro.memory.replacement import EmissaryPolicy, LRUPolicy, ReplacementPolicy
from repro.memory.tlb import InstructionTLB
from repro.telemetry.handle import NULL_RECORDER
from repro.utils import SLOTTED


@dataclass
class HierarchyConfig:
    """Sizes/latencies for the three levels.

    Defaults are the paper's Table 1 geometry **scaled down 4-8x**
    (L1-I 32 KB -> 8 KB, L2 1 MB -> 128 KB, L3 2 MB -> 1 MB) to match the
    4-8x scaling of the synthetic workload footprints relative to the
    paper's multi-MB server binaries. This preserves the ratios that
    drive every result — footprint >> L1-I (~50-100x) and live set > L2 —
    at instruction budgets a pure-Python simulator can run.
    Use :meth:`paper_table1` for the unscaled reference geometry.
    """

    l1i_size_kb: int = 8
    l1i_assoc: int = 8
    l1i_mshrs: int = 16
    l1_hit_latency: int = 2
    l2_size_kb: int = 128
    l2_assoc: int = 16
    l2_mshrs: int = 32
    l2_hit_latency: int = 10
    l3_size_kb: int = 1024
    l3_assoc: int = 16
    l3_mshrs: int = 64
    l3_hit_latency: int = 20
    memory_latency: int = 150
    #: optional iTLB (the paper's Section 4.2 side experiment); off by
    #: default so the baseline matches the paper's configuration
    itlb_enabled: bool = False
    itlb_entries: int = 64
    itlb_assoc: int = 4
    itlb_miss_latency: int = 25

    @classmethod
    def paper_table1(cls) -> "HierarchyConfig":
        """The unscaled Table 1 geometry (32 KB / 1 MB / 2 MB)."""
        return cls(l1i_size_kb=32, l2_size_kb=1024, l3_size_kb=2048)


@dataclass(**SLOTTED)
class InstructionFetchResult:
    """Outcome of an instruction-stream access."""

    ready_cycle: int
    l1_hit: bool                  # resident and ready in L1-I
    l1_miss: bool                 # new L1-I miss (MSHR allocated)
    pending_hit: bool             # merged into an outstanding fill
    served_by: str                # "l1" | "l2" | "l3" | "mem" | "fec_ideal"
    #: the outstanding fill we merged into was prefetch-initiated
    late_prefetch: bool = False
    #: demand hit on a prefetched, previously-unused line
    useful_prefetch: bool = False
    stalled_mshr: bool = False    # demand could not allocate an MSHR


class MemoryHierarchy:
    """L1-I + unified L2 + L3 with prefetch and FEC bookkeeping."""

    def __init__(self, config: Optional[HierarchyConfig] = None,
                 l2_policy: Optional[ReplacementPolicy] = None,
                 fec_ideal: bool = False, zero_cost_prefetch: bool = False,
                 seed: int = 0):
        self.config = config if config is not None else HierarchyConfig()
        cfg = self.config
        self.l2_policy = l2_policy if l2_policy is not None else LRUPolicy()
        self.l1i = Cache("L1I", cfg.l1i_size_kb, cfg.l1i_assoc,
                         mshrs=cfg.l1i_mshrs)
        self.l2 = Cache("L2", cfg.l2_size_kb, cfg.l2_assoc,
                        mshrs=cfg.l2_mshrs, policy=self.l2_policy)
        self.l3 = Cache("L3", cfg.l3_size_kb, cfg.l3_assoc,
                        mshrs=cfg.l3_mshrs)
        self.itlb = (InstructionTLB(entries=cfg.itlb_entries,
                                    assoc=cfg.itlb_assoc,
                                    miss_latency=cfg.itlb_miss_latency)
                     if cfg.itlb_enabled else None)
        # hot-path copies of the per-level latencies (an attribute load
        # instead of a config-object chase on every access)
        self._l1_hit = cfg.l1_hit_latency
        self._l2_hit = cfg.l2_hit_latency
        self._l3_hit = cfg.l3_hit_latency
        self._mem_lat = cfg.memory_latency
        self.fec_ideal = fec_ideal
        self.zero_cost_prefetch = zero_cost_prefetch
        #: lines ever qualified as front-end critical (shared by the
        #: FEC-Ideal override and diagnostics)
        self.fec_lines: Set[int] = set()
        #: lines ever targeted by a PDIP/EIP prefetch (coverage accounting)
        self.prefetched_lines: Set[int] = set()
        #: telemetry handle (no-op unless a TelemetrySession attaches)
        self.tel = NULL_RECORDER

        # -- statistics ------------------------------------------------------
        self.l1i_demand_accesses = 0
        self.l1i_demand_misses = 0
        self.l2_inst_accesses = 0
        self.l2_inst_misses = 0
        self.l2_data_accesses = 0
        self.l2_data_misses = 0
        self.l3_accesses = 0
        self.l3_misses = 0
        self.prefetches_issued = 0       # PQ prefetches that left for L2
        self.prefetches_dropped = 0      # dropped for MSHR/PQ pressure
        self.prefetch_useful = 0         # demand hit on unused prefetched line
        self.prefetch_late = 0           # demand merged into prefetch fill
        self.prefetch_useless = 0        # prefetched line evicted unused

    # ------------------------------------------------------------------
    # instruction stream
    # ------------------------------------------------------------------
    def fetch_ready_hit(self, line: int, cycle: int) -> Optional[int]:
        """Fast path for the overwhelmingly common fetch outcome: ``line``
        is resident, its fill has completed, and no prefetch bookkeeping
        applies. Returns the ready cycle, or None when the caller must
        take the full :meth:`fetch_instruction` path (miss, pending fill,
        first touch of a prefetched line, or iTLB enabled).

        Counter effects are exactly the L1-hit slice of
        :meth:`fetch_instruction` — demand-access count, cache access/LRU
        — so interleaving the two paths keeps every statistic identical.
        """
        if self.itlb is not None:
            return None
        l1i = self.l1i
        state = l1i._lines.get(line)
        if state is None or state.ready_cycle > cycle or state.unused_prefetch:
            return None
        self.l1i_demand_accesses += 1
        l1i.accesses += 1
        clock = l1i._clock + 1
        l1i._clock = clock
        state.lru = clock
        return cycle + self._l1_hit

    def fetch_instruction(self, line: int, cycle: int) -> InstructionFetchResult:
        """Demand-stream access (FTQ enqueue / IFU fetch) to ``line``.

        Counts toward L1-I MPKI. May stall when no MSHR is available
        (``stalled_mshr=True``; the caller retries next cycle).
        """
        self.l1i_demand_accesses += 1
        # optional iTLB: a page walk delays the whole access
        walk = self.itlb.translate(line) if self.itlb is not None else 0
        state = self.l1i.lookup(line, cycle)
        if state is not None:
            if state.ready_cycle <= cycle:
                result = InstructionFetchResult(
                    cycle + self._l1_hit + walk, True, False, False, "l1")
                if state.unused_prefetch:
                    state.unused_prefetch = False
                    self.prefetch_useful += 1
                    result.useful_prefetch = True
                return result
            # MSHR merge: wait for the outstanding fill. A prefetch fill
            # counts as late only on its first demand merge — later merges
            # into the same fill are ordinary MLP.
            late = state.source == "prefetch" and state.unused_prefetch
            if late:
                self.prefetch_late += 1
                state.unused_prefetch = False
            return InstructionFetchResult(
                state.ready_cycle + walk, False, False, True, "pending",
                late)

        # true L1-I miss
        if self.l1i.mshr_free(cycle) <= 0:
            self.l1i_demand_accesses -= 1  # retried access; don't double count
            return InstructionFetchResult(
                cycle + 1, False, False, False, "stall",
                stalled_mshr=True)
        self.l1i_demand_misses += 1
        tel = self.tel
        if self.fec_ideal and line in self.fec_lines:
            ready = cycle + self._l1_hit + walk
            self._fill_l1(line, ready, source="fetch")
            if tel.enabled:
                tel.emit("l1i_miss", cycle, line=line,
                         served_by="fec_ideal", ready=ready)
            return InstructionFetchResult(
                ready, False, True, False, "fec_ideal")
        latency, served_by = self._inner_latency(line, cycle,
                                                 is_instruction=True)
        ready = cycle + self._l1_hit + latency + walk
        self._fill_l1(line, ready, source="fetch")
        if tel.enabled:
            tel.emit("l1i_miss", cycle, line=line, served_by=served_by,
                     ready=ready)
        return InstructionFetchResult(
            ready, False, True, False, served_by)

    def prefetch_instruction(self, line: int, cycle: int,
                             mshr_reserve: int = 2) -> bool:
        """PDIP/EIP prefetch of ``line``; returns True if issued.

        Follows the paper's demand-priority rule: the prefetch is dropped
        unless at least ``mshr_reserve`` MSHRs would remain free for
        demand traffic. A probe hit (already resident) is a no-op.
        """
        if self.l1i.probe(line):
            return False
        if self.l1i.mshr_free(cycle) <= mshr_reserve:
            self.prefetches_dropped += 1
            tel = self.tel
            if tel.enabled:
                tel.emit("pq_drop", cycle, line=line, reason="mshr")
            return False
        self.prefetches_issued += 1
        self.prefetched_lines.add(line)
        if self.zero_cost_prefetch:
            self._fill_l1(line, cycle, source="prefetch")
            return True
        latency, _ = self._inner_latency(line, cycle, is_instruction=True)
        ready = cycle + self._l1_hit + latency
        self._fill_l1(line, ready, source="prefetch")
        return True

    # ------------------------------------------------------------------
    # data stream
    # ------------------------------------------------------------------
    def data_access(self, line: int, cycle: int) -> "tuple[int, bool]":
        """Back-end data access that missed the L1-D and reaches the L2.

        Data lines are tagged with a high bit by the caller so they never
        collide with instruction line numbers. Returns
        ``(ready_cycle, l2_hit)``.
        """
        self.l2_data_accesses += 1
        # inlined l2.lookup hit path (the common case for the Zipf head)
        l2 = self.l2
        l2.accesses += 1
        state = l2._lines.get(line)
        if state is not None:
            clock = l2._clock + 1
            l2._clock = clock
            state.lru = clock
            ready = state.ready_cycle
            return (ready if ready > cycle else cycle) + self._l2_hit, True
        l2.misses += 1
        self.l2_data_misses += 1
        latency = self._l3_latency(line, cycle)
        ready = cycle + self._l2_hit + latency
        self.l2.fill_quick(line, ready, is_instruction=False)
        return ready, False

    # ------------------------------------------------------------------
    # FEC bookkeeping
    # ------------------------------------------------------------------
    def promote_fec(self, line: int) -> bool:
        """Register a front-end-critical qualification for ``line``.

        Adds the line to the FEC set (used by FEC-Ideal) and forwards the
        promotion request to the L2 replacement policy (EMISSARY applies
        its 1/32 promotion probability; LRU ignores it).
        """
        self.fec_lines.add(line)
        state = self.l2.get_state(line)
        if state is None:
            return False
        return self.l2_policy.on_promote(state, self.l2.set_occupancy(line))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _fill_l1(self, line: int, ready: int, source: str) -> None:
        _, evicted = self.l1i.fill_quick(line, ready, is_instruction=True,
                                         source=source)
        if evicted is not None and evicted.unused_prefetch:
            self.prefetch_useless += 1

    def _inner_latency(self, line: int, cycle: int,
                       is_instruction: bool) -> "tuple[int, str]":
        """Latency beyond the L1 for ``line``, filling L2/L3 on the way."""
        l2_hit = self._l2_hit
        if is_instruction:
            self.l2_inst_accesses += 1
        state = self.l2.lookup(line, cycle)
        if state is not None:
            extra = max(0, state.ready_cycle - cycle)
            return l2_hit + extra, "l2"
        if is_instruction:
            self.l2_inst_misses += 1
        latency = self._l3_latency(line, cycle)
        ready = cycle + l2_hit + latency
        self.l2.fill_quick(line, ready, is_instruction=is_instruction)
        return l2_hit + latency, "l3+"

    def _l3_latency(self, line: int, cycle: int) -> int:
        self.l3_accesses += 1
        state = self.l3.lookup(line, cycle)
        if state is not None:
            extra = max(0, state.ready_cycle - cycle)
            return self._l3_hit + extra
        self.l3_misses += 1
        miss_latency = self._l3_hit + self._mem_lat
        self.l3.fill_quick(line, cycle + miss_latency)
        return miss_latency

"""Set-associative cache with latency-tracked fills and MSHR accounting.

Fills allocate immediately with a future ``ready_cycle`` (the standard
trace-simulator simplification of a two-phase MSHR): a line can be
*resident but pending*. An access to a pending line merges into the
outstanding fill instead of creating a new miss. The MSHR occupancy at a
cycle is the number of pending fills, which is what the prefetch queue
checks before injecting prefetches (the paper's demand-priority rule).

Hot-path layout: residency is mirrored in a flat ``{line: state}`` dict
so ``probe``/``get_state``/``lookup`` are one hash probe instead of a
set-index/tag two-step, and outstanding fills are tracked in a min-heap
keyed by completion cycle so ``mshr_inflight`` retires finished fills in
O(log n) pops instead of scanning every pending line. The per-set dicts
remain the source of truth for victim selection and set occupancy.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.memory.replacement import LRUPolicy, ReplacementPolicy
from repro.utils import SLOTTED


@dataclass(**SLOTTED)
class CacheLineState:
    """Per-line metadata."""

    tag: int
    ready_cycle: int = 0          # fill completion time; <= now means resident
    lru: int = 0
    p_bit: bool = False           # EMISSARY priority bit
    is_instruction: bool = True
    #: fill source: "fetch" (demand/FDIP stream), "prefetch" (PDIP/EIP PQ)
    source: str = "fetch"
    #: True until the first demand access after a prefetch fill
    unused_prefetch: bool = False


@dataclass(**SLOTTED)
class AccessResult:
    """Outcome of a cache access."""

    hit: bool                 # line was resident (possibly still pending)
    ready_cycle: int          # when the data is available
    pending: bool = False     # hit on an in-flight fill (MSHR merge)
    evicted_line: Optional[int] = None
    evicted_state: Optional[CacheLineState] = None


class Cache:
    """One cache level. Addresses are *line numbers* (byte addr >> 6)."""

    __slots__ = ("name", "size_kb", "assoc", "num_sets", "mshrs", "policy",
                 "_sets", "_lines", "_pending", "_fill_heap", "_clock",
                 "accesses", "misses", "evictions")

    def __init__(self, name: str, size_kb: int, assoc: int,
                 line_size: int = 64, mshrs: int = 16,
                 policy: Optional[ReplacementPolicy] = None):
        num_lines = size_kb * 1024 // line_size
        if num_lines % assoc != 0:
            raise ValueError("%s: lines %d not divisible by assoc %d"
                             % (name, num_lines, assoc))
        self.name = name
        self.size_kb = size_kb
        self.assoc = assoc
        self.num_sets = num_lines // assoc
        self.mshrs = mshrs
        self.policy = policy if policy is not None else LRUPolicy()
        self._sets: Dict[int, Dict[int, CacheLineState]] = {}
        #: flat residency mirror of ``_sets`` for O(1) line queries
        self._lines: Dict[int, CacheLineState] = {}
        self._pending: Dict[int, int] = {}  # line -> ready_cycle
        #: (ready_cycle, line) min-heap over ``_pending``; entries whose
        #: line was evicted/refilled are stale and skipped lazily
        self._fill_heap: List[Tuple[int, int]] = []
        self._clock = 0

        self.accesses = 0
        self.misses = 0
        self.evictions = 0

    # -- indexing ----------------------------------------------------------
    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    def _tag(self, line: int) -> int:
        return line // self.num_sets

    # -- queries ---------------------------------------------------------------
    def probe(self, line: int) -> bool:
        """Presence check with no side effects (used by the PQ filter)."""
        return line in self._lines

    def get_state(self, line: int) -> Optional[CacheLineState]:
        """Line state without LRU side effects (None if absent)."""
        return self._lines.get(line)

    def mshr_inflight(self, cycle: int) -> int:
        """Number of fills still outstanding at ``cycle``."""
        pending = self._pending
        if not pending:
            return 0
        heap = self._fill_heap
        while heap and heap[0][0] <= cycle:
            ready, line = heapq.heappop(heap)
            # stale heap entries (evicted/invalidated/refilled lines)
            # no longer match the live pending record; skip them
            if pending.get(line) == ready:
                del pending[line]
        return len(pending)

    def mshr_free(self, cycle: int) -> int:
        """MSHRs available at this cycle."""
        return self.mshrs - self.mshr_inflight(cycle)

    # -- operations ----------------------------------------------------------
    def lookup(self, line: int, cycle: int) -> Optional[CacheLineState]:
        """LRU-updating lookup; returns the state (possibly pending) or None."""
        self.accesses += 1
        state = self._lines.get(line)
        if state is None:
            self.misses += 1
            return None
        self._clock += 1
        state.lru = self._clock
        return state

    def fill(self, line: int, ready_cycle: int, is_instruction: bool = True,
             source: str = "fetch") -> AccessResult:
        """Allocate ``line``, evicting a victim if the set is full.

        The caller is responsible for having checked MSHR capacity.
        """
        evicted_line, evicted_state = self.fill_quick(
            line, ready_cycle, is_instruction, source)
        return AccessResult(hit=False, ready_cycle=ready_cycle,
                            evicted_line=evicted_line,
                            evicted_state=evicted_state)

    def fill_quick(self, line: int, ready_cycle: int,
                   is_instruction: bool = True, source: str = "fetch",
                   ) -> "Tuple[Optional[int], Optional[CacheLineState]]":
        """:meth:`fill` without the AccessResult wrapper.

        Returns ``(evicted_line, evicted_state)``; fills sit on the miss
        path of every level, so the per-call result object is measurable.
        """
        num_sets = self.num_sets
        set_idx = line % num_sets
        tag = line // num_sets
        ways = self._sets.get(set_idx)
        if ways is None:
            ways = self._sets[set_idx] = {}
        clock = self._clock + 1
        self._clock = clock
        evicted_line = None
        evicted_state = None
        if len(ways) >= self.assoc and tag not in ways:
            victim_tag = self.policy.victim(ways)
            evicted_state = ways.pop(victim_tag)
            evicted_line = victim_tag * num_sets + set_idx
            del self._lines[evicted_line]
            self._pending.pop(evicted_line, None)
            self.evictions += 1
        state = CacheLineState(
            tag=tag, ready_cycle=ready_cycle, lru=clock,
            is_instruction=is_instruction, source=source,
            unused_prefetch=(source == "prefetch"),
        )
        ways[tag] = state
        self._lines[line] = state
        self._pending[line] = ready_cycle
        heapq.heappush(self._fill_heap, (ready_cycle, line))
        return evicted_line, evicted_state

    def invalidate(self, line: int) -> None:
        """Drop a line (and its pending fill) if present."""
        if self._lines.pop(line, None) is not None:
            ways = self._sets.get(self._set_index(line))
            if ways:
                ways.pop(self._tag(line), None)
        self._pending.pop(line, None)

    # -- occupancy helpers -------------------------------------------------
    def resident_lines(self) -> int:
        """Total lines currently allocated."""
        return len(self._lines)

    def set_occupancy(self, line: int) -> Dict[int, CacheLineState]:
        """The ways of the set containing ``line`` (for policy inspection)."""
        return self._sets.get(self._set_index(line), {})

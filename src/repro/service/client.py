"""Blocking client for the simulation job server (stdlib-only).

Speaks the control plane of :mod:`repro.service.server` over
:class:`http.client.HTTPConnection` — no third-party HTTP stack. Used
by the ``repro submit`` / ``repro jobs`` CLI commands and the service
tests; scripts can use it directly::

    from repro.service.client import ServiceClient

    client = ServiceClient(port=8642)
    job = client.submit("cassandra", "pdip_44", instructions=100_000)
    done = client.wait(job["id"])
    stats = client.result(job["id"])["stats"]
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional, Tuple

from repro.service.server import DEFAULT_PORT


class ServiceError(RuntimeError):
    """A non-2xx control-plane response (carries status + payload).

    ``status`` is the HTTP status of the rejected response, or 0 when
    the server answered bytes the client could not parse as an HTTP
    JSON response at all (truncated or malformed body) — connection
    failures stay ``OSError``, a different class of problem.
    """

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        super().__init__("HTTP %d: %s"
                         % (status, payload.get("error", payload)))
        self.status = status
        self.payload = payload


class ServiceClient:
    """Thin request wrapper; one TCP connection per call (server closes).

    ``backpressure_retries`` opts in to retrying a 429 queue-full
    submission: the client sleeps the server-suggested
    ``retry_after_s`` (capped) and resubmits, up to the budget, before
    surfacing the 429 as a :class:`ServiceError`.
    """

    #: cap on one server-suggested backpressure sleep (seconds)
    MAX_RETRY_AFTER_S = 5.0

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 timeout: float = 30.0,
                 backpressure_retries: int = 0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.backpressure_retries = max(0, int(backpressure_retries))

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None
                 ) -> Tuple[int, Dict[str, object]]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            data = json.dumps(body).encode("utf-8") if body is not None \
                else None
            headers = {"Content-Type": "application/json"} if data else {}
            conn.request(method, path, body=data, headers=headers)
            try:
                response = conn.getresponse()
                raw = response.read()
            except (http.client.HTTPException, ValueError) as exc:
                # unparsable status line / truncated body: a broken
                # response, not a broken connection
                raise ServiceError(0, {"error": "malformed response: %r"
                                                % (exc,)}) from exc
            ctype = response.getheader("Content-Type") or ""
            if ctype.startswith("text/html"):
                # the dashboard page: a document, not a JSON payload
                return response.status, {
                    "__html__": raw.decode("utf-8", "replace")}
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (ValueError, UnicodeDecodeError) as exc:
                raise ServiceError(
                    response.status,
                    {"error": "malformed response body: %r" % (exc,),
                     "body": raw[:200].decode("latin-1")}) from exc
            return response.status, payload
        finally:
            conn.close()

    def _checked(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None,
                 ok: Tuple[int, ...] = (200, 202)) -> Dict[str, object]:
        status, payload = self._request(method, path, body)
        if status not in ok:
            raise ServiceError(status, payload)
        return payload

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        return self._checked("GET", "/healthz")

    def submit(self, benchmark: str, policy: str = "baseline",
               instructions: Optional[int] = None,
               warmup: Optional[int] = None, seed: int = 1,
               priority: int = 0,
               config: Optional[Dict[str, object]] = None,
               fault: Optional[str] = None,
               fault_seconds: Optional[float] = None,
               backpressure_retries: Optional[int] = None
               ) -> Dict[str, object]:
        """Submit one cell; returns the job summary (raises on 4xx/5xx).

        A duplicate of an active job coalesces server-side: the summary
        you get back is the existing job's, with the same id. A 429
        (queue full) is retried after the server-suggested delay when
        ``backpressure_retries`` (or the client-level default) allows.
        """
        body: Dict[str, object] = {"benchmark": benchmark, "policy": policy,
                                   "seed": seed, "priority": priority}
        if instructions is not None:
            body["instructions"] = instructions
        if warmup is not None:
            body["warmup"] = warmup
        if config:
            body["config"] = config
        if fault is not None:
            body["fault"] = fault
            if fault_seconds is not None:
                body["fault_seconds"] = fault_seconds
        budget = (self.backpressure_retries if backpressure_retries is None
                  else max(0, int(backpressure_retries)))
        while True:
            try:
                return self._checked("POST", "/jobs", body)["job"]
            except ServiceError as exc:
                if exc.status != 429 or budget <= 0:
                    raise
                budget -= 1
                delay = float(exc.payload.get("retry_after_s", 1.0))
                time.sleep(min(max(delay, 0.0), self.MAX_RETRY_AFTER_S))

    def workers(self) -> List[Dict[str, object]]:
        """Registered cluster workers (coordinator mode; 404 otherwise)."""
        return self._checked("GET", "/workers")["workers"]

    def jobs(self) -> List[Dict[str, object]]:
        return self._checked("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> Dict[str, object]:
        return self._checked("GET", "/jobs/%s" % job_id)["job"]

    def result(self, job_id: str) -> Dict[str, object]:
        """``{id, key, source, stats}`` of a DONE job (409 otherwise)."""
        return self._checked("GET", "/jobs/%s/result" % job_id)

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._checked("POST", "/jobs/%s/cancel" % job_id)["job"]

    def drain(self) -> Dict[str, object]:
        return self._checked("POST", "/drain")

    # -- dashboard + sweep registry ------------------------------------
    def dash_page(self) -> str:
        """The dashboard HTML document (``GET /dash``)."""
        return str(self._checked("GET", "/dash")["__html__"])

    def dash_state(self) -> Dict[str, object]:
        """Everything the dashboard renders, as one JSON document."""
        return self._checked("GET", "/dash/state")

    def sweeps(self) -> List[Dict[str, object]]:
        """Registered sweep snapshots (running first, then newest)."""
        return self._checked("GET", "/sweeps")["sweeps"]

    def sweep(self, sweep_id: str) -> Dict[str, object]:
        return self._checked("GET", "/sweeps/%s" % sweep_id)["sweep"]

    def register_sweep(self, name: str, plan_digest: str = "",
                       total: int = 0,
                       benchmarks: Optional[List[str]] = None,
                       policies: Optional[List[str]] = None
                       ) -> Dict[str, object]:
        """Register a sweep on the server's dashboard; returns it."""
        body: Dict[str, object] = {"name": name, "plan_digest": plan_digest,
                                   "total": total,
                                   "benchmarks": benchmarks or [],
                                   "policies": policies or []}
        return self._checked("POST", "/sweeps", body)["sweep"]

    def sweep_progress(self, sweep_id: str,
                       counts: Optional[Dict[str, int]] = None,
                       grid: Optional[Dict[str, object]] = None,
                       state: str = "running") -> Dict[str, object]:
        """Push executor progress into a registered sweep's snapshot."""
        body: Dict[str, object] = {"state": state}
        if counts is not None:
            body["counts"] = counts
        if grid is not None:
            body["grid"] = grid
        return self._checked("POST", "/sweeps/%s/progress" % sweep_id,
                             body)["sweep"]

    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll: float = 0.1) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; returns it.

        Raises ``TimeoutError`` if ``timeout`` seconds elapse first.
        """
        from repro.service.jobs import JobState

        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] in JobState.TERMINAL:
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError("job %s still %s after %.3gs"
                                   % (job_id, job["state"], timeout))
            time.sleep(poll)

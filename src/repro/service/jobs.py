"""Job model shared by the simulation server, client, and CLI.

A *job* is one simulation cell — the same (benchmark, policy,
instructions, warmup, seed, config) tuple the suite runner fans out —
plus scheduling state: priority, attempts, timestamps, and a terminal
status. Jobs are identified twice: by a server-assigned ``id`` (opaque,
per-server) and by their cell ``key`` (the canonical run digest), which
is what the store and the deduplication logic use.

:func:`execute_cell` is the process-pool entry point: a module-level
function (picklable) that rebuilds the cell from its JSON payload and
simulates it with the ordinary runner internals. Fault injection
(``fault: crash|fail|hang``) exists for the failure-mode tests and the
CI smoke job and is refused by the server unless started with
``--allow-faults``.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.simulator.config import MachineConfig
from repro.simulator.manifest import config_hash
from repro.simulator.policies import POLICIES
from repro.utils import pool_child_init  # noqa: F401  (re-export: historic home)
from repro.workloads.profiles import known_benchmark_names


class JobState:
    """Lifecycle: QUEUED -> RUNNING -> one of the terminal states."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = frozenset({DONE, FAILED, CANCELLED})


#: fault kinds the worker honours (tests / CI smoke only)
FAULT_KINDS = frozenset({"crash", "fail", "hang"})


@dataclass
class Job:
    """One scheduled simulation cell (server-side bookkeeping)."""

    id: str
    key: str                    #: canonical cell digest (store key)
    payload: Dict[str, object]  #: normalized submission (see below)
    priority: int = 0           #: higher runs earlier
    seq: int = 0                #: FIFO tiebreak within a priority
    state: str = JobState.QUEUED
    attempts: int = 0
    error: str = ""
    source: str = ""            #: "store" | "worker" once DONE
    worker: str = ""            #: cluster worker id executing this job
    cancel_requested: bool = False
    submitted: float = 0.0
    started: float = 0.0
    finished: float = 0.0
    wall_time: float = 0.0      #: seconds simulating (0.0 on a store hit)
    result: Optional[Dict[str, object]] = None  #: stats dict once DONE

    def summary(self) -> Dict[str, object]:
        """JSON form for ``GET /jobs`` (no result payload)."""
        data = dataclasses.asdict(self)
        data.pop("result")
        data.pop("payload")
        for name in ("benchmark", "policy", "seed", "instructions",
                     "warmup", "fault"):
            if name in self.payload:
                data[name] = self.payload[name]
        return data


def config_from_payload(overrides: Optional[Dict[str, object]]
                        ) -> Optional[MachineConfig]:
    """Build a MachineConfig from a submission's ``config`` overrides.

    Top-level keys override :class:`MachineConfig` fields; the nested
    ``hierarchy`` dict overrides ``HierarchyConfig`` fields. ``None``
    (or an empty dict) means the default machine. Raises ``ValueError``
    on unknown fields so a typo is a 400, not a silently-default run.
    """
    if not overrides:
        return None
    from repro.memory.hierarchy import HierarchyConfig

    overrides = dict(overrides)
    hier = overrides.pop("hierarchy", None)
    fields_ = {f.name for f in dataclasses.fields(MachineConfig)}
    unknown = set(overrides) - fields_
    if unknown:
        raise ValueError("unknown MachineConfig fields: %s"
                         % ", ".join(sorted(unknown)))
    if hier is not None:
        hier_fields = {f.name for f in dataclasses.fields(HierarchyConfig)}
        unknown = set(hier) - hier_fields
        if unknown:
            raise ValueError("unknown HierarchyConfig fields: %s"
                             % ", ".join(sorted(unknown)))
        overrides["hierarchy"] = HierarchyConfig(**hier)
    return MachineConfig(**overrides)


def normalize_submission(body: Dict[str, object]) -> Dict[str, object]:
    """Validate and default a ``POST /jobs`` body into a cell payload.

    Returns ``{benchmark, policy, instructions, warmup, seed, priority,
    config?, fault?, fault_seconds?}``; raises ``ValueError`` with a
    client-presentable message on anything malformed.
    """
    from repro.simulator.runner import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP

    if not isinstance(body, dict):
        raise ValueError("submission body must be a JSON object")
    benchmark = body.get("benchmark")
    if benchmark not in known_benchmark_names():
        raise ValueError("unknown benchmark %r (see 'repro list')"
                         % (benchmark,))
    policy = body.get("policy", "baseline")
    if policy not in POLICIES:
        raise ValueError("unknown policy %r (see 'repro list')" % (policy,))
    payload: Dict[str, object] = {
        "benchmark": benchmark,
        "policy": policy,
        "instructions": int(body.get("instructions",
                                     DEFAULT_INSTRUCTIONS)),
        "warmup": int(body.get("warmup", DEFAULT_WARMUP)),
        "seed": int(body.get("seed", 1)),
        "priority": int(body.get("priority", 0)),
    }
    if payload["instructions"] <= 0:
        raise ValueError("instructions must be positive")
    if payload["warmup"] < 0:
        raise ValueError("warmup must be non-negative")
    config = body.get("config")
    if config:
        config_from_payload(config)  # validate field names eagerly
        payload["config"] = config
    fault = body.get("fault")
    if fault is not None:
        if fault not in FAULT_KINDS:
            raise ValueError("unknown fault %r (one of %s)"
                             % (fault, ", ".join(sorted(FAULT_KINDS))))
        payload["fault"] = fault
        payload["fault_seconds"] = float(body.get("fault_seconds", 30.0))
    return payload




def execute_cell(payload: Dict[str, object]) -> Dict[str, object]:
    """Pool worker: simulate one cell from its normalized payload.

    Bypasses the on-disk result cache (the server parent owns all
    persistence, so workers never write concurrently). Returns
    ``{stats, wall_time, worker, config_hash}``.
    """
    from repro.simulator.runner import run_benchmark

    fault = payload.get("fault")
    if fault == "crash":
        # simulate a worker death (SIGKILL/OOM): the pool breaks and the
        # server must recover it — an exception would be the wrong shape
        os._exit(17)
    if fault == "fail":
        raise RuntimeError("injected failure (fault=fail)")
    if fault == "hang":
        time.sleep(float(payload.get("fault_seconds", 30.0)))
        raise RuntimeError("injected hang outlived the job timeout")
    config = config_from_payload(payload.get("config"))
    t0 = time.perf_counter()
    stats = run_benchmark(payload["benchmark"], payload["policy"],
                          instructions=int(payload["instructions"]),
                          warmup=int(payload["warmup"]),
                          config=config, seed=int(payload["seed"]),
                          use_cache=False)
    return {
        "stats": stats.to_dict(),
        "wall_time": time.perf_counter() - t0,
        "worker": "pid:%d" % os.getpid(),
        "config_hash": config_hash(config),
    }


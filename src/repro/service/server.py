"""Async simulation job server over the parallel runner.

A long-lived, dependency-free service (``repro serve``) that schedules
simulation cells across a bounded :class:`ProcessPoolExecutor`, fronted
by a minimal HTTP/1.1 control plane on :func:`asyncio.start_server`
(no aiohttp, no http.server — requests are framed by hand). The shape
is an inference-serving results cache: submissions deduplicate against
the content-addressed :class:`~repro.service.store.ResultStore` and
against identical in-flight jobs, a priority queue orders the backlog,
the queue is bounded (HTTP 429 past the limit), per-job timeouts and
worker crashes are retried with exponential backoff, and SIGTERM drains
gracefully — in-flight cells finish and persist before the process
exits 0.

Endpoints (all JSON)::

    GET  /healthz            server state, queue depth, counters, store info
    GET  /jobs               job summaries (newest last)
    POST /jobs               submit a cell; 202 queued / 200 coalesced or
                             store hit / 400 invalid / 429 queue full /
                             503 draining
    GET  /jobs/<id>          one job's status
    GET  /jobs/<id>/result   the stats payload (409 until terminal)
    POST /jobs/<id>/cancel   cancel a queued (immediate) or running
                             (best-effort, takes effect at the next
                             attempt boundary) job
    POST /drain              begin graceful drain (also sent by SIGTERM)
    GET  /dash               the live dashboard page (text/html)
    GET  /dash/state         everything the dashboard renders, one JSON doc
    GET  /sweeps             registered sweep snapshots (dashboard order)
    POST /sweeps             register a sweep (202; id in the body)
    GET  /sweeps/<id>        one sweep's snapshot
    POST /sweeps/<id>/progress  executor progress push (counts + grid)

Scheduling: the backlog is a max-priority heap (higher ``priority``
first, FIFO within a priority — the service-level echo of the paper's
priority-directed theme). Worker slots are a semaphore; each job runs
attempts of :func:`repro.service.jobs.execute_cell` in the process
pool. A timeout or a crashed worker (``BrokenProcessPool``) resets the
pool — surviving tasks are unaffected because each attempt holds its
own future — and the job retries with doubling backoff until the retry
budget is spent, then reports ``failed`` with the last error.
"""

from __future__ import annotations

import asyncio
import heapq
import json
import signal
import time
import uuid
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Tuple

from repro.dash import build_state, render_page, sweep_rows
from repro.service.jobs import (
    Job,
    JobState,
    config_from_payload,
    execute_cell,
    normalize_submission,
    pool_child_init,
)
from repro.service.store import ResultStore
from repro.simulator import cache as result_cache
from repro.simulator.stats import SimulationStats
from repro.utils import canonical_digest

#: default control-plane port (unregistered; override with --port)
DEFAULT_PORT = 8642
#: default submission backlog bound (queued jobs, not running ones)
DEFAULT_QUEUE_LIMIT = 256
#: default per-attempt retry budget beyond try #1
DEFAULT_RETRIES = 2
#: base exponential-backoff delay between attempts (seconds)
DEFAULT_BACKOFF_S = 0.25

_MAX_BODY = 1 << 20          # 1 MiB submission bodies are plenty
_MAX_HEADERS = 64
#: registered sweep snapshots kept in memory (oldest finished evicted)
MAX_SWEEPS = 32


class SimulationServer:
    """The job scheduler plus its HTTP control plane."""

    def __init__(self, store: Optional[ResultStore] = None,
                 jobs: int = 2,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 timeout: Optional[float] = None,
                 retries: int = DEFAULT_RETRIES,
                 backoff: float = DEFAULT_BACKOFF_S,
                 allow_faults: bool = False) -> None:
        self.store = store
        self.worker_count = max(1, int(jobs))
        self.queue_limit = max(1, int(queue_limit))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.allow_faults = allow_faults

        self.jobs: Dict[str, Job] = {}
        self._order: List[str] = []            # submission order, for /jobs
        self._heap: List[Tuple[int, int, str]] = []  # (-priority, seq, id)
        self._seq = 0
        self._wake = asyncio.Event()
        self._slots = asyncio.Semaphore(self.worker_count)
        self._running: set = set()             # live _run_job tasks
        self._by_key: Dict[str, str] = {}      # active cell key -> job id
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = asyncio.Lock()
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self.draining = False
        self._drained = asyncio.Event()
        self.sweeps: Dict[str, Dict[str, object]] = {}  # id -> snapshot
        self.counters: Dict[str, int] = {
            "submitted": 0, "executed": 0, "store_hits": 0,
            "coalesced": 0, "retries": 0, "timeouts": 0,
            "worker_crashes": 0, "failed": 0, "cancelled": 0,
            "sweeps_registered": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _make_pool(self) -> Optional[ProcessPoolExecutor]:
        """Execution backend hook: the local process pool.

        :class:`~repro.service.cluster.Coordinator` overrides this to
        return ``None`` — a coordinator never simulates locally, it
        dispatches to registered workers.
        """
        return ProcessPoolExecutor(max_workers=self.worker_count,
                                   initializer=pool_child_init)

    def _dash_workers(self) -> Optional[List[Dict[str, object]]]:
        """Dashboard hook: fleet summaries, or None on a plain server.

        :class:`~repro.service.cluster.Coordinator` overrides this with
        its registered-worker table; the dashboard shows the workers
        panel exactly when this returns a list.
        """
        return None

    async def start(self, host: str = "127.0.0.1",
                    port: int = DEFAULT_PORT) -> Tuple[str, int]:
        """Open the pool and the listening socket; returns (host, port)."""
        self._pool = self._make_pool()
        self._server = await asyncio.start_server(self._handle_client,
                                                  host, port)
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        sock = self._server.sockets[0].getsockname()
        return sock[0], sock[1]

    async def serve_until_drained(self) -> None:
        """Block until a drain completes (SIGTERM or ``POST /drain``)."""
        await self._drained.wait()

    def request_drain(self) -> None:
        """Stop accepting submissions; finish the backlog, then exit."""
        if self.draining:
            return
        self.draining = True
        self._wake.set()

    async def _shutdown(self) -> None:
        """Dispatcher epilogue: wait for in-flight jobs, close everything."""
        if self._running:
            await asyncio.gather(*list(self._running),
                                 return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_event_loop()
        if self._pool is not None:
            pool = self._pool
            await loop.run_in_executor(
                None, lambda: pool.shutdown(wait=True))
        if self.store is not None:
            await loop.run_in_executor(None, self.store.close)
        self._drained.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT begin a graceful drain (POSIX event loops)."""
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_drain)
            except (NotImplementedError, RuntimeError):
                pass  # non-POSIX loop; CLI still has POST /drain

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _enqueue(self, job: Job) -> None:
        self.jobs[job.id] = job
        self._order.append(job.id)
        heapq.heappush(self._heap, (-job.priority, job.seq, job.id))
        self._wake.set()

    def _queued_count(self) -> int:
        return sum(1 for j in self.jobs.values()
                   if j.state == JobState.QUEUED)

    async def _next_job(self) -> Optional[Job]:
        """Pop the highest-priority queued job; None once drained dry."""
        while True:
            while self._heap:
                _, _, job_id = heapq.heappop(self._heap)
                job = self.jobs[job_id]
                if job.state == JobState.QUEUED:
                    return job
                # cancelled while queued: tombstone, skip
            if self.draining:
                return None
            self._wake.clear()
            await self._wake.wait()

    async def _dispatch_loop(self) -> None:
        while True:
            job = await self._next_job()
            if job is None:
                break
            await self._slots.acquire()
            if job.state != JobState.QUEUED:  # cancelled while waiting
                self._slots.release()
                continue
            task = asyncio.ensure_future(self._run_job(job))
            self._running.add(task)
            task.add_done_callback(self._running.discard)
        await self._shutdown()

    def _finish(self, job: Job, state: str, error: str = "") -> None:
        job.state = state
        job.error = error or job.error
        job.finished = time.time()
        if self._by_key.get(job.key) == job.id:
            del self._by_key[job.key]
        if state == JobState.FAILED:
            self.counters["failed"] += 1
        elif state == JobState.CANCELLED:
            self.counters["cancelled"] += 1

    async def _run_job(self, job: Job) -> None:
        try:
            if job.state != JobState.QUEUED:
                return
            job.state = JobState.RUNNING
            job.started = time.time()
            fault = "fault" in job.payload
            if self.store is not None and not fault:
                hit = await asyncio.get_event_loop().run_in_executor(
                    None, self.store.get, job.key)
                if hit is not None:
                    job.result = hit.to_dict()
                    job.source = "store"
                    self.counters["store_hits"] += 1
                    self._finish(job, JobState.DONE)
                    return
            await self._run_attempts(job)
        finally:
            self._slots.release()

    async def _run_attempts(self, job: Job) -> None:
        delay = self.backoff
        for attempt in range(1, self.retries + 2):
            job.attempts = attempt
            try:
                assert self._pool is not None
                future = asyncio.get_event_loop().run_in_executor(
                    self._pool, execute_cell, dict(job.payload))
                if self.timeout is not None:
                    result = await asyncio.wait_for(future, self.timeout)
                else:
                    result = await future
            except asyncio.TimeoutError:
                job.error = "attempt %d timed out after %.3gs" % (
                    attempt, self.timeout or 0.0)
                self.counters["timeouts"] += 1
                await self._reset_pool()
            except BrokenProcessPool as exc:
                job.error = "worker crashed: %r" % (exc,)
                self.counters["worker_crashes"] += 1
                await self._reset_pool()
            except Exception as exc:  # noqa: BLE001 - retried below
                job.error = repr(exc)
            else:
                if job.cancel_requested:
                    self._finish(job, JobState.CANCELLED,
                                 "cancelled while running")
                    return
                job.result = result["stats"]
                job.wall_time = float(result.get("wall_time", 0.0))
                job.source = result.get("worker", "worker")
                self.counters["executed"] += 1
                await self._persist(job, result)
                self._finish(job, JobState.DONE)
                return
            if job.cancel_requested:
                self._finish(job, JobState.CANCELLED,
                             "cancelled while running")
                return
            if attempt <= self.retries:
                self.counters["retries"] += 1
                await asyncio.sleep(delay)
                delay *= 2
        self._finish(job, JobState.FAILED)

    async def _persist(self, job: Job, result: Dict[str, object]) -> None:
        """Write a finished cell into the store (off the event loop)."""
        if self.store is None or "fault" in job.payload:
            return
        stats = SimulationStats.from_dict(dict(job.result or {}))
        meta = {
            "benchmark": job.payload["benchmark"],
            "policy": job.payload["policy"],
            "seed": job.payload["seed"],
            "instructions": job.payload["instructions"],
            "warmup": job.payload["warmup"],
            "config_hash": result.get("config_hash", ""),
            "code_version": result_cache.RUN_KEY_VERSION,
            "wall_time": job.wall_time,
            "worker": job.source,
            "attempts": job.attempts,
            "job_id": job.id,
        }
        await asyncio.get_event_loop().run_in_executor(
            None, lambda: self.store.put(job.key, stats, meta=meta))

    async def _reset_pool(self) -> None:
        """Replace the process pool after a timeout or crash.

        A timed-out attempt leaves its worker wedged mid-simulation and
        a crashed worker breaks the whole executor; both are recovered
        the same way the parallel runner recovers a broken pool — throw
        it away and start fresh. Old workers are terminated so a wedged
        simulation cannot outlive its job.
        """
        async with self._pool_lock:
            old, self._pool = self._pool, ProcessPoolExecutor(
                max_workers=self.worker_count,
                initializer=pool_child_init)
        if old is None:
            return
        await asyncio.get_event_loop().run_in_executor(
            None, tear_down_pool, old)

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def _submit(self, body: Dict[str, object]) -> Tuple[int, Dict[str, object]]:
        if self.draining:
            return 503, {"error": "server is draining"}
        try:
            payload = normalize_submission(body)
        except (ValueError, TypeError) as exc:
            return 400, {"error": str(exc)}
        if "fault" in payload and not self.allow_faults:
            return 403, {"error": "fault injection requires --allow-faults"}
        self.counters["submitted"] += 1
        if "fault" in payload:
            # fault jobs are never stored or coalesced; key on the whole
            # payload so two injected faults stay distinct jobs
            key = "fault-" + canonical_digest(payload)
        else:
            key = ResultStore.cell_key(
                payload["benchmark"], payload["policy"],
                int(payload["instructions"]), int(payload["warmup"]),
                seed=int(payload["seed"]),
                config=config_from_payload(payload.get("config")))
            active = self._by_key.get(key)
            if active is not None:
                self.counters["coalesced"] += 1
                job = self.jobs[active]
                return 200, {"job": job.summary(), "coalesced": True}
        if self._queued_count() >= self.queue_limit:
            return 429, {"error": "queue full (%d queued)"
                                  % self.queue_limit,
                         "retry_after_s": 1.0}
        self._seq += 1
        job = Job(id=uuid.uuid4().hex[:12], key=key, payload=payload,
                  priority=int(payload.get("priority", 0)), seq=self._seq,
                  submitted=time.time())
        if "fault" not in payload:
            self._by_key[key] = job.id
        self._enqueue(job)
        return 202, {"job": job.summary()}

    def _cancel(self, job: Job) -> Tuple[int, Dict[str, object]]:
        if job.state in JobState.TERMINAL:
            return 409, {"error": "job already %s" % job.state,
                         "job": job.summary()}
        if job.state == JobState.QUEUED:
            self._finish(job, JobState.CANCELLED, "cancelled while queued")
            return 200, {"job": job.summary()}
        # running: flag it; the attempt loop honours the flag at the next
        # attempt boundary (an executing simulation cannot be preempted)
        job.cancel_requested = True
        return 202, {"job": job.summary(), "note": "cancel requested; "
                     "takes effect at the attempt boundary"}

    # ------------------------------------------------------------------
    # sweep registry + dashboard
    # ------------------------------------------------------------------
    def _register_sweep(self, body: Dict[str, object]
                        ) -> Tuple[int, Dict[str, object]]:
        """Create a sweep snapshot for the dashboard; returns its id.

        The registry is bookkeeping, not scheduling — jobs flow through
        ``POST /jobs`` exactly as before; a sweep entry only aggregates
        the executor's progress pushes for display. Capped at
        :data:`MAX_SWEEPS` snapshots (terminal entries evicted first).
        """
        try:
            total = int(body.get("total", 0))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return 400, {"error": "total must be an integer"}
        if total < 0:
            return 400, {"error": "total must be >= 0"}
        sweep_id = uuid.uuid4().hex[:12]
        snapshot: Dict[str, object] = {
            "id": sweep_id,
            "name": str(body.get("name") or "sweep"),
            "plan_digest": str(body.get("plan_digest") or ""),
            "total": total,
            "benchmarks": [str(b) for b in body.get("benchmarks") or ()],
            "policies": [str(p) for p in body.get("policies") or ()],
            "state": "running",
            "created": time.time(),
            "updated": time.time(),
            "counts": {},
            "grid": {},
        }
        self.sweeps[sweep_id] = snapshot
        self.counters["sweeps_registered"] += 1
        while len(self.sweeps) > MAX_SWEEPS:
            victims = sorted(
                self.sweeps.values(),
                key=lambda s: (s["state"] == "running", s["created"]))
            del self.sweeps[str(victims[0]["id"])]
        return 202, {"sweep": snapshot}

    @staticmethod
    def _update_sweep(snapshot: Dict[str, object],
                      body: Dict[str, object]
                      ) -> Tuple[int, Dict[str, object]]:
        """Fold one executor progress push into a sweep snapshot."""
        state = body.get("state", snapshot["state"])
        if state not in ("running", "done", "failed"):
            return 400, {"error": "bad sweep state %r" % (state,)}
        counts = body.get("counts")
        if counts is not None:
            if not isinstance(counts, dict):
                return 400, {"error": "counts must be an object"}
            snapshot["counts"] = counts
        grid = body.get("grid")
        if grid is not None:
            if not isinstance(grid, dict):
                return 400, {"error": "grid must be an object"}
            snapshot["grid"] = grid
        snapshot["state"] = state
        snapshot["updated"] = time.time()
        return 200, {"sweep": snapshot}

    async def _dash_state(self) -> Dict[str, object]:
        """Assemble the ``GET /dash/state`` document (store off-loop)."""
        store_info: Optional[Dict[str, object]] = None
        if self.store is not None:
            loop = asyncio.get_event_loop()
            store_info = await loop.run_in_executor(None, self.store.info)
        workers = self._dash_workers()
        running = sum(1 for j in self.jobs.values()
                      if j.state == JobState.RUNNING)
        server = {
            "mode": "coordinator" if workers is not None else "server",
            "state": "draining" if self.draining else "running",
            "workers": self.worker_count,
            "queue_limit": self.queue_limit,
        }
        gauges = {"queued": self._queued_count(), "running": running,
                  "jobs": len(self.jobs)}
        return build_state(server, self.counters, gauges, self.sweeps,
                           [self.jobs[j].summary() for j in self._order],
                           workers=workers, store=store_info)

    async def _route(self, method: str, path: str,
                     body: Optional[Dict[str, object]]
                     ) -> Tuple[int, Dict[str, object]]:
        parts = [p for p in path.split("/") if p]
        if method == "GET" and parts == ["healthz"]:
            running = sum(1 for j in self.jobs.values()
                          if j.state == JobState.RUNNING)
            store_info: Optional[Dict[str, object]] = None
            if self.store is not None:
                loop = asyncio.get_event_loop()
                store_info = await loop.run_in_executor(
                    None, self.store.info)
            return 200, {
                "state": "draining" if self.draining else "running",
                "workers": self.worker_count,
                "queued": self._queued_count(),
                "running": running,
                "jobs": len(self.jobs),
                "queue_limit": self.queue_limit,
                "counters": dict(self.counters),
                "store": store_info,
            }
        if method == "GET" and parts == ["jobs"]:
            return 200, {"jobs": [self.jobs[j].summary()
                                  for j in self._order]}
        if method == "POST" and parts == ["jobs"]:
            return self._submit(body or {})
        if method == "POST" and parts == ["drain"]:
            self.request_drain()
            return 202, {"state": "draining"}
        if method == "GET" and parts == ["dash"]:
            return 200, {"__html__": render_page()}
        if method == "GET" and parts == ["dash", "state"]:
            return 200, await self._dash_state()
        if method == "GET" and parts == ["sweeps"]:
            return 200, {"sweeps": sweep_rows(self.sweeps)}
        if method == "POST" and parts == ["sweeps"]:
            return self._register_sweep(body or {})
        if len(parts) >= 2 and parts[0] == "sweeps":
            sweep = self.sweeps.get(parts[1])
            if sweep is None:
                return 404, {"error": "no such sweep %r" % parts[1]}
            if method == "GET" and len(parts) == 2:
                return 200, {"sweep": sweep}
            if method == "POST" and parts[2:] == ["progress"]:
                return self._update_sweep(sweep, body or {})
        if len(parts) >= 2 and parts[0] == "jobs":
            job = self.jobs.get(parts[1])
            if job is None:
                return 404, {"error": "no such job %r" % parts[1]}
            if method == "GET" and len(parts) == 2:
                return 200, {"job": job.summary()}
            if method == "GET" and parts[2:] == ["result"]:
                if job.state != JobState.DONE:
                    return 409, {"error": "job is %s" % job.state,
                                 "job": job.summary()}
                return 200, {"id": job.id, "key": job.key,
                             "source": job.source, "stats": job.result}
            if method == "POST" and parts[2:] == ["cancel"]:
                return self._cancel(job)
        return 404, {"error": "no route for %s %s" % (method, path)}

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        status, payload = 400, {"error": "malformed request"}
        try:
            parsed = await _read_request(reader)
            if parsed is not None:
                method, path, body = parsed
                status, payload = await self._route(method, path, body)
        except (ValueError, asyncio.IncompleteReadError) as exc:
            status, payload = 400, {"error": "bad request: %s" % exc}
        except Exception as exc:  # noqa: BLE001 - control plane must answer
            status, payload = 500, {"error": repr(exc)}
        try:
            _write_response(writer, status, payload)
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away; nothing to tell it
        finally:
            writer.close()


def tear_down_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool's workers and discard it (crash/timeout path).

    Shared by the server's :meth:`SimulationServer._reset_pool` and the
    cluster worker node: a wedged simulation must not outlive its job.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    for proc in processes:
        try:
            proc.terminate()
        except (OSError, ValueError):
            pass
    try:
        pool.shutdown(wait=False)
    except Exception:  # noqa: BLE001 - best-effort teardown
        pass


_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            403: "Forbidden", 404: "Not Found", 409: "Conflict",
            410: "Gone", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}


async def _read_request(reader: asyncio.StreamReader
                        ) -> Optional[Tuple[str, str, Optional[dict]]]:
    """Parse one HTTP/1.x request: (method, path, JSON body or None)."""
    line = await reader.readline()
    if not line:
        return None
    try:
        method, path, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise ValueError("bad request line %r" % line[:80])
    length = 0
    for _ in range(_MAX_HEADERS):
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    else:
        raise ValueError("too many headers")
    if length > _MAX_BODY:
        raise ValueError("body too large (%d bytes)" % length)
    body = None
    if length:
        raw = await reader.readexactly(length)
        body = json.loads(raw.decode("utf-8"))
    return method.upper(), path, body


def _write_response(writer: asyncio.StreamWriter, status: int,
                    payload: Dict[str, object]) -> None:
    # a payload of {"__html__": text} is a page (the dashboard), not a
    # JSON document; everything else on the control plane stays JSON
    html = payload.get("__html__") if isinstance(payload, dict) else None
    if isinstance(html, str):
        body = html.encode("utf-8")
        content_type = "text/html; charset=utf-8"
    else:
        body = json.dumps(payload).encode("utf-8")
        content_type = "application/json"
    head = ("HTTP/1.1 %d %s\r\n"
            "Content-Type: %s\r\n"
            "Content-Length: %d\r\n"
            "Connection: close\r\n\r\n"
            % (status, _REASONS.get(status, "Unknown"), content_type,
               len(body)))
    writer.write(head.encode("latin-1") + body)


async def _amain(host: str, port: int, server: SimulationServer,
                 announce: bool = True) -> int:
    bound_host, bound_port = await server.start(host, port)
    server.install_signal_handlers()
    if announce:
        store = (server.store.root if server.store is not None
                 else "(no store)")
        print("repro serve: listening on http://%s:%d  store=%s  "
              "workers=%d queue<=%d timeout=%s retries=%d"
              % (bound_host, bound_port, store, server.worker_count,
                 server.queue_limit, server.timeout, server.retries),
              flush=True)
    await server.serve_until_drained()
    if announce:
        print("repro serve: drained cleanly (%d executed, %d store hits, "
              "%d failed, %d cancelled)"
              % (server.counters["executed"], server.counters["store_hits"],
                 server.counters["failed"], server.counters["cancelled"]),
              flush=True)
    return 0


def serve(host: str = "127.0.0.1", port: int = DEFAULT_PORT,
          store_root: Optional[str] = None, jobs: int = 2,
          queue_limit: int = DEFAULT_QUEUE_LIMIT,
          timeout: Optional[float] = None, retries: int = DEFAULT_RETRIES,
          backoff: float = DEFAULT_BACKOFF_S,
          allow_faults: bool = False, announce: bool = True) -> int:
    """Blocking entry point for ``repro serve``; returns the exit code."""
    store = ResultStore(store_root) if store_root else None
    server = SimulationServer(store=store, jobs=jobs,
                              queue_limit=queue_limit, timeout=timeout,
                              retries=retries, backoff=backoff,
                              allow_faults=allow_faults)
    return asyncio.run(_amain(host, port, server, announce=announce))

"""Content-addressed, durable result store (SQLite index + blob dir).

The store is the persistence layer the figure scripts never had: every
simulated cell is recorded under its :func:`repro.simulator.cache.run_key`
digest — the canonical hash of (benchmark profile, policy spec,
instruction budget, seed, :class:`~repro.simulator.config.MachineConfig`
including the nested ``HierarchyConfig``, run-key code version) — so a
design-space sweep run twice performs zero simulations the second time,
across processes, machines sharing a volume, and weeks of wall time.

Layout on disk (everything under one root directory)::

    <root>/store.sqlite          # index: one row per cell key
    <root>/blobs/ab/abcdef...json  # content-addressed payload files

The SQLite index maps a cell key to the *content digest* of its stats
payload (and optionally of a telemetry dump); payloads live in the blob
directory named by the SHA-1 of their canonical JSON. Two cells with
bit-identical stats therefore share one blob file — sweeps that plateau
(e.g. PDIP table sizes past the working set) deduplicate storage for
free, and bit-identity between two runs is a file-name comparison.

Consistency model: blobs are immutable once written (a digest never
changes content) and are written atomically (temp file + ``rename``);
the index row is inserted only after its blob exists. Readers therefore
never observe a partial payload. Concurrent writers of the same cell
are idempotent — both write the same blob bytes and the second row
upsert wins harmlessly. Eviction (:meth:`ResultStore.prune`) deletes
least-recently-accessed index rows first and then garbage-collects
unreferenced blobs; a reader holding a key between those two steps just
re-simulates, it can never load a torn result.

``repro bench`` deliberately bypasses the store (as it bypasses the
result cache): a bench score must time a real simulation, never a
lookup.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from repro.simulator import cache as result_cache
from repro.simulator.config import MachineConfig
from repro.simulator.policies import PolicySpec, get_policy
from repro.simulator.stats import SimulationStats
from repro.utils import canonical_digest

#: store schema version (bump when the SQLite layout changes)
STORE_SCHEMA_VERSION = 2

#: env var naming the store root directory; batch entry points
#: (``repro run/suite/figure --store``, the experiments drivers, the
#: prewarm scripts) resolve it via :func:`store_from_env`
STORE_ENV = "REPRO_STORE"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    key TEXT PRIMARY KEY,
    benchmark TEXT NOT NULL DEFAULT '',
    policy TEXT NOT NULL DEFAULT '',
    seed INTEGER NOT NULL DEFAULT 0,
    instructions INTEGER NOT NULL DEFAULT 0,
    warmup INTEGER NOT NULL DEFAULT 0,
    config_hash TEXT NOT NULL DEFAULT '',
    code_version INTEGER NOT NULL DEFAULT 0,
    stats_blob TEXT NOT NULL,
    telemetry_blob TEXT,
    manifest TEXT,
    created REAL NOT NULL,
    last_access REAL NOT NULL,
    hits INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_results_last_access
    ON results (last_access);
CREATE INDEX IF NOT EXISTS idx_results_cell
    ON results (benchmark, policy, seed);
CREATE TABLE IF NOT EXISTS traces (
    digest TEXT PRIMARY KEY,
    name TEXT NOT NULL DEFAULT '',
    source_sha TEXT NOT NULL DEFAULT '',
    events INTEGER NOT NULL DEFAULT 0,
    instructions INTEGER NOT NULL DEFAULT 0,
    meta TEXT,
    created REAL NOT NULL,
    last_access REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_traces_source ON traces (source_sha);
"""


class ResultStore:
    """Durable get/put/get-or-compute over simulation results.

    Thread-safe (one connection guarded by a lock) and safe across
    processes (SQLite WAL + busy timeout; blob writes are atomic
    renames). All methods are synchronous — the async server calls
    them through an executor.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.blob_dir = self.root / "blobs"
        self.blob_dir.mkdir(exist_ok=True)
        self._lock = threading.Lock()
        self._db = sqlite3.connect(str(self.root / "store.sqlite"),
                                   timeout=30.0, check_same_thread=False)
        self._db.executescript(_SCHEMA)
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            ("schema", str(STORE_SCHEMA_VERSION)))
        self._db.commit()

    def close(self) -> None:
        with self._lock:
            self._db.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    @staticmethod
    def cell_key(benchmark: str, policy, instructions: int, warmup: int,
                 seed: int = 1,
                 config: Optional[MachineConfig] = None) -> str:
        """The store key for a cell: exactly the result-cache run key.

        One canonical digest (:func:`repro.utils.canonical_digest`)
        identifies a cell everywhere — result-cache file, manifest
        ``key`` column, store row — so artifacts from every subsystem
        cross-reference by construction.
        """
        spec: PolicySpec = (get_policy(policy) if isinstance(policy, str)
                            else policy)
        return result_cache.run_key(benchmark, spec, instructions, warmup,
                                    seed, config)

    # ------------------------------------------------------------------
    # blobs
    # ------------------------------------------------------------------
    def _blob_path(self, digest: str) -> Path:
        return self.blob_dir / digest[:2] / (digest + ".json")

    def _write_blob(self, payload) -> str:
        """Write a JSON payload content-addressed; returns its digest."""
        digest = canonical_digest(payload)
        path = self._blob_path(digest)
        if path.exists():  # identical content already stored
            return digest
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".%d.tmp" % os.getpid())
        with open(tmp, "w") as fh:
            json.dump(payload, fh, sort_keys=True)
        tmp.replace(path)
        return digest

    def _read_blob(self, digest: str):
        try:
            with open(self._blob_path(digest)) as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    # ------------------------------------------------------------------
    # get / put
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[SimulationStats]:
        """Stats stored under ``key`` (None on miss); bumps LRU clock."""
        with self._lock:
            row = self._db.execute(
                "SELECT stats_blob FROM results WHERE key = ?",
                (key,)).fetchone()
            if row is None:
                return None
            self._db.execute(
                "UPDATE results SET last_access = ?, hits = hits + 1 "
                "WHERE key = ?", (time.time(), key))
            self._db.commit()
        payload = self._read_blob(row[0])
        if payload is None:
            # torn/evicted blob: drop the dangling row, report a miss
            with self._lock:
                self._db.execute("DELETE FROM results WHERE key = ?",
                                 (key,))
                self._db.commit()
            return None
        return SimulationStats.from_dict(payload)

    def get_telemetry(self, key: str) -> Optional[Dict[str, object]]:
        """Telemetry dump stored with the cell (None if absent)."""
        with self._lock:
            row = self._db.execute(
                "SELECT telemetry_blob FROM results WHERE key = ?",
                (key,)).fetchone()
        if row is None or row[0] is None:
            return None
        return self._read_blob(row[0])

    def get_row(self, key: str) -> Optional[Dict[str, object]]:
        """The index row (metadata, no payload) for ``key``."""
        with self._lock:
            cur = self._db.execute(
                "SELECT key, benchmark, policy, seed, instructions, warmup,"
                " config_hash, code_version, stats_blob, telemetry_blob,"
                " manifest, created, last_access, hits"
                " FROM results WHERE key = ?", (key,))
            row = cur.fetchone()
            if row is None:
                return None
            names = [c[0] for c in cur.description]
        out = dict(zip(names, row))
        if out.get("manifest"):
            out["manifest"] = json.loads(out["manifest"])
        return out

    def put(self, key: str, stats: SimulationStats,
            meta: Optional[Dict[str, object]] = None,
            telemetry: Optional[Dict[str, object]] = None) -> str:
        """Persist a cell's stats (and optional telemetry) under ``key``.

        ``meta`` is a manifest-row-shaped dict (benchmark, policy, seed,
        instructions, warmup, config_hash, wall_time, worker, ...);
        searchable columns are lifted out of it, the rest rides along as
        JSON. Returns the stats payload's content digest.
        """
        meta = dict(meta or {})
        stats_digest = self._write_blob(stats.to_dict())
        telemetry_digest = (self._write_blob(telemetry)
                            if telemetry is not None else None)
        now = time.time()
        with self._lock:
            self._db.execute(
                "INSERT INTO results (key, benchmark, policy, seed,"
                " instructions, warmup, config_hash, code_version,"
                " stats_blob, telemetry_blob, manifest, created,"
                " last_access, hits)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 0)"
                " ON CONFLICT(key) DO UPDATE SET"
                " stats_blob = excluded.stats_blob,"
                " telemetry_blob = COALESCE(excluded.telemetry_blob,"
                "                           results.telemetry_blob),"
                " manifest = excluded.manifest,"
                " last_access = excluded.last_access",
                (key, str(meta.get("benchmark", "")),
                 str(meta.get("policy", "")),
                 int(meta.get("seed", 0)),
                 int(meta.get("instructions", 0)),
                 int(meta.get("warmup", 0)),
                 str(meta.get("config_hash", "")),
                 int(meta.get("code_version", result_cache.RUN_KEY_VERSION)),
                 stats_digest, telemetry_digest,
                 json.dumps(meta, sort_keys=True), now, now))
            self._db.commit()
        return stats_digest

    def get_or_compute(self, key: str,
                       compute: Callable[[], SimulationStats],
                       meta: Optional[Dict[str, object]] = None,
                       ) -> Tuple[SimulationStats, bool]:
        """``(stats, hit)``: load ``key``, or compute and persist it."""
        stats = self.get(key)
        if stats is not None:
            return stats, True
        stats = compute()
        self.put(key, stats, meta=meta)
        return stats, False

    def __contains__(self, key: str) -> bool:
        with self._lock:
            row = self._db.execute(
                "SELECT 1 FROM results WHERE key = ?", (key,)).fetchone()
        return row is not None

    def __len__(self) -> int:
        with self._lock:
            (n,) = self._db.execute(
                "SELECT COUNT(*) FROM results").fetchone()
        return int(n)

    # ------------------------------------------------------------------
    # trace blobs (ingested external workloads, PR 10)
    # ------------------------------------------------------------------
    # Traces are *inputs*, not results: rows are keyed by the blob's own
    # content digest, never LRU-pruned (prune() touches only results),
    # and their blobs are pinned against gc_blobs(). ``source_sha``
    # fingerprints (source bytes, ingest parameters) so re-ingesting the
    # same file is a pure index lookup — zero pipeline work.

    def put_trace(self, payload: Dict[str, object], name: str = "",
                  source_sha: str = "",
                  meta: Optional[Dict[str, object]] = None
                  ) -> Tuple[str, bool]:
        """Store an ingested trace blob; ``(digest, created)``.

        ``created`` is False when the digest was already indexed (the
        blob write itself is always idempotent).
        """
        digest = self._write_blob(payload)
        now = time.time()
        with self._lock:
            existed = self._db.execute(
                "SELECT 1 FROM traces WHERE digest = ?",
                (digest,)).fetchone() is not None
            self._db.execute(
                "INSERT INTO traces (digest, name, source_sha, events,"
                " instructions, meta, created, last_access)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)"
                " ON CONFLICT(digest) DO UPDATE SET"
                " name = excluded.name,"
                " source_sha = excluded.source_sha,"
                " meta = excluded.meta,"
                " last_access = excluded.last_access",
                (digest, name, source_sha,
                 int(len(payload.get("events", ()))),  # type: ignore[arg-type]
                 int((meta or {}).get("instructions", 0)),
                 json.dumps(meta or {}, sort_keys=True), now, now))
            self._db.commit()
        return digest, not existed

    def get_trace(self, digest: str) -> Optional[Dict[str, object]]:
        """Trace blob payload by digest (None on miss); bumps LRU clock."""
        with self._lock:
            row = self._db.execute(
                "SELECT 1 FROM traces WHERE digest = ?",
                (digest,)).fetchone()
            if row is not None:
                self._db.execute(
                    "UPDATE traces SET last_access = ? WHERE digest = ?",
                    (time.time(), digest))
                self._db.commit()
        if row is None:
            return None
        return self._read_blob(digest)

    def find_trace(self, source_sha: Optional[str] = None,
                   name: Optional[str] = None
                   ) -> Optional[Dict[str, object]]:
        """Newest trace row matching ``source_sha`` and/or ``name``."""
        clauses, params = [], []
        if source_sha is not None:
            clauses.append("source_sha = ?")
            params.append(source_sha)
        if name is not None:
            clauses.append("name = ?")
            params.append(name)
        if not clauses:
            return None
        with self._lock:
            cur = self._db.execute(
                "SELECT digest, name, source_sha, events, instructions,"
                " meta, created, last_access FROM traces WHERE "
                + " AND ".join(clauses) + " ORDER BY created DESC LIMIT 1",
                params)
            row = cur.fetchone()
            if row is None:
                return None
            names = [c[0] for c in cur.description]
        out = dict(zip(names, row))
        if out.get("meta"):
            out["meta"] = json.loads(out["meta"])
        return out

    def list_traces(self) -> "list[Dict[str, object]]":
        """All trace rows (metadata only), newest first."""
        with self._lock:
            cur = self._db.execute(
                "SELECT digest, name, source_sha, events, instructions,"
                " created, last_access FROM traces ORDER BY created DESC")
            names = [c[0] for c in cur.description]
            rows = cur.fetchall()
        return [dict(zip(names, row)) for row in rows]

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def info(self) -> Dict[str, object]:
        """Row/blob counts and byte totals (the ``/healthz`` payload)."""
        blobs = list(self.blob_dir.glob("*/*.json"))
        with self._lock:
            (rows,) = self._db.execute(
                "SELECT COUNT(*) FROM results").fetchone()
            (hits,) = self._db.execute(
                "SELECT COALESCE(SUM(hits), 0) FROM results").fetchone()
            (traces,) = self._db.execute(
                "SELECT COUNT(*) FROM traces").fetchone()
        return {
            "root": str(self.root),
            "schema": STORE_SCHEMA_VERSION,
            "rows": int(rows),
            "hits": int(hits),
            "traces": int(traces),
            "blobs": len(blobs),
            "blob_bytes": sum(p.stat().st_size for p in blobs),
        }

    def prune(self, max_rows: Optional[int] = None,
              max_age_s: Optional[float] = None) -> Dict[str, int]:
        """Evict LRU rows beyond ``max_rows`` / older than ``max_age_s``.

        Rows go first (oldest ``last_access`` first), then
        :meth:`gc_blobs` removes payload files no surviving row
        references. Returns ``{"rows": evicted, "blobs": collected}``.
        """
        evicted = 0
        with self._lock:
            if max_age_s is not None:
                cutoff = time.time() - max_age_s
                cur = self._db.execute(
                    "DELETE FROM results WHERE last_access < ?", (cutoff,))
                evicted += cur.rowcount
            if max_rows is not None:
                cur = self._db.execute(
                    "DELETE FROM results WHERE key IN ("
                    " SELECT key FROM results ORDER BY last_access DESC"
                    " LIMIT -1 OFFSET ?)", (int(max_rows),))
                evicted += cur.rowcount
            self._db.commit()
        return {"rows": evicted, "blobs": self.gc_blobs()}

    def gc_blobs(self) -> int:
        """Delete blob files referenced by no index row; returns count."""
        with self._lock:
            referenced = {d for (d,) in self._db.execute(
                "SELECT stats_blob FROM results")}
            referenced |= {d for (d,) in self._db.execute(
                "SELECT telemetry_blob FROM results"
                " WHERE telemetry_blob IS NOT NULL")}
            # trace blobs are pinned: an ingested workload must survive
            # result eviction, or every warm sweep over it re-ingests
            referenced |= {d for (d,) in self._db.execute(
                "SELECT digest FROM traces")}
        removed = 0
        for path in self.blob_dir.glob("*/*.json"):
            if path.stem not in referenced:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass  # concurrent GC; already gone
        return removed


def store_from_env() -> Optional[ResultStore]:
    """Open the store named by ``REPRO_STORE`` (None when unset).

    The opt-in hook for batch mode: figure drivers and the experiment
    helpers call this so ``repro figure --store DIR`` (which exports
    the env var) transparently reads and writes the same store the job
    server uses. ``repro bench`` never calls it — bench scores must
    time real simulations.
    """
    root = os.environ.get(STORE_ENV, "").strip()
    if not root:
        return None
    return ResultStore(root)

"""Scale-out simulation cluster: coordinator + sharded workers.

PDIP's headline results come from policy x benchmark x config sweeps;
:mod:`repro.service.server` (PR 5) serves them from one process with
one local pool. This module promotes that server to a *coordinator*
(``repro serve --coordinator``) that dispatches cells to N registered
*workers* (``repro worker``) so a million-cell sweep saturates every
machine it is given — while the store-dedup and in-flight-coalescing
guarantees of the single-node service hold cluster-wide.

Topology and protocol (all stdlib, the same hand-framed HTTP/1.1 the
single-node server speaks)::

    client ──POST /jobs──▶ coordinator ──POST /execute──▶ worker 0
                              │   ▲                        worker 1
             registration ────┘   └── heartbeats           worker N
             POST /workers/register   POST /workers/<id>/heartbeat

* **Registration + heartbeats.** A worker starts its own listener,
  then registers ``{host, port, slots, name}`` with the coordinator
  and heartbeats on the interval the coordinator hands back. A lapsed
  heartbeat (or a connection failure mid-dispatch) marks the worker
  dead: it leaves the shard ring and every cell in flight on it is
  requeued and retried on a surviving worker. A zombie worker whose
  heartbeat is answered 410 re-registers from scratch.
* **Consistent-hash sharding.** The content-addressed store is sharded
  across workers by the canonical run digest: :class:`HashRing` (SHA-1
  points, virtual nodes) maps each cell key to its *owner*, which
  holds the key's blob in its local :class:`~repro.service.store
  .ResultStore` shard and preferentially executes it. Worker
  join/leave remaps only the keys the ring assigns to/from that worker
  (property-tested), so a warm fleet stays warm through membership
  churn. Shard loss is cache loss, never wrong results — lost keys
  simply re-execute on next submission.
* **Work stealing.** Scheduling prefers a cell's shard owner, but when
  the owner's slots are full and another worker idles, the idle worker
  takes the cell (counted in ``counters["steals"]``) — the fleet never
  serializes behind one hot shard.
* **Failure ladder.** A worker-*reported* failure (attempt timeout,
  crashed pool process, injected fault) consumes the job's retry
  budget with exponential backoff, exactly like single-node attempts.
  A worker *loss* (connection drop, heartbeat lapse) does not: the
  cell is requeued at its original position and dispatched to another
  worker, because losing a machine is a liveness event, not evidence
  the cell is bad.

The single-node ``repro serve`` is untouched and remains the
degenerate case: a coordinator plus one worker produces byte-identical
digests and results, test-enforced. Dedup/coalescing stay
coordinator-scope: every submission passes through one ``_by_key``
map and one shard lookup, so two submissions of one digest execute
once cluster-wide.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import heapq
import json
import os
import signal
import time
import uuid
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.service.jobs import Job, JobState, execute_cell, pool_child_init
from repro.service.server import (
    DEFAULT_BACKOFF_S,
    DEFAULT_PORT,
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_RETRIES,
    SimulationServer,
    _read_request,
    _write_response,
    tear_down_pool,
)
from repro.service.store import ResultStore
from repro.simulator import cache as result_cache
from repro.simulator.stats import SimulationStats

#: virtual nodes per worker on the shard ring
DEFAULT_REPLICAS = 128
#: seconds between worker heartbeats (coordinator-configured; workers
#: adopt the value returned by registration)
DEFAULT_HEARTBEAT_INTERVAL = 1.0
#: heartbeat silence after which a worker is declared dead
DEFAULT_HEARTBEAT_TIMEOUT = 5.0


# ----------------------------------------------------------------------
# consistent-hash ring
# ----------------------------------------------------------------------
class HashRing:
    """Consistent hashing of run digests onto worker names.

    Each node contributes ``replicas`` SHA-1 points on a 64-bit ring; a
    key is owned by the first node point clockwise of the key's own
    point. Properties the tests enforce: ownership is independent of
    insertion order, load is balanced within tolerance for 1–16 nodes,
    and adding/removing a node remaps only the keys that move to/from
    that node.
    """

    def __init__(self, replicas: int = DEFAULT_REPLICAS) -> None:
        self.replicas = max(1, int(replicas))
        self._points: List[int] = []      # sorted ring points
        self._owners: List[str] = []      # node at the same index
        self._nodes: Set[str] = set()

    @staticmethod
    def _point(label: str) -> int:
        digest = hashlib.sha1(label.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    @property
    def nodes(self) -> Set[str]:
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Insert ``node``'s virtual points (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.replicas):
            point = self._point("%s#%d" % (node, i))
            idx = bisect.bisect(self._points, point)
            # ties between distinct nodes are broken by name so the
            # ring is insertion-order independent
            while (idx < len(self._points) and self._points[idx] == point
                   and self._owners[idx] < node):
                idx += 1
            self._points.insert(idx, point)
            self._owners.insert(idx, node)

    def remove(self, node: str) -> None:
        """Drop ``node``'s virtual points (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != node]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def owner(self, key: str) -> Optional[str]:
        """The node owning ``key`` (None on an empty ring)."""
        if not self._points:
            return None
        idx = bisect.bisect(self._points, self._point(key))
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    def preference(self, key: str, n: Optional[int] = None) -> List[str]:
        """Distinct nodes in ring order from ``key`` (failover order)."""
        if not self._points:
            return []
        want = len(self._nodes) if n is None else min(n, len(self._nodes))
        start = bisect.bisect(self._points, self._point(key))
        seen: List[str] = []
        for i in range(len(self._points)):
            node = self._owners[(start + i) % len(self._points)]
            if node not in seen:
                seen.append(node)
                if len(seen) == want:
                    break
        return seen


# ----------------------------------------------------------------------
# hand-framed async HTTP (coordinator -> worker, worker -> coordinator)
# ----------------------------------------------------------------------
async def _http_json(host: str, port: int, method: str, path: str,
                     body: Optional[Dict[str, object]] = None,
                     timeout: Optional[float] = 10.0,
                     ) -> Tuple[int, Dict[str, object]]:
    """One JSON request on a fresh connection; ``(status, payload)``.

    Raises ``OSError``/``ConnectionError`` on transport failure,
    ``asyncio.TimeoutError`` past ``timeout`` (None waits forever —
    used for dispatches whose duration is the simulation itself; the
    heartbeat monitor is the liveness backstop there).
    """
    async def _talk() -> Tuple[int, Dict[str, object]]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            data = (json.dumps(body).encode("utf-8")
                    if body is not None else b"")
            head = ("%s %s HTTP/1.1\r\nHost: %s\r\n"
                    "Content-Type: application/json\r\n"
                    "Content-Length: %d\r\nConnection: close\r\n\r\n"
                    % (method, path, host, len(data)))
            writer.write(head.encode("latin-1") + data)
            await writer.drain()
            line = await reader.readline()
            if not line:
                raise ConnectionError("empty response from %s:%d"
                                      % (host, port))
            status = int(line.decode("latin-1").split(None, 2)[1])
            length = 0
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _, value = header.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            raw = await reader.readexactly(length) if length else b""
            payload = json.loads(raw.decode("utf-8")) if raw else {}
            return status, payload
        finally:
            writer.close()

    if timeout is None:
        return await _talk()
    return await asyncio.wait_for(_talk(), timeout)


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------
@dataclass
class WorkerHandle:
    """The coordinator's view of one registered worker."""

    id: str
    host: str
    port: int
    slots: int
    pid: int = 0
    state: str = "alive"          #: "alive" | "dead"
    registered: float = 0.0
    last_seen: float = 0.0
    heartbeats: int = 0
    executed: int = 0
    stolen: int = 0               #: cells this worker took from a busy owner
    #: job id -> the dispatch task awaiting this worker
    in_flight: Dict[str, "asyncio.Task"] = field(default_factory=dict)

    @property
    def free_slots(self) -> int:
        return self.slots - len(self.in_flight)

    def summary(self) -> Dict[str, object]:
        return {
            "id": self.id, "host": self.host, "port": self.port,
            "slots": self.slots, "pid": self.pid, "state": self.state,
            "registered": self.registered, "last_seen": self.last_seen,
            "heartbeats": self.heartbeats, "executed": self.executed,
            "stolen": self.stolen, "in_flight": sorted(self.in_flight),
        }


class Coordinator(SimulationServer):
    """A :class:`SimulationServer` that executes on remote workers.

    Reuses the whole single-node control plane — submission
    validation, canonical cell keys, priority heap, coalescing,
    cancel, drain — and replaces the execution backend: no local
    process pool; cells are pushed to registered workers over HTTP,
    shard-owner first, stolen by idle workers otherwise. Results
    persist into the shard ring (the owner's local store), and a
    worker loss requeues its in-flight cells onto survivors.
    """

    def __init__(self, queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 timeout: Optional[float] = None,
                 retries: int = DEFAULT_RETRIES,
                 backoff: float = DEFAULT_BACKOFF_S,
                 allow_faults: bool = False,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
                 replicas: int = DEFAULT_REPLICAS) -> None:
        super().__init__(store=None, jobs=1, queue_limit=queue_limit,
                         timeout=timeout, retries=retries, backoff=backoff,
                         allow_faults=allow_faults)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        #: shard I/O deadline: a store get/put must answer well inside
        #: the liveness window or the worker is as good as dead
        self.io_timeout = max(2.0 * self.heartbeat_interval,
                              self.heartbeat_timeout)
        self.workers: Dict[str, WorkerHandle] = {}
        self.ring = HashRing(replicas)
        self._capacity = asyncio.Event()   # set when a slot may be free
        self._monitor: Optional[asyncio.Task] = None
        self.counters.update({
            "workers_registered": 0, "workers_lost": 0,
            "heartbeat_expiries": 0, "steals": 0, "requeues": 0,
            "shard_hits": 0, "shard_put_failures": 0,
        })

    # -- lifecycle ------------------------------------------------------
    def _make_pool(self) -> Optional[ProcessPoolExecutor]:
        return None               # never simulates locally

    def _dash_workers(self) -> Optional[List[Dict[str, object]]]:
        """Dashboard hook: the registered fleet, stable name order."""
        return [self.workers[w].summary() for w in sorted(self.workers)]

    async def start(self, host: str = "127.0.0.1",
                    port: int = DEFAULT_PORT) -> Tuple[str, int]:
        bound = await super().start(host, port)
        self._monitor = asyncio.ensure_future(self._monitor_loop())
        return bound

    async def _shutdown(self) -> None:
        if self._monitor is not None:
            self._monitor.cancel()
        await super()._shutdown()

    async def _monitor_loop(self) -> None:
        """Reap workers whose heartbeats lapse; requeue their cells."""
        poll = max(0.05, min(self.heartbeat_interval,
                             self.heartbeat_timeout) / 2.0)
        while True:
            await asyncio.sleep(poll)
            now = time.time()
            for worker in list(self.workers.values()):
                if (worker.state == "alive"
                        and now - worker.last_seen > self.heartbeat_timeout):
                    self.counters["heartbeat_expiries"] += 1
                    self._mark_dead(worker, "heartbeat lapsed (%.3gs)"
                                    % self.heartbeat_timeout)

    # -- membership -----------------------------------------------------
    def alive_workers(self) -> List[WorkerHandle]:
        return [w for w in self.workers.values() if w.state == "alive"]

    def _register(self, body: Dict[str, object]
                  ) -> Tuple[int, Dict[str, object]]:
        if self.draining:
            return 503, {"error": "coordinator is draining"}
        try:
            host = str(body["host"])
            port = int(body["port"])
            slots = max(1, int(body.get("slots", 1)))
        except (KeyError, TypeError, ValueError) as exc:
            return 400, {"error": "bad registration: %s" % exc}
        name = str(body.get("name") or "") or uuid.uuid4().hex[:12]
        existing = self.workers.get(name)
        if existing is not None and existing.state == "alive":
            return 409, {"error": "worker %r already registered" % name}
        now = time.time()
        worker = WorkerHandle(id=name, host=host, port=port, slots=slots,
                              pid=int(body.get("pid", 0)), registered=now,
                              last_seen=now)
        self.workers[name] = worker
        self.ring.add(name)
        self.counters["workers_registered"] += 1
        self._capacity.set()
        return 200, {"id": name,
                     "heartbeat_interval": self.heartbeat_interval,
                     "heartbeat_timeout": self.heartbeat_timeout}

    def _heartbeat(self, worker_id: str) -> Tuple[int, Dict[str, object]]:
        worker = self.workers.get(worker_id)
        if worker is None or worker.state != "alive":
            # zombie (marked dead after a lapse/partition): tell it to
            # re-register so it rejoins the ring under a fresh lease
            return 410, {"error": "unknown worker %r; re-register"
                                  % worker_id}
        worker.last_seen = time.time()
        worker.heartbeats += 1
        return 200, {"ok": True, "draining": self.draining}

    def _deregister(self, worker_id: str) -> Tuple[int, Dict[str, object]]:
        worker = self.workers.get(worker_id)
        if worker is None:
            return 404, {"error": "no such worker %r" % worker_id}
        was_alive = worker.state == "alive"
        self._mark_dead(worker, "deregistered")
        if was_alive:
            self.counters["workers_lost"] -= 1   # a goodbye is not a loss
        return 200, {"ok": True}

    def _mark_dead(self, worker: WorkerHandle, reason: str,
                   exclude: Optional[str] = None) -> None:
        """Remove a worker from the ring and requeue its in-flight cells.

        ``exclude`` names a job whose own dispatch task is doing the
        marking (it handles its own requeue; cancelling it here would
        cancel the caller).
        """
        if worker.state == "dead":
            return
        worker.state = "dead"
        self.ring.remove(worker.id)
        self.counters["workers_lost"] += 1
        for job_id, task in list(worker.in_flight.items()):
            if job_id == exclude:
                continue
            task.cancel()
            job = self.jobs.get(job_id)
            if job is None:
                continue
            if job.cancel_requested:
                self._finish(job, JobState.CANCELLED,
                             "cancelled while running")
            elif job.state == JobState.RUNNING:
                job.error = "worker %s lost (%s); retrying elsewhere" % (
                    worker.id, reason)
                self._requeue(job)
        worker.in_flight = ({exclude: worker.in_flight[exclude]}
                            if exclude in worker.in_flight else {})
        self._capacity.set()

    # -- scheduling -----------------------------------------------------
    def _requeue(self, job: Job) -> None:
        """Put a dispatched cell back at its original heap position."""
        if job.state == JobState.QUEUED or job.state in JobState.TERMINAL:
            return
        job.state = JobState.QUEUED
        job.worker = ""
        self.counters["requeues"] += 1
        heapq.heappush(self._heap, (-job.priority, job.seq, job.id))
        self._wake.set()

    async def _acquire_worker(self, job: Job) -> Optional[WorkerHandle]:
        """Pick the worker to run ``job``: shard owner, else steal.

        Blocks until some alive worker has a free slot (new capacity
        arrives via registration, job completion, or worker death).
        Returns None only while draining with no workers left — the
        dispatcher fails the job rather than hanging the drain.
        """
        while True:
            alive = self.alive_workers()
            free = [w for w in alive if w.free_slots > 0]
            if free:
                owner_id = self.ring.owner(job.key)
                owner = self.workers.get(owner_id) if owner_id else None
                if owner is not None and owner.state == "alive" \
                        and owner.free_slots > 0:
                    return owner
                # owner busy (or fault job with no shard): an idle
                # worker steals the cell instead of waiting
                best = max(free, key=lambda w: (w.free_slots, w.id))
                if owner is not None:
                    best.stolen += 1
                    self.counters["steals"] += 1
                return best
            if self.draining and not alive:
                return None
            self._capacity.clear()
            await self._capacity.wait()

    async def _dispatch_loop(self) -> None:
        while True:
            job = await self._next_job()
            if job is None:
                # draining and the heap is dry — but an in-flight cell
                # can still requeue (worker loss, retry backoff), so
                # only exit once every dispatch task has settled
                if self._running:
                    await asyncio.wait(list(self._running),
                                       return_when=asyncio.FIRST_COMPLETED)
                    continue
                break
            worker = await self._acquire_worker(job)
            if job.state != JobState.QUEUED:   # cancelled while waiting
                continue
            if worker is None:
                self._finish(job, JobState.FAILED,
                             "draining with no workers left")
                continue
            task = asyncio.ensure_future(self._run_remote(job, worker))
            worker.in_flight[job.id] = task
            self._running.add(task)
            task.add_done_callback(self._running.discard)
        await self._shutdown()

    async def _run_remote(self, job: Job, worker: WorkerHandle) -> None:
        requeue_after = 0.0
        requeue = False
        try:
            if job.state != JobState.QUEUED:   # cancelled pre-dispatch
                return
            job.state = JobState.RUNNING
            job.started = job.started or time.time()
            job.worker = worker.id
            fault = "fault" in job.payload
            if not fault:
                hit = await self._shard_get(job.key)
                if hit is not None:
                    job.result = hit
                    job.source = "store"
                    self.counters["store_hits"] += 1
                    self._finish(job, JobState.DONE)
                    return
            job.attempts += 1
            try:
                status, payload = await _http_json(
                    worker.host, worker.port, "POST", "/execute",
                    {"payload": dict(job.payload), "timeout": self.timeout},
                    timeout=self._dispatch_deadline())
            except asyncio.CancelledError:
                # _mark_dead cancelled this dispatch (heartbeat lapse /
                # partition): a loss, not a failed attempt — give the
                # attempt back; _mark_dead already requeued the job
                job.attempts -= 1
                raise
            except (OSError, ValueError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError) as exc:
                # transport loss: the worker died mid-cell. Retrying on
                # another worker is a liveness action — give the
                # attempt back rather than spending the retry budget.
                job.attempts -= 1
                job.error = "worker %s lost mid-job: %r" % (worker.id, exc)
                self._mark_dead(worker, "dispatch failed", exclude=job.id)
                requeue = True
                return
            if status == 200 and payload.get("ok"):
                result = dict(payload.get("result") or {})
                if job.cancel_requested:
                    self._finish(job, JobState.CANCELLED,
                                 "cancelled while running")
                    return
                job.result = dict(result.get("stats") or {})
                job.wall_time = float(result.get("wall_time", 0.0))
                job.source = "%s/%s" % (worker.id,
                                        result.get("worker", "worker"))
                worker.executed += 1
                self.counters["executed"] += 1
                if not fault:
                    await self._shard_put(job, result)
                self._finish(job, JobState.DONE)
                return
            # the worker answered, and the answer is a failed attempt
            kind = str(payload.get("kind", "error"))
            job.error = str(payload.get("error", "HTTP %d" % status))
            if kind == "draining":
                # the worker is on its way out, not at fault: give the
                # attempt back and let the cell land elsewhere once the
                # worker's deregistration clears it from the ring
                job.attempts -= 1
                requeue = True
                requeue_after = min(0.2, self.backoff)
                return
            if kind == "timeout":
                self.counters["timeouts"] += 1
            elif kind == "crash":
                self.counters["worker_crashes"] += 1
            if job.cancel_requested:
                self._finish(job, JobState.CANCELLED,
                             "cancelled while running")
                return
            if job.attempts <= self.retries:
                self.counters["retries"] += 1
                requeue = True
                requeue_after = self.backoff * (2 ** (job.attempts - 1))
            else:
                self._finish(job, JobState.FAILED)
        finally:
            worker.in_flight.pop(job.id, None)
            self._capacity.set()
            if requeue:
                if requeue_after:
                    await asyncio.sleep(requeue_after)
                if job.cancel_requested:
                    self._finish(job, JobState.CANCELLED,
                                 "cancelled while running")
                else:
                    self._requeue(job)

    def _dispatch_deadline(self) -> Optional[float]:
        """Socket budget for one dispatch.

        With a per-attempt timeout configured, the worker must answer
        within it plus shard-I/O grace; without one the simulation
        bounds the wait and the heartbeat monitor is the backstop.
        """
        if self.timeout is None:
            return None
        return self.timeout + self.io_timeout + 5.0

    # -- sharded store --------------------------------------------------
    async def _shard_get(self, key: str) -> Optional[Dict[str, object]]:
        """Look ``key`` up on its shard owner (None on miss/no ring)."""
        owner_id = self.ring.owner(key)
        if owner_id is None:
            return None
        worker = self.workers[owner_id]
        try:
            status, payload = await _http_json(
                worker.host, worker.port, "GET", "/store/" + key,
                timeout=self.io_timeout)
        except (OSError, ValueError, asyncio.TimeoutError,
                asyncio.IncompleteReadError):
            return None    # owner unwell; the monitor will reap it
        if status == 200 and payload.get("found"):
            self.counters["shard_hits"] += 1
            return dict(payload.get("stats") or {})
        return None

    async def _shard_put(self, job: Job, result: Dict[str, object]) -> None:
        """Persist a finished cell onto its shard owner.

        The owner is resolved at put time (it may have changed since
        dispatch if workers died); one re-resolve covers an owner that
        dies under the put. With no ring left the result is kept only
        in job memory — a later submission simply re-executes.
        """
        meta = {
            "benchmark": job.payload["benchmark"],
            "policy": job.payload["policy"],
            "seed": job.payload["seed"],
            "instructions": job.payload["instructions"],
            "warmup": job.payload["warmup"],
            "config_hash": result.get("config_hash", ""),
            "code_version": result_cache.RUN_KEY_VERSION,
            "wall_time": job.wall_time,
            "worker": job.source,
            "attempts": job.attempts,
            "job_id": job.id,
        }
        body = {"stats": job.result, "meta": meta}
        for _ in range(2):
            owner_id = self.ring.owner(job.key)
            if owner_id is None:
                break
            worker = self.workers[owner_id]
            try:
                status, payload = await _http_json(
                    worker.host, worker.port, "POST", "/store/" + job.key,
                    body, timeout=self.io_timeout)
            except (OSError, ValueError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError):
                self._mark_dead(worker, "shard put failed",
                                exclude=job.id)
                continue
            if status == 200 and payload.get("ok"):
                return
            break
        self.counters["shard_put_failures"] += 1

    # -- routing --------------------------------------------------------
    async def _route(self, method: str, path: str,
                     body: Optional[Dict[str, object]]
                     ) -> Tuple[int, Dict[str, object]]:
        parts = [p for p in path.split("/") if p]
        if parts and parts[0] == "workers":
            if method == "GET" and len(parts) == 1:
                return 200, {
                    "workers": [self.workers[w].summary()
                                for w in sorted(self.workers)],
                    "ring": {"nodes": sorted(self.ring.nodes),
                             "replicas": self.ring.replicas},
                }
            if method == "POST" and parts[1:] == ["register"]:
                return self._register(body or {})
            if len(parts) == 3 and method == "POST":
                if parts[2] == "heartbeat":
                    return self._heartbeat(parts[1])
                if parts[2] == "deregister":
                    return self._deregister(parts[1])
            return 404, {"error": "no route for %s %s" % (method, path)}
        status, payload = await super()._route(method, path, body)
        if method == "GET" and parts == ["healthz"] and status == 200:
            alive = self.alive_workers()
            payload["mode"] = "coordinator"
            payload["workers"] = len(alive)
            payload["worker_slots"] = sum(w.slots for w in alive)
            payload["ring"] = {"nodes": sorted(self.ring.nodes),
                               "replicas": self.ring.replicas}
        return status, payload


# ----------------------------------------------------------------------
# worker node
# ----------------------------------------------------------------------
class WorkerNode:
    """One cluster worker: an execute endpoint plus a store shard.

    Serves the coordinator (never end users): ``POST /execute`` runs
    one cell attempt in a local process pool — honouring the attempt
    timeout the coordinator sends, resetting the pool on a crashed or
    wedged child exactly like the single-node server — and
    ``GET|POST /store/<key>`` reads/writes this worker's shard of the
    content-addressed store. A background task registers with the
    coordinator and heartbeats on the interval registration returns,
    re-registering from scratch whenever the coordinator answers 410
    (e.g. after this worker was presumed dead across a partition).
    SIGTERM drains: in-flight attempts finish and persist, the worker
    deregisters, the process exits 0.
    """

    def __init__(self, coordinator_host: str = "127.0.0.1",
                 coordinator_port: int = DEFAULT_PORT,
                 slots: int = 1, store: Optional[ResultStore] = None,
                 name: Optional[str] = None,
                 advertise_host: str = "127.0.0.1") -> None:
        self.coordinator = (coordinator_host, int(coordinator_port))
        self.slots = max(1, int(slots))
        self.store = store
        self.name = name or ("w-" + uuid.uuid4().hex[:8])
        self.advertise_host = advertise_host
        self.worker_id: Optional[str] = None
        self.heartbeat_interval = DEFAULT_HEARTBEAT_INTERVAL
        self.port: Optional[int] = None
        self.busy = 0
        self.executed = 0
        self.draining = False
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = asyncio.Lock()
        self._server: Optional[asyncio.AbstractServer] = None
        self._beat: Optional[asyncio.Task] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._drained = asyncio.Event()

    # -- lifecycle ------------------------------------------------------
    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        self._pool = ProcessPoolExecutor(max_workers=self.slots,
                                         initializer=pool_child_init)
        self._server = await asyncio.start_server(self._handle_client,
                                                  host, port)
        sock = self._server.sockets[0].getsockname()
        self.port = sock[1]
        self._beat = asyncio.ensure_future(self._heartbeat_loop())
        return sock[0], sock[1]

    async def serve_until_drained(self) -> None:
        await self._drained.wait()

    def request_drain(self) -> None:
        if not self.draining:
            self.draining = True
            self._drain_task = asyncio.ensure_future(self._shutdown())

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_drain)
            except (NotImplementedError, RuntimeError):
                pass

    async def _shutdown(self) -> None:
        while self.busy:                 # finish in-flight attempts
            await asyncio.sleep(0.02)
        if self._beat is not None:
            self._beat.cancel()
        if self.worker_id is not None:
            try:
                await _http_json(self.coordinator[0], self.coordinator[1],
                                 "POST",
                                 "/workers/%s/deregister" % self.worker_id,
                                 timeout=2.0)
            except (OSError, ValueError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError):
                pass                     # coordinator already gone
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_event_loop()
        if self._pool is not None:
            pool = self._pool
            await loop.run_in_executor(
                None, lambda: pool.shutdown(wait=True))
        if self.store is not None:
            await loop.run_in_executor(None, self.store.close)
        self._drained.set()

    # -- registration + heartbeats --------------------------------------
    async def _register_once(self) -> bool:
        body = {"host": self.advertise_host, "port": self.port,
                "slots": self.slots, "name": self.name, "pid": os.getpid()}
        try:
            status, payload = await _http_json(
                self.coordinator[0], self.coordinator[1], "POST",
                "/workers/register", body, timeout=5.0)
        except (OSError, ValueError, asyncio.TimeoutError,
                asyncio.IncompleteReadError):
            return False
        if status != 200:
            return False
        self.worker_id = str(payload["id"])
        self.heartbeat_interval = float(
            payload.get("heartbeat_interval", self.heartbeat_interval))
        return True

    async def _heartbeat_loop(self) -> None:
        while not self.draining:
            if self.worker_id is None:
                if not await self._register_once():
                    await asyncio.sleep(
                        min(1.0, self.heartbeat_interval))
                    continue
            try:
                status, _ = await _http_json(
                    self.coordinator[0], self.coordinator[1], "POST",
                    "/workers/%s/heartbeat" % self.worker_id,
                    {"busy": self.busy}, timeout=5.0)
                if status == 410:
                    self.worker_id = None   # presumed dead: re-register
                    continue
            except (OSError, ValueError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError):
                pass                        # coordinator briefly away
            await asyncio.sleep(self.heartbeat_interval)

    # -- execution ------------------------------------------------------
    async def _reset_pool(self) -> None:
        async with self._pool_lock:
            old, self._pool = self._pool, ProcessPoolExecutor(
                max_workers=self.slots, initializer=pool_child_init)
        if old is not None:
            await asyncio.get_event_loop().run_in_executor(
                None, tear_down_pool, old)

    async def _execute(self, body: Dict[str, object]
                       ) -> Tuple[int, Dict[str, object]]:
        if self.draining:
            return 503, {"ok": False, "kind": "draining",
                         "error": "worker is draining"}
        payload = dict(body.get("payload") or {})
        timeout = body.get("timeout")
        self.busy += 1
        try:
            assert self._pool is not None
            future = asyncio.get_event_loop().run_in_executor(
                self._pool, execute_cell, payload)
            try:
                if timeout is not None:
                    result = await asyncio.wait_for(future, float(timeout))
                else:
                    result = await future
            except asyncio.TimeoutError:
                await self._reset_pool()
                return 200, {"ok": False, "kind": "timeout",
                             "error": "attempt timed out after %.3gs"
                                      % float(timeout)}
            except BrokenProcessPool as exc:
                await self._reset_pool()
                return 200, {"ok": False, "kind": "crash",
                             "error": "worker process crashed: %r" % exc}
            except Exception as exc:  # noqa: BLE001 - reported upstream
                return 200, {"ok": False, "kind": "error",
                             "error": repr(exc)}
            self.executed += 1
            return 200, {"ok": True, "result": result}
        finally:
            self.busy -= 1

    # -- store shard ----------------------------------------------------
    async def _store_get(self, key: str) -> Tuple[int, Dict[str, object]]:
        if self.store is None:
            return 200, {"found": False}
        stats = await asyncio.get_event_loop().run_in_executor(
            None, self.store.get, key)
        if stats is None:
            return 200, {"found": False}
        return 200, {"found": True, "stats": stats.to_dict()}

    async def _store_put(self, key: str, body: Dict[str, object]
                         ) -> Tuple[int, Dict[str, object]]:
        if self.store is None:
            return 200, {"ok": False, "error": "worker has no store"}
        stats = SimulationStats.from_dict(dict(body.get("stats") or {}))
        meta = dict(body.get("meta") or {})
        digest = await asyncio.get_event_loop().run_in_executor(
            None, lambda: self.store.put(key, stats, meta=meta))
        return 200, {"ok": True, "digest": digest}

    # -- request handling ----------------------------------------------
    async def _route(self, method: str, path: str,
                     body: Optional[Dict[str, object]]
                     ) -> Tuple[int, Dict[str, object]]:
        parts = [p for p in path.split("/") if p]
        if method == "GET" and parts == ["healthz"]:
            store_info: Optional[Dict[str, object]] = None
            if self.store is not None:
                loop = asyncio.get_event_loop()
                store_info = await loop.run_in_executor(
                    None, self.store.info)
            # probed directly by operators / the chaos harness, not by
            # any in-repo client class
            # repro: lint-ignore[route-conformance]
            return 200, {
                "state": "draining" if self.draining else "running",
                "name": self.name, "id": self.worker_id,
                "slots": self.slots, "busy": self.busy,
                "executed": self.executed,
                "coordinator": "%s:%d" % self.coordinator,
                "store": store_info,
            }
        if method == "POST" and parts == ["execute"]:
            return await self._execute(body or {})
        if len(parts) == 2 and parts[0] == "store":
            if method == "GET":
                return await self._store_get(parts[1])
            if method == "POST":
                return await self._store_put(parts[1], body or {})
        if method == "POST" and parts == ["shutdown"]:
            self.request_drain()
            # sent by the test harness's raw drain helper, not by an
            # in-repo client class
            # repro: lint-ignore[route-conformance]
            return 202, {"state": "draining"}
        return 404, {"error": "no route for %s %s" % (method, path)}

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        status, payload = 400, {"error": "malformed request"}
        try:
            parsed = await _read_request(reader)
            if parsed is not None:
                method, path, body = parsed
                status, payload = await self._route(method, path, body)
        except (ValueError, asyncio.IncompleteReadError) as exc:
            status, payload = 400, {"error": "bad request: %s" % exc}
        except Exception as exc:  # noqa: BLE001 - must answer
            status, payload = 500, {"error": repr(exc)}
        try:
            _write_response(writer, status, payload)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()


# ----------------------------------------------------------------------
# blocking entry points (CLI)
# ----------------------------------------------------------------------
async def _coordinator_amain(host: str, port: int,
                             coordinator: Coordinator,
                             announce: bool = True) -> int:
    bound_host, bound_port = await coordinator.start(host, port)
    coordinator.install_signal_handlers()
    if announce:
        print("repro serve: coordinator listening on http://%s:%d  "
              "queue<=%d timeout=%s retries=%d heartbeat=%.3gs/%.3gs"
              % (bound_host, bound_port, coordinator.queue_limit,
                 coordinator.timeout, coordinator.retries,
                 coordinator.heartbeat_interval,
                 coordinator.heartbeat_timeout),
              flush=True)
    await coordinator.serve_until_drained()
    if announce:
        c = coordinator.counters
        print("repro serve: coordinator drained cleanly (%d executed, "
              "%d store hits, %d failed, %d requeues, %d steals)"
              % (c["executed"], c["store_hits"], c["failed"],
                 c["requeues"], c["steals"]),
              flush=True)
    return 0


def serve_coordinator(host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                      queue_limit: int = DEFAULT_QUEUE_LIMIT,
                      timeout: Optional[float] = None,
                      retries: int = DEFAULT_RETRIES,
                      backoff: float = DEFAULT_BACKOFF_S,
                      allow_faults: bool = False,
                      heartbeat_interval: float =
                      DEFAULT_HEARTBEAT_INTERVAL,
                      heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
                      announce: bool = True) -> int:
    """Blocking entry for ``repro serve --coordinator``; exit code."""
    coordinator = Coordinator(queue_limit=queue_limit, timeout=timeout,
                              retries=retries, backoff=backoff,
                              allow_faults=allow_faults,
                              heartbeat_interval=heartbeat_interval,
                              heartbeat_timeout=heartbeat_timeout)
    return asyncio.run(_coordinator_amain(host, port, coordinator,
                                          announce=announce))


async def _worker_amain(host: str, port: int, worker: WorkerNode,
                        announce: bool = True) -> int:
    bound_host, bound_port = await worker.start(host, port)
    worker.install_signal_handlers()
    if announce:
        store = (worker.store.root if worker.store is not None
                 else "(no store)")
        print("repro worker: %s listening on http://%s:%d  "
              "coordinator=%s:%d  store=%s  slots=%d"
              % (worker.name, bound_host, bound_port,
                 worker.coordinator[0], worker.coordinator[1], store,
                 worker.slots),
              flush=True)
    await worker.serve_until_drained()
    if announce:
        print("repro worker: %s drained cleanly (%d executed)"
              % (worker.name, worker.executed), flush=True)
    return 0


def run_worker(coordinator_host: str = "127.0.0.1",
               coordinator_port: int = DEFAULT_PORT,
               host: str = "127.0.0.1", port: int = 0,
               slots: int = 1, store_root: Optional[str] = None,
               name: Optional[str] = None,
               announce: bool = True) -> int:
    """Blocking entry for ``repro worker``; returns the exit code."""
    store = ResultStore(store_root) if store_root else None
    worker = WorkerNode(coordinator_host=coordinator_host,
                        coordinator_port=coordinator_port, slots=slots,
                        store=store, name=name, advertise_host=host)
    return asyncio.run(_worker_amain(host, port, worker,
                                     announce=announce))

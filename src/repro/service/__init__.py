"""Simulation service: durable result store + async job server.

The serving layer above the parallel suite runner (DESIGN.md §13):

* :mod:`repro.service.store` — content-addressed, deduplicating
  persistence for simulation results (SQLite index + blob directory),
  keyed by the canonical cell digest shared with the result cache and
  the run manifests;
* :mod:`repro.service.server` — a long-lived asyncio job server
  (``repro serve``) with a priority queue, a bounded process-pool of
  simulation workers, per-job timeouts, bounded retries with backoff,
  queue-full backpressure, and graceful SIGTERM drain;
* :mod:`repro.service.client` — the stdlib-only HTTP client behind
  ``repro submit`` / ``repro jobs``;
* :mod:`repro.service.jobs` — the job model and the picklable worker
  entry point.

Layering: ``service`` sits above ``simulator`` (it reuses the runner
internals and the result-cache keys) and below nothing — no simulation
or model code may import it (enforced by ``repro lint``).
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobState, execute_cell
from repro.service.server import DEFAULT_PORT, SimulationServer, serve
from repro.service.store import ResultStore, store_from_env

__all__ = [
    "DEFAULT_PORT",
    "Job",
    "JobState",
    "ResultStore",
    "ServiceClient",
    "ServiceError",
    "SimulationServer",
    "execute_cell",
    "serve",
    "store_from_env",
]

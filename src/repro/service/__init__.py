"""Simulation service: durable result store + async job server.

The serving layer above the parallel suite runner (DESIGN.md §13):

* :mod:`repro.service.store` — content-addressed, deduplicating
  persistence for simulation results (SQLite index + blob directory),
  keyed by the canonical cell digest shared with the result cache and
  the run manifests;
* :mod:`repro.service.server` — a long-lived asyncio job server
  (``repro serve``) with a priority queue, a bounded process-pool of
  simulation workers, per-job timeouts, bounded retries with backoff,
  queue-full backpressure, and graceful SIGTERM drain;
* :mod:`repro.service.client` — the stdlib-only HTTP client behind
  ``repro submit`` / ``repro jobs``;
* :mod:`repro.service.jobs` — the job model and the picklable worker
  entry point;
* :mod:`repro.service.cluster` — the scale-out layer: a coordinator
  (``repro serve --coordinator``) that dispatches cells to registered
  ``repro worker`` processes with heartbeat liveness, consistent-hash
  sharding of the store by run digest, work stealing, and
  retry-on-another-worker when a worker is lost mid-job.

Layering: ``service`` sits above ``simulator`` (it reuses the runner
internals and the result-cache keys) and below nothing — no simulation
or model code may import it (enforced by ``repro lint``).
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.cluster import (
    Coordinator,
    HashRing,
    WorkerNode,
    run_worker,
    serve_coordinator,
)
from repro.service.jobs import Job, JobState, execute_cell
from repro.service.server import DEFAULT_PORT, SimulationServer, serve
from repro.service.store import ResultStore, store_from_env

__all__ = [
    "DEFAULT_PORT",
    "Coordinator",
    "HashRing",
    "Job",
    "JobState",
    "ResultStore",
    "ServiceClient",
    "ServiceError",
    "SimulationServer",
    "WorkerNode",
    "execute_cell",
    "run_worker",
    "serve",
    "serve_coordinator",
    "store_from_env",
]

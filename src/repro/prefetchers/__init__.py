"""Prefetcher interface and baseline prefetchers.

:class:`Prefetcher` is the hook surface the simulator drives; PDIP
(:mod:`repro.core.pdip`) and EIP (:mod:`repro.prefetchers.eip`) implement
it. ``NoPrefetcher`` is the FDIP-only baseline.
"""

from repro.prefetchers.base import NoPrefetcher, Prefetcher
from repro.prefetchers.eip import EIPConfig, EIPPrefetcher
from repro.prefetchers.next_line import NextLineConfig, NextLinePrefetcher
from repro.prefetchers.rdip import RDIPConfig, RDIPPrefetcher

__all__ = [
    "Prefetcher",
    "NoPrefetcher",
    "EIPPrefetcher",
    "EIPConfig",
    "NextLinePrefetcher",
    "NextLineConfig",
    "RDIPPrefetcher",
    "RDIPConfig",
]

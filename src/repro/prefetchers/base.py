"""Hook surface between the simulator and a prefetcher."""

from __future__ import annotations

from typing import List

from repro.core.fec import FECEvent
from repro.frontend.ftq import FTQEntry


class Prefetcher:
    """Base class; every hook is a no-op.

    The simulator calls:

    * :meth:`on_ftq_enqueue` for every new FTQ entry (correct or wrong
      path) — where trigger lookups happen;
    * :meth:`on_retire` when a block's last instruction retires — where
      commit-time training happens;
    * :meth:`on_fec_events` with the retire-time FEC qualifications.
    """

    name = "none"

    def on_ftq_enqueue(self, entry: FTQEntry, cycle: int) -> None:
        """A new fetch target entered the FTQ."""

    def on_retire(self, entry: FTQEntry, cycle: int) -> None:
        """A correct-path block fully retired."""

    def on_fec_events(self, events: List[FECEvent], cycle: int) -> None:
        """Retire-time FEC qualifications for a block's lines."""

    def observe_branch(self, branch_block_line: int) -> None:
        """A taken branch entered the FTQ (path-history consumers only)."""

    @property
    def storage_kb(self) -> float:
        """Storage footprint in kilobytes."""
        return 0.0


class NoPrefetcher(Prefetcher):
    """FDIP-only baseline: the FTQ is the only prefetch mechanism."""

    name = "baseline"

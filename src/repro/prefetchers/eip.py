"""EIP — Entangling Instruction Prefetcher (Ros & Jimborean, ISCA '21),
reimplemented the way the paper models it in gem5 (Section 6.5):

* a 40-entry history buffer of committed block accesses with timestamps,
  maintained at commit so wrong-path fetch never pollutes it;
* on commit of a block whose line missed with latency L, the miss is
  *entangled* with the history entry fetched ~L cycles earlier (the entry
  with enough lead time to have hidden the miss);
* on each new FTQ entry, the entangling table is looked up with the
  entry's lines and every entangled destination is prefetched through the
  same PQ/MSHR discipline PDIP uses.

Two variants:

* ``EIPPrefetcher`` with a KB budget — set-associative entangling table
  (tag + up to ``dsts_per_entry`` destinations of 34 bits each);
* the *analytical* variant (``analytical=True``) — unbounded table and a
  higher destination cap, the paper's performance-oriented upper bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.frontend.ftq import FTQEntry
from repro.frontend.prefetch_queue import PrefetchQueue
from repro.prefetchers.base import Prefetcher

#: per-entry storage pricing for the budgeted table (bits)
_TAG_BITS = 10
_DST_BITS = 34
_LRU_BITS = 1

#: shared miss result for the hot lookup path — treat as read-only
_EMPTY: List[int] = []


@dataclass
class EIPConfig:
    """EIP tuning knobs."""

    budget_kb: float = 46.0
    history_entries: int = 40       # paper: 40 beats 1024
    dsts_per_entry: int = 2
    analytical: bool = False
    analytical_dst_cap: int = 6
    num_sets: int = 256


class _EIPEntry:
    __slots__ = ("tag", "dsts", "lru")

    def __init__(self, tag: int):
        self.tag = tag
        self.dsts: List[int] = []
        self.lru = 0


class EIPPrefetcher(Prefetcher):
    """Entangling instruction prefetcher (budgeted or analytical)."""

    name = "eip"

    def __init__(self, pq: PrefetchQueue, config: Optional[EIPConfig] = None):
        self.pq = pq
        self.config = config if config is not None else EIPConfig()
        cfg = self.config
        # hot-path copies (the config is fixed after construction)
        self._analytical = cfg.analytical
        self._num_sets = cfg.num_sets
        if cfg.analytical:
            self.name = "eip_analytical"
            self.assoc = 0
            self._table_unbounded: Dict[int, List[int]] = {}
        else:
            bits_per_way = _TAG_BITS + _LRU_BITS + cfg.dsts_per_entry * _DST_BITS
            total_ways = int(cfg.budget_kb * 1024 * 8 / bits_per_way)
            self.assoc = max(1, total_ways // cfg.num_sets)
            self._sets: Dict[int, Dict[int, _EIPEntry]] = {}
        #: (line, fetch_cycle) of committed blocks, newest at the right
        self._history: Deque[Tuple[int, int]] = deque(maxlen=cfg.history_entries)
        self._clock = 0

        self.entangles = 0
        self.prefetch_requests = 0
        self.lookups = 0
        self.lookup_hits = 0

    # ------------------------------------------------------------------
    # FTQ-side: lookup + prefetch
    # ------------------------------------------------------------------
    def on_ftq_enqueue(self, entry: FTQEntry, cycle: int) -> None:
        """A new fetch target entered the FTQ."""
        lookup = self._lookup
        request = self.pq.request
        for line in entry.lines:
            for dst in lookup(line):
                self.prefetch_requests += 1
                request(dst, cycle)

    # ------------------------------------------------------------------
    # commit-side: history + entangling
    # ------------------------------------------------------------------
    def on_retire(self, entry: FTQEntry, cycle: int) -> None:
        """A correct-path block fully retired."""
        cfg = self.config
        if entry.incurred_miss and entry.line_ready:
            # miss latency observed at fetch, applied at commit (paper)
            latency = max(0, entry.ready_cycle - entry.enqueue_cycle)
            src = self._find_source(entry.enqueue_cycle - latency)
            if src is not None:
                for line in entry.missed_lines:
                    if line != src:
                        self._entangle(src, line)
        for line in entry.lines:
            self._history.append((line, entry.enqueue_cycle))

    def _find_source(self, want_cycle: int) -> Optional[int]:
        """Most recent history entry fetched at or before ``want_cycle``
        (i.e. with enough lead time to hide the miss)."""
        src = None
        for line, fetched in self._history:
            if fetched <= want_cycle:
                src = line
            else:
                break
        if src is None and self._history:
            # nothing old enough: entangle with the oldest we have
            src = self._history[0][0]
        return src

    # ------------------------------------------------------------------
    # entangling table
    # ------------------------------------------------------------------
    def _entangle(self, src: int, dst: int) -> None:
        self.entangles += 1
        cfg = self.config
        if cfg.analytical:
            dsts = self._table_unbounded.setdefault(src, [])
            if dst in dsts:
                return
            if len(dsts) >= cfg.analytical_dst_cap:
                dsts.pop(0)
            dsts.append(dst)
            return
        set_idx = src % cfg.num_sets
        tag = src // cfg.num_sets
        ways = self._sets.setdefault(set_idx, {})
        self._clock += 1
        entry = ways.get(tag)
        if entry is None:
            if len(ways) >= self.assoc:
                victim = min(ways, key=lambda t: ways[t].lru)
                del ways[victim]
            entry = _EIPEntry(tag)
            ways[tag] = entry
        entry.lru = self._clock
        if dst in entry.dsts:
            return
        if len(entry.dsts) >= cfg.dsts_per_entry:
            entry.dsts.pop(0)
        entry.dsts.append(dst)

    def _lookup(self, src: int) -> List[int]:
        """Destinations entangled with ``src``.

        The returned list is the table's own storage (or the shared empty
        list) — callers only iterate it.
        """
        self.lookups += 1
        if self._analytical:
            dsts = self._table_unbounded.get(src)
            if dsts is None:
                return _EMPTY
            if dsts:
                self.lookup_hits += 1
            return dsts
        num_sets = self._num_sets
        ways = self._sets.get(src % num_sets)
        if not ways:
            return _EMPTY
        entry = ways.get(src // num_sets)
        if entry is None:
            return _EMPTY
        self._clock += 1
        entry.lru = self._clock
        self.lookup_hits += 1
        return entry.dsts

    # ------------------------------------------------------------------
    @property
    def storage_kb(self) -> float:
        """Storage footprint in kilobytes."""
        cfg = self.config
        if cfg.analytical:
            # report the (unbounded) table's current footprint
            bits = sum((_DST_BITS * len(d) + _TAG_BITS)
                       for d in self._table_unbounded.values())
            return bits / 8.0 / 1024.0
        bits_per_way = _TAG_BITS + _LRU_BITS + cfg.dsts_per_entry * _DST_BITS
        return cfg.num_sets * self.assoc * bits_per_way / 8.0 / 1024.0

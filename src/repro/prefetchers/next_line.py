"""Next-line instruction prefetcher (FNL-flavoured).

The simplest hardware instruction prefetcher and one of the baselines
the paper's related work discusses (Seznec's FNL+MMA, Section 8.1): on
every fetched line, prefetch the next ``degree`` sequential lines, gated
by a small "worth" table — a per-line saturating counter trained on
whether the next line was actually used soon after (FNL's *footprint*
idea, simplified). Included as a related-work comparison point; it is
*not* one of the paper's evaluated policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.frontend.ftq import FTQEntry
from repro.frontend.prefetch_queue import PrefetchQueue
from repro.prefetchers.base import Prefetcher


@dataclass
class NextLineConfig:
    """Next-line prefetcher knobs."""

    degree: int = 2              # sequential lines prefetched per trigger
    worth_entries: int = 4096    # direct-mapped worth table
    worth_threshold: int = 0     # counter >= threshold => prefetch
    train: bool = True           # learn worth from observed sequentiality


class NextLinePrefetcher(Prefetcher):
    """Sequential next-N-lines prefetcher with a worth filter."""

    name = "next_line"

    def __init__(self, pq: PrefetchQueue,
                 config: Optional[NextLineConfig] = None):
        self.pq = pq
        self.config = config if config is not None else NextLineConfig()
        #: worth counter per line hash, in [-2, 3]
        self._worth: Dict[int, int] = {}
        self._last_line: Optional[int] = None
        self.prefetch_requests = 0

    def _worth_idx(self, line: int) -> int:
        return line % self.config.worth_entries

    def on_ftq_enqueue(self, entry: FTQEntry, cycle: int) -> None:
        """A new fetch target entered the FTQ."""
        cfg = self.config
        train = cfg.train
        worth_entries = cfg.worth_entries
        threshold = cfg.worth_threshold
        degree = cfg.degree
        worth = self._worth
        worth_get = worth.get
        request = self.pq.request
        last = self._last_line
        for line in entry.lines:
            if train and last is not None:
                idx = last % worth_entries  # inlined _worth_idx
                ctr = worth_get(idx, 0)
                if line == last + 1:
                    worth[idx] = ctr + 1 if ctr < 3 else 3
                else:
                    worth[idx] = ctr - 1 if ctr > -2 else -2
            last = line
            if worth_get(line % worth_entries, 0) >= threshold:
                for delta in range(1, degree + 1):
                    self.prefetch_requests += 1
                    request(line + delta, cycle)
        self._last_line = last

    @property
    def storage_kb(self) -> float:
        """Storage footprint in kilobytes (3-bit worth counters)."""
        return self.config.worth_entries * 3 / 8.0 / 1024.0

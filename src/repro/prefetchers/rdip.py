"""RDIP — Return-address-stack Directed Instruction Prefetching
(Kolli, Saidi & Wenisch, MICRO 2013).

One of the context-signature prefetchers the paper's related work covers
(Section 8.1): the program's *calling context* — summarized by hashing
the return address stack — is used as the lookup signature; the lines
that missed under a context are recorded and prefetched the next time
the same context is entered. Context changes at calls and returns.

Implementation notes (faithful to the published idea at this
simulator's granularity):

* the signature is a hash of the top ``ras_depth_hashed`` entries of the
  simulator-visible call stack, updated on CALL/RETURN blocks;
* a set-associative *miss table* maps signature -> up to
  ``lines_per_signature`` miss lines, trained at retirement (correct
  path only);
* on a context switch the new signature's lines are pushed to the PQ.

Included as a related-work comparison point; not one of the paper's
evaluated policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.frontend.ftq import FTQEntry
from repro.frontend.prefetch_queue import PrefetchQueue
from repro.prefetchers.base import Prefetcher
from repro.workloads.layout import BranchKind


@dataclass
class RDIPConfig:
    """RDIP knobs (defaults give a ~32 KB miss table)."""

    num_sets: int = 256
    assoc: int = 4
    lines_per_signature: int = 8
    ras_depth_hashed: int = 4


class _Entry:
    __slots__ = ("tag", "lines", "lru")

    def __init__(self, tag: int):
        self.tag = tag
        self.lines: List[int] = []
        self.lru = 0


class RDIPPrefetcher(Prefetcher):
    """Return-address-stack directed prefetcher."""

    name = "rdip"

    def __init__(self, pq: PrefetchQueue, config: Optional[RDIPConfig] = None):
        self.pq = pq
        self.config = config if config is not None else RDIPConfig()
        self._sets: Dict[int, Dict[int, _Entry]] = {}
        self._clock = 0
        #: speculative call-stack mirror (fed by FTQ enqueues)
        self._stack: List[int] = []
        self._signature = 0
        #: retirement-side stack + signature (training uses correct path)
        self._retire_stack: List[int] = []
        self._retire_signature = 0
        self.prefetch_requests = 0
        self.signature_switches = 0

    # -- signature ------------------------------------------------------
    def _hash(self, stack: List[int]) -> int:
        cfg = self.config
        h = 2166136261
        for addr in stack[-cfg.ras_depth_hashed:]:
            h = ((h ^ addr) * 16777619) & 0xFFFFFFFF
        return h

    # -- FTQ side: context tracking + prefetch ---------------------------
    def on_ftq_enqueue(self, entry: FTQEntry, cycle: int) -> None:
        """A new fetch target entered the FTQ."""
        kind = entry.block.kind
        if kind in (BranchKind.CALL, BranchKind.INDIRECT_CALL):
            if entry.block.fallthrough is not None:
                self._stack.append(entry.block.branch_pc)
        elif kind is BranchKind.RETURN and self._stack:
            self._stack.pop()
        else:
            return
        signature = self._hash(self._stack)
        if signature == self._signature:
            return
        self._signature = signature
        self.signature_switches += 1
        for line in self._lookup(signature):
            self.prefetch_requests += 1
            self.pq.request(line, cycle)

    # -- retire side: training ---------------------------------------------
    def on_retire(self, entry: FTQEntry, cycle: int) -> None:
        """A correct-path block fully retired."""
        kind = entry.block.kind
        if kind in (BranchKind.CALL, BranchKind.INDIRECT_CALL):
            if entry.block.fallthrough is not None:
                self._retire_stack.append(entry.block.branch_pc)
            self._retire_signature = self._hash(self._retire_stack)
        elif kind is BranchKind.RETURN and self._retire_stack:
            self._retire_stack.pop()
            self._retire_signature = self._hash(self._retire_stack)
        for line in entry.missed_lines:
            self._train(self._retire_signature, line)

    # -- miss table ------------------------------------------------------
    def _train(self, signature: int, line: int) -> None:
        cfg = self.config
        set_idx = signature % cfg.num_sets
        tag = signature // cfg.num_sets
        ways = self._sets.setdefault(set_idx, {})
        self._clock += 1
        entry = ways.get(tag)
        if entry is None:
            if len(ways) >= cfg.assoc:
                victim = min(ways, key=lambda t: ways[t].lru)
                del ways[victim]
            entry = _Entry(tag)
            ways[tag] = entry
        entry.lru = self._clock
        if line in entry.lines:
            return
        if len(entry.lines) >= cfg.lines_per_signature:
            entry.lines.pop(0)
        entry.lines.append(line)

    def _lookup(self, signature: int) -> List[int]:
        cfg = self.config
        ways = self._sets.get(signature % cfg.num_sets)
        if not ways:
            return []
        entry = ways.get(signature // cfg.num_sets)
        if entry is None:
            return []
        self._clock += 1
        entry.lru = self._clock
        return list(entry.lines)

    @property
    def storage_kb(self) -> float:
        """Storage footprint in kilobytes."""
        cfg = self.config
        bits_per_way = 16 + cfg.lines_per_signature * 34 + 1
        return cfg.num_sets * cfg.assoc * bits_per_way / 8.0 / 1024.0

"""Converters: foreign trace shapes -> normalised :class:`BranchRecord` streams.

Two common external shapes are supported beyond the native JSONL schema:

``champsim``
    Whitespace-separated text, one retired branch per line, in the shape
    ChampSim's branch-trace dumps use::

        <pc> <target> <taken 0|1> <BRANCH_TYPE>

    Addresses may be decimal or ``0x``-hex.  ``BRANCH_TYPE`` tokens map
    onto schema kinds via :data:`CHAMPSIM_KINDS`; unknown tokens are
    rejected (category ``bad-field-value``).

``csv``
    Generic ``pc,target,taken`` rows (an optional literal header row is
    skipped).  ``taken`` is ``0``/``1``; a not-taken row may leave
    ``target`` empty or ``0``.  No kind information — synthesis infers
    everything from the observed edges.

``load_records`` sniffs the format when asked (gzip is detected by magic
bytes; JSONL by a leading ``{``; CSV by commas; anything else is tried
as ChampSim text) and always returns ``(meta, records)`` in schema form.
"""

from __future__ import annotations

import gzip
import io
from typing import Dict, IO, Iterable, List, Optional, Tuple

from repro.traces.schema import (
    DEFAULT_ISIZE,
    SCHEMA_NAME,
    SCHEMA_VERSION,
    BranchRecord,
    TraceFormatError,
    TraceRecordError,
    TraceSchemaError,
    read_jsonl,
)

FORMATS = ("auto", "jsonl", "champsim", "csv")

#: ChampSim branch-type token -> schema kind.
CHAMPSIM_KINDS: Dict[str, str] = {
    "BRANCH_CONDITIONAL": "cond",
    "BRANCH_DIRECT_JUMP": "direct",
    "BRANCH_INDIRECT": "indirect",
    "BRANCH_DIRECT_CALL": "call",
    "BRANCH_INDIRECT_CALL": "indirect_call",
    "BRANCH_RETURN": "return",
    "BRANCH_OTHER": "unknown",
}


def _parse_addr(token: str, field: str, lineno: int) -> int:
    try:
        value = int(token, 0)
    except ValueError:
        raise TraceRecordError(
            "field %r is not an address: %r" % (field, token),
            category="bad-field-type", lineno=lineno)
    if value < 0:
        raise TraceRecordError(
            "field %r must be non-negative, got %d" % (field, value),
            category="bad-field-value", lineno=lineno)
    return value


def read_champsim(lines: Iterable[str]) -> Tuple[Dict[str, object], List[BranchRecord]]:
    """Parse ChampSim-style branch-record text into schema form."""
    records: List[BranchRecord] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) != 4:
            raise TraceRecordError(
                "expected 4 fields '<pc> <target> <taken> <type>', got %d"
                % len(fields), lineno=lineno)
        pc = _parse_addr(fields[0], "pc", lineno)
        target = _parse_addr(fields[1], "target", lineno)
        if fields[2] not in ("0", "1"):
            raise TraceRecordError(
                "field 'taken' must be 0 or 1, got %r" % fields[2],
                category="bad-field-value", lineno=lineno)
        taken = fields[2] == "1"
        kind = CHAMPSIM_KINDS.get(fields[3])
        if kind is None:
            raise TraceRecordError(
                "unknown branch type %r (expected one of %s)"
                % (fields[3], "/".join(sorted(CHAMPSIM_KINDS))),
                category="bad-field-value", lineno=lineno)
        if taken and target == 0:
            raise TraceRecordError("taken branch has target 0",
                                   category="missing-target", lineno=lineno)
        records.append(BranchRecord(pc=pc, taken=taken,
                                    target=target if taken else 0,
                                    size=DEFAULT_ISIZE, kind=kind))
    if not records:
        raise TraceSchemaError("champsim input has no records",
                               category="empty-trace")
    meta: Dict[str, object] = {"schema": SCHEMA_NAME, "version": SCHEMA_VERSION,
                               "isize": DEFAULT_ISIZE, "converted_from": "champsim"}
    return meta, records


def read_csv(lines: Iterable[str]) -> Tuple[Dict[str, object], List[BranchRecord]]:
    """Parse generic ``pc,target,taken`` CSV rows into schema form."""
    records: List[BranchRecord] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = [f.strip() for f in line.split(",")]
        if lineno == 1 and [f.lower() for f in fields[:3]] == ["pc", "target", "taken"]:
            continue  # optional literal header row
        if len(fields) != 3:
            raise TraceRecordError(
                "expected 3 fields 'pc,target,taken', got %d" % len(fields),
                lineno=lineno)
        pc = _parse_addr(fields[0], "pc", lineno)
        target = _parse_addr(fields[1], "target", lineno) if fields[1] else 0
        if fields[2] not in ("0", "1"):
            raise TraceRecordError(
                "field 'taken' must be 0 or 1, got %r" % fields[2],
                category="bad-field-value", lineno=lineno)
        taken = fields[2] == "1"
        if taken and target == 0:
            raise TraceRecordError("taken branch has target 0",
                                   category="missing-target", lineno=lineno)
        records.append(BranchRecord(pc=pc, taken=taken,
                                    target=target if taken else 0,
                                    size=DEFAULT_ISIZE, kind="unknown"))
    if not records:
        raise TraceSchemaError("csv input has no records",
                               category="empty-trace")
    meta: Dict[str, object] = {"schema": SCHEMA_NAME, "version": SCHEMA_VERSION,
                               "isize": DEFAULT_ISIZE, "converted_from": "csv"}
    return meta, records


def sniff_format(first_line: str) -> str:
    """Guess the text format from the first non-empty, non-comment line."""
    line = first_line.strip()
    if line.startswith("{"):
        return "jsonl"
    if "," in line:
        return "csv"
    return "champsim"


def _open_text(path: str) -> IO[str]:
    """Open *path* as text, transparently decompressing gzip by magic."""
    with open(path, "rb") as probe:
        magic = probe.read(2)
    if magic == b"\x1f\x8b":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def load_records(path: str, fmt: str = "auto"
                 ) -> Tuple[Dict[str, object], List[BranchRecord]]:
    """Read *path* (optionally gzipped) in *fmt* into ``(meta, records)``."""
    if fmt not in FORMATS:
        raise TraceFormatError("unknown format %r (expected one of %s)"
                               % (fmt, "/".join(FORMATS)))
    fh = _open_text(path)
    try:
        lines = fh.read().splitlines()
    except (OSError, UnicodeDecodeError) as exc:
        raise TraceFormatError("cannot read %s as a text trace: %s"
                               % (path, exc))
    finally:
        fh.close()
    if fmt == "auto":
        first = next((l for l in lines if l.strip() and not l.strip().startswith("#")), "")
        if not first:
            raise TraceFormatError("empty input: nothing to sniff")
        fmt = sniff_format(first)
    reader = {"jsonl": read_jsonl, "champsim": read_champsim, "csv": read_csv}[fmt]
    meta, records = reader(lines)
    meta["format"] = fmt
    return meta, records

"""Layout synthesis: observed block events -> ``CodeLayout`` + replay stream.

The simulator wants a static binary (:class:`CodeLayout`) plus a dynamic
walker; an external trace gives us only the dynamic side.  This module
reconstructs the static side from the evidence:

* **Block identity** is ``(entry address, terminator pc)`` — the same
  straight-line run entered at the same point is the same static block.
* **Geometry**: instruction counts come from the observed byte span
  (clamped, see :data:`~repro.traces.downsample.MAX_BLOCK_INSTRUCTIONS`);
  synthetic addresses are assigned in external-address order with the
  original adjacency preserved, so cache-line and BTB behaviour track
  the real footprint, with external gaps compressed out.
* **Branch kinds** are inferred from the *observed successor structure*,
  with record ``kind`` hints consulted only where the edges are
  ambiguous.  A block with both taken and not-taken outcomes and one
  fall-through successor is COND (bias = observed taken fraction); a
  taken-only block with one target is DIRECT (or CALL when hinted and a
  return-point block exists); multiple targets make it INDIRECT
  (weights = observed frequencies).  Anything contradictory — e.g. two
  distinct "fall-through" successors, which downsampling window stitches
  can produce — is *promoted to INDIRECT*, the one kind that can
  absorb any successor set.  Promotion is the safety valve that makes
  synthesis total: every event stream yields a layout the replayer's
  verifier accepts.
* **Functions** are grouped from call-target entries and address gaps
  so the layout has a plausible function table (PDIP's priority table
  and the figure tooling key on it).

The output replay stream is closed into a loop (last event's successor
is the first event's block), so ``TraceReplayer(..., loop=True)`` can
drive arbitrarily long simulations from a finite sample.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.traces.downsample import estimate_instructions
from repro.traces.schema import BlockEvent
from repro.utils import INSTRUCTION_SIZE, LINE_SIZE
from repro.workloads.layout import BasicBlock, BranchKind, CodeLayout, Function
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.trace import TraceHeader, TraceReplayer

#: A gap of this many external bytes between consecutive blocks starts a
#: new synthetic function (in addition to observed call targets).
FUNCTION_GAP_BYTES = 512

_BASE_ADDR = 0x1_0000

#: Hint priority when a block's records disagree (calls/returns are the
#: structurally consequential ones, so they win).
_HINT_PRIORITY = ("return", "indirect_call", "call", "indirect", "cond",
                  "direct", "unknown")


@dataclass(frozen=True)
class TraceProfile(WorkloadProfile):
    """Profile for a trace-backed benchmark.

    Subclassing :class:`WorkloadProfile` keeps every consumer working
    (the machine reads ``backend_stall_prob`` & friends; the cache
    freezes the profile field-by-field).  The extra fields tie the
    benchmark to its blob: ``trace_digest`` enters the canonical run
    digest via :func:`repro.utils.freeze`, so two different traces can
    never share a run key even under the same benchmark name.
    """

    trace_digest: str = ""
    trace_events: int = 0
    trace_instructions: int = 0


@dataclass
class TraceWorkload:
    """A fully synthesised, simulable trace workload."""

    name: str
    profile: TraceProfile
    layout: CodeLayout
    replay_text: str
    digest: str
    events: int
    instructions: int

    def walker(self, loop: bool = True) -> TraceReplayer:
        """A fresh replayer over the synthesised stream.

        The stream was verified once at synthesis time, so per-machine
        construction skips re-verification.
        """
        return TraceReplayer(self.layout, self.replay_text,
                             loop=loop, verify=False)


@dataclass
class _Site:
    """Accumulated evidence about one static block."""

    first: BlockEvent
    count: int = 0
    taken_succ: "Counter[Tuple[int, int]]" = field(default_factory=Counter)
    fall_succ: "Counter[Tuple[int, int]]" = field(default_factory=Counter)
    hints: "Counter[str]" = field(default_factory=Counter)


def _dominant_hint(hints: "Counter[str]") -> str:
    best = "unknown"
    best_rank = len(_HINT_PRIORITY)
    best_count = 0
    for hint, count in hints.items():
        if hint == "unknown":
            continue
        rank = _HINT_PRIORITY.index(hint)
        if count > best_count or (count == best_count and rank < best_rank):
            best, best_rank, best_count = hint, rank, count
    return best


def _indirect_table(
    succs: "Counter[Tuple[int, int]]", bid_of: Dict[Tuple[int, int], int]
) -> Tuple[Tuple[int, ...], Tuple[float, ...]]:
    """Targets (by descending frequency) with cumulative weights."""
    ordered = sorted(succs.items(), key=lambda kv: (-kv[1], bid_of[kv[0]]))
    total = sum(c for _, c in ordered)
    targets: List[int] = []
    weights: List[float] = []
    acc = 0
    for key, count in ordered:
        targets.append(bid_of[key])
        acc += count
        weights.append(acc / total)
    weights[-1] = 1.0
    return tuple(targets), tuple(weights)


def synthesize(
    name: str,
    events: List[BlockEvent],
    isize: int,
    digest: str = "",
    profile_overrides: Optional[Dict[str, object]] = None,
    description: str = "",
) -> TraceWorkload:
    """Build a :class:`TraceWorkload` from a (downsampled) event stream."""
    if not events:
        raise ValueError("cannot synthesize a layout from zero events")

    # -- gather per-site evidence (successor = next event, loop-closed) --
    sites: "OrderedDict[Tuple[int, int], _Site]" = OrderedDict()
    for ev in events:
        site = sites.get(ev.key())
        if site is None:
            sites[ev.key()] = site = _Site(first=ev)
        site.count += 1
        site.hints[ev.kind] += 1
    for i, ev in enumerate(events):
        succ = events[(i + 1) % len(events)].key()
        site = sites[ev.key()]
        if ev.taken:
            site.taken_succ[succ] += 1
        else:
            site.fall_succ[succ] += 1

    # -- assign block ids in external-address order ----------------------
    keys = sorted(sites)
    bid_of = {key: bid for bid, key in enumerate(keys)}

    call_entry_starts = set()
    for key in keys:
        site = sites[key]
        if _dominant_hint(site.hints) in ("call", "indirect_call"):
            for succ in site.taken_succ:
                call_entry_starts.add(succ[0])

    # return point of a call at (start, end): the block entered at the
    # address right after the call instruction
    start_index: Dict[int, Tuple[int, int]] = {}
    for key in keys:  # sorted, so the smallest end wins per start
        if key[0] not in start_index:
            start_index[key[0]] = key

    # -- infer kind + successors per block -------------------------------
    kind_of: Dict[Tuple[int, int], BranchKind] = {}
    spec_of: Dict[Tuple[int, int], Dict[str, object]] = {}
    for key in keys:
        site = sites[key]
        taken_set = set(site.taken_succ)
        fall_set = set(site.fall_succ)
        hint = _dominant_hint(site.hints)
        spec: Dict[str, object] = {}
        if len(fall_set) > 1 or (fall_set and taken_set and len(taken_set) > 1):
            # contradictory fall-through evidence (window stitches) or a
            # polymorphic mixed site: INDIRECT absorbs any successor set
            kind = BranchKind.INDIRECT
            spec["indirect"] = site.taken_succ + site.fall_succ
        elif not taken_set:
            kind = BranchKind.FALLTHROUGH
            spec["fallthrough"] = next(iter(fall_set))
        elif fall_set:
            # exactly one fall successor, exactly one taken target: COND
            kind = BranchKind.COND
            spec["fallthrough"] = next(iter(fall_set))
            spec["taken_target"] = next(iter(taken_set))
            spec["bias"] = (sum(site.taken_succ.values()) / site.count)
        else:
            # taken-only
            ret_key = start_index.get(key[1] + site.first.size)
            if hint == "return":
                kind = BranchKind.RETURN
            elif hint in ("call", "indirect_call") and ret_key is not None:
                if len(taken_set) == 1 and hint == "call":
                    kind = BranchKind.CALL
                    spec["taken_target"] = next(iter(taken_set))
                else:
                    kind = BranchKind.INDIRECT_CALL
                    spec["indirect"] = site.taken_succ
                spec["fallthrough"] = ret_key
            elif len(taken_set) == 1:
                kind = BranchKind.DIRECT
                spec["taken_target"] = next(iter(taken_set))
            else:
                kind = BranchKind.INDIRECT
                spec["indirect"] = site.taken_succ
        kind_of[key] = kind
        spec_of[key] = spec

    # -- group into functions, assign synthetic addresses ----------------
    groups: List[List[Tuple[int, int]]] = []
    prev_end = None
    for key in keys:
        new_group = (
            not groups
            or key[0] in call_entry_starts
            or (prev_end is not None and key[0] - prev_end > FUNCTION_GAP_BYTES)
        )
        if new_group:
            groups.append([])
        groups[-1].append(key)
        prev_end = key[1]

    blocks: List[Optional[BasicBlock]] = [None] * len(keys)
    functions: List[Function] = []
    addr = _BASE_ADDR
    for fid, group in enumerate(groups):
        addr = (addr + LINE_SIZE - 1) // LINE_SIZE * LINE_SIZE
        functions.append(Function(fid=fid, name="trace_f%d" % fid,
                                  entry=bid_of[group[0]],
                                  blocks=[bid_of[k] for k in group]))
        for key in group:
            site = sites[key]
            num = estimate_instructions(site.first, isize)
            spec = spec_of[key]
            bid = bid_of[key]
            block = BasicBlock(bid=bid, addr=addr, num_instructions=num,
                               kind=kind_of[key], fid=fid)
            if "taken_target" in spec:
                block.taken_target = bid_of[spec["taken_target"]]  # type: ignore[index]
            if "fallthrough" in spec:
                block.fallthrough = bid_of[spec["fallthrough"]]  # type: ignore[index]
            if "bias" in spec:
                block.taken_bias = float(spec["bias"])  # type: ignore[arg-type]
            if "indirect" in spec:
                targets, weights = _indirect_table(spec["indirect"], bid_of)  # type: ignore[arg-type]
                block.indirect_targets = targets
                block.indirect_weights = weights
            blocks[bid] = block
            addr += num * INSTRUCTION_SIZE

    layout = CodeLayout(blocks=[b for b in blocks if b is not None],
                        functions=functions,
                        entry_function=blocks[bid_of[events[0].key()]].fid)  # type: ignore[union-attr]
    layout.validate()

    # -- emit the loop-closed replay stream ------------------------------
    out_lines = [TraceHeader(workload=name, seed=0,
                             num_blocks=len(keys)).line()]
    instructions = 0
    for i, ev in enumerate(events):
        key = ev.key()
        kind = kind_of[key]
        if kind is BranchKind.FALLTHROUGH:
            taken = False
        elif kind is BranchKind.COND:
            taken = ev.taken
        else:
            taken = True  # TAKEN_KINDS (incl. promotions) always transfer
        succ = events[(i + 1) % len(events)].key()
        out_lines.append("%d %d %d" % (bid_of[key], 1 if taken else 0,
                                       bid_of[succ]))
        instructions += layout.blocks[bid_of[key]].num_instructions
    replay_text = "\n".join(out_lines) + "\n"

    # one full verification pass: synthesis must only ever emit streams
    # the replayer's strict mode accepts
    TraceReplayer(layout, replay_text, loop=True, verify=True)

    overrides = dict(profile_overrides or {})
    profile = TraceProfile(
        name=name,
        description=description or ("ingested trace workload (%d blocks, "
                                    "%d events)" % (len(keys), len(events))),
        trace_digest=digest,
        trace_events=len(events),
        trace_instructions=instructions,
        **overrides)  # type: ignore[arg-type]
    return TraceWorkload(name=name, profile=profile, layout=layout,
                         replay_text=replay_text, digest=digest,
                         events=len(events), instructions=instructions)

"""Trace ingestion: external basic-block/branch traces as workloads.

Every workload in the seed repo comes from the synthetic generator in
:mod:`repro.workloads`.  This package is the other front door: it takes
a branch trace captured from a *real* program (by a Pin tool, a ChampSim
tracer, ``perf`` post-processing, …), normalises it into the versioned
JSONL schema documented in :mod:`repro.traces.schema`, deterministically
downsamples it to a simulable instruction budget
(:mod:`repro.traces.downsample`), reconstructs a ``CodeLayout`` plus a
replayable control-flow stream from the observed edges
(:mod:`repro.traces.synthesize`), and content-addresses the result in
the ``ResultStore`` (:mod:`repro.traces.ingest`) so every run, sweep and
service cell resolves the same immutable blob by digest.

:mod:`repro.traces.registry` registers bundled traces (and any traces
the user ingested with ``repro ingest --register``) as first-class
benchmark names via the external-benchmark registry in
:mod:`repro.workloads.profiles` — after that, a trace name works
everywhere a profile name does.

Not to be confused with :mod:`repro.workloads.trace` (record/replay of
*our own* walker streams, the ``REPRO-TRACE`` format) or ``repro trace``
(the telemetry capture CLI): this package is about traces produced by
other tools, outside this repo.
"""

from repro.traces.schema import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    BranchRecord,
    TraceFormatError,
    TraceIngestError,
    TraceRecordError,
    TraceSchemaError,
    TraceStreamError,
)
from repro.traces.convert import load_records, sniff_format
from repro.traces.downsample import DownsampleReport, downsample_events
from repro.traces.synthesize import TraceProfile, TraceWorkload, synthesize
from repro.traces.ingest import IngestReport, ingest_path, load_workload

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "BranchRecord",
    "TraceIngestError",
    "TraceFormatError",
    "TraceSchemaError",
    "TraceRecordError",
    "TraceStreamError",
    "load_records",
    "sniff_format",
    "DownsampleReport",
    "downsample_events",
    "TraceProfile",
    "TraceWorkload",
    "synthesize",
    "IngestReport",
    "ingest_path",
    "load_workload",
]

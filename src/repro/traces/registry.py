"""Trace benchmark registry: names -> ingested workloads.

This module is the provider behind the external-benchmark registry in
:mod:`repro.workloads.profiles` (loaded lazily, by dotted name, on the
first unknown-benchmark lookup — including inside pool children and on
remote workers).  Importing it registers:

* the **bundled traces** pinned in ``data/bundled.json`` (regenerate
  with ``scripts/make_bundled_traces.py``), and
* any **user traces** recorded by ``repro ingest --register NAME`` in
  the registry file (``REPRO_TRACE_REGISTRY`` or
  ``~/.repro/trace_registry.json``).

Registration is cheap: only the :class:`TraceProfile` (name, pinned
digest, event/instruction counts) is built eagerly, so computing a run
key over a trace benchmark costs no I/O.  The heavy work — resolving
the blob (store by digest, else re-ingest from the source file) and
synthesising the layout — happens once per process, memoized, the
first time a layout or walker is actually needed.  A resolved blob
whose digest disagrees with the pinned one fails with category
``bundle-drift`` rather than silently simulating a different workload.
"""

from __future__ import annotations

import json
import os
import re
import threading
from pathlib import Path
from typing import Dict, Optional

from repro.service.store import store_from_env
from repro.traces.downsample import DEFAULT_BUDGET, DEFAULT_WINDOW
from repro.traces.ingest import IngestReport, load_workload
from repro.traces.schema import TraceIngestError
from repro.traces.synthesize import TraceProfile, TraceWorkload
from repro.workloads.profiles import register_external_benchmark
from repro.workloads.trace import TraceReplayer

DATA_DIR = Path(__file__).resolve().parent / "data"
BUNDLED_MANIFEST = DATA_DIR / "bundled.json"

#: env var relocating the user trace-registry file
REGISTRY_ENV = "REPRO_TRACE_REGISTRY"

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9_.-]{0,63}$")

_SPECS: Dict[str, Dict[str, object]] = {}
_WORKLOADS: Dict[str, TraceWorkload] = {}
_BUNDLED_NAMES: "set[str]" = set()
_LOCK = threading.Lock()


def registry_path() -> Path:
    """Location of the user trace-registry JSON file."""
    override = os.environ.get(REGISTRY_ENV, "").strip()
    if override:
        return Path(override)
    return Path.home() / ".repro" / "trace_registry.json"


def trace_benchmark_names() -> "tuple[str, ...]":
    """Names this provider has registered (sorted)."""
    return tuple(sorted(_SPECS))


def get_workload(name: str) -> TraceWorkload:
    """The materialised workload for a registered trace benchmark."""
    with _LOCK:
        wl = _WORKLOADS.get(name)
        if wl is not None:
            return wl
        spec = _SPECS.get(name)
        if spec is None:
            raise KeyError("unknown trace benchmark %r" % (name,))
        path = spec.get("path")
        wl = load_workload(
            name, str(spec["digest"]),
            store=store_from_env(),
            path=str(path) if path else None,
            fmt=str(spec.get("format", "auto")),
            budget=int(spec.get("budget", DEFAULT_BUDGET)),  # type: ignore[arg-type]
            window=int(spec.get("window", DEFAULT_WINDOW)),  # type: ignore[arg-type]
            seed=int(spec.get("seed", 0)),  # type: ignore[arg-type]
            profile_overrides=spec.get("profile"),  # type: ignore[arg-type]
            description=str(spec.get("description", "")))
        _WORKLOADS[name] = wl
        return wl


def _register(name: str, spec: Dict[str, object],
              replace_existing: bool = False) -> None:
    if not _NAME_RE.match(name):
        raise TraceIngestError(
            "trace benchmark name %r must match %s"
            % (name, _NAME_RE.pattern))
    profile = TraceProfile(
        name=name,
        description=str(spec.get("description", "")) or
        "ingested trace workload",
        trace_digest=str(spec["digest"]),
        trace_events=int(spec.get("events", 0)),  # type: ignore[arg-type]
        trace_instructions=int(spec.get("instructions", 0)),  # type: ignore[arg-type]
        **dict(spec.get("profile") or {}))  # type: ignore[arg-type]

    def layout_builder(seed: int, _name: str = name):
        # trace layouts are reconstructions of one observed binary:
        # seed-invariant by design (the seed still varies machine RNGs)
        return get_workload(_name).layout

    def walker_factory(layout, seed: int, _name: str = name):
        return TraceReplayer(layout, get_workload(_name).replay_text,
                             loop=True, verify=False)

    _SPECS[name] = dict(spec)
    register_external_benchmark(name, profile, layout_builder,
                                walker_factory,
                                replace_existing=replace_existing)


def _load_bundled() -> None:
    if not BUNDLED_MANIFEST.exists():
        return  # stripped-down checkout: bundled benchmarks unavailable
    with open(BUNDLED_MANIFEST) as fh:
        manifest = json.load(fh)
    for name, spec in sorted(manifest.items()):
        spec = dict(spec)
        spec["path"] = str(DATA_DIR / str(spec.pop("file")))
        spec.setdefault("format", "jsonl")
        _BUNDLED_NAMES.add(name)
        _register(name, spec)


def _load_user_registry() -> None:
    path = registry_path()
    if not path.exists():
        return
    try:
        with open(path) as fh:
            entries = json.load(fh)
    except (OSError, ValueError) as exc:
        raise TraceIngestError("unreadable trace registry %s: %s"
                               % (path, exc))
    for name, spec in sorted(entries.items()):
        if name in _SPECS:
            continue  # bundled names win; the CLI refuses to shadow them
        _register(name, dict(spec))


def register_ingested(name: str, report: IngestReport,
                      budget: int, window: int, seed: int = 0,
                      profile: Optional[Dict[str, object]] = None,
                      description: str = "") -> Path:
    """Persist + activate ``repro ingest --register NAME``.

    Writes the entry into the user registry file and registers the
    benchmark in this process.  Returns the registry path.
    """
    if not _NAME_RE.match(name):
        raise TraceIngestError(
            "trace benchmark name %r must match %s"
            % (name, _NAME_RE.pattern))
    if name in _BUNDLED_NAMES:
        raise TraceIngestError(
            "%r is a bundled trace benchmark and cannot be replaced; "
            "pick another name" % (name,))
    spec: Dict[str, object] = {
        "digest": report.digest,
        "path": os.path.abspath(report.source),
        "format": report.format,
        "events": report.events,
        "instructions": report.instructions,
        "budget": budget,
        "window": window,
        "seed": seed,
        "description": description or ("user trace ingested from %s"
                                       % os.path.basename(report.source)),
    }
    if profile:
        spec["profile"] = dict(profile)
    path = registry_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    entries: Dict[str, object] = {}
    if path.exists():
        with open(path) as fh:
            entries = json.load(fh)
    entries[name] = spec
    tmp = path.with_suffix(".%d.tmp" % os.getpid())
    with open(tmp, "w") as fh:
        json.dump(entries, fh, indent=2, sort_keys=True)
        fh.write("\n")
    tmp.replace(path)
    _register(name, spec, replace_existing=True)
    return path


_load_bundled()
_load_user_registry()

"""The ingest pipeline: trace file -> content-addressed workload blob.

``ingest_path`` is the one entry point: it parses/converts the input
(:mod:`repro.traces.convert`), derives the dynamic block-event stream,
downsamples it to the instruction budget
(:mod:`repro.traces.downsample`), canonicalises the kept events into a
**blob payload** whose :func:`repro.utils.canonical_digest` is the
trace's identity everywhere (store blob name, ``TraceProfile.
trace_digest``, and therefore every run key computed over the
benchmark), and records it in the :class:`~repro.service.store.
ResultStore` ``traces`` table.

Warm re-ingest is free by construction: the pipeline fingerprints
``(source bytes, ingest parameters)`` into ``source_sha`` first and asks
the store for it — a hit skips parsing, sampling and synthesis entirely
(:data:`PIPELINE_RUNS` counts the cold runs so tests and the CI
``ingest-smoke`` job can assert a warm re-run performed zero
ingestions).

Blob payload (JSON, digested canonically)::

    {"schema": "repro-xtrace-blob", "version": 1, "isize": 4,
     "events": [[start, end, size, taken, kind_index], ...]}

The payload deliberately excludes names, paths and timestamps: identity
is content.  Two ingests of the same trace under different names share
one blob; two different traces can never collide.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.service.store import ResultStore
from repro.traces.convert import load_records
from repro.traces.downsample import (
    DEFAULT_BUDGET,
    DEFAULT_WINDOW,
    DownsampleReport,
    downsample_events,
    estimate_instructions,
)
from repro.traces.schema import (
    DEFAULT_ISIZE,
    RECORD_KINDS,
    BlockEvent,
    TraceIngestError,
    derive_block_events,
)
from repro.traces.synthesize import TraceWorkload, synthesize
from repro.utils import canonical_digest

BLOB_SCHEMA = "repro-xtrace-blob"
BLOB_VERSION = 1

#: Cold pipeline executions (parse + downsample + blob) since import.
#: Warm re-ingests (source_sha store hits) must not bump this.
PIPELINE_RUNS = 0


@dataclass(frozen=True)
class IngestReport:
    """What one ``ingest_path`` call did."""

    source: str
    format: str
    digest: str
    source_sha: str
    created: bool        # False: warm re-ingest, resolved from the store
    events: int
    instructions: int
    downsample: Optional[DownsampleReport]  # None on a warm re-ingest


def blob_payload(events: List[BlockEvent], isize: int) -> Dict[str, object]:
    """Canonical blob payload for a kept event stream."""
    return {
        "schema": BLOB_SCHEMA,
        "version": BLOB_VERSION,
        "isize": isize,
        "events": [[ev.start, ev.end, ev.size, 1 if ev.taken else 0,
                    RECORD_KINDS.index(ev.kind)] for ev in events],
    }


def events_from_blob(payload: Dict[str, object]) -> Tuple[List[BlockEvent], int]:
    """Decode a blob payload back into ``(events, isize)``."""
    if (not isinstance(payload, dict)
            or payload.get("schema") != BLOB_SCHEMA):
        raise TraceIngestError("payload is not a %s blob" % BLOB_SCHEMA)
    if payload.get("version") != BLOB_VERSION:
        raise TraceIngestError(
            "blob version %r unsupported" % (payload.get("version"),),
            category="unsupported-version")
    isize = int(payload.get("isize", DEFAULT_ISIZE))  # type: ignore[arg-type]
    events = [
        BlockEvent(start=row[0], end=row[1], size=row[2],
                   taken=bool(row[3]), target=0, kind=RECORD_KINDS[row[4]])
        for row in payload["events"]  # type: ignore[union-attr]
    ]
    return events, isize


def source_fingerprint(path: str, fmt: str, budget: int, window: int,
                       seed: int) -> str:
    """SHA-1 over (source bytes, ingest parameters).

    Any change to either the file or the sampling parameters produces a
    different fingerprint, so a store hit is guaranteed to resolve to
    the exact blob this invocation would have produced.
    """
    sha = hashlib.sha1()
    sha.update(("xtrace:%s:%d:%d:%d:" % (fmt, budget, window, seed))
               .encode("utf-8"))
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            sha.update(chunk)
    return sha.hexdigest()


def ingest_events(events: List[BlockEvent], isize: int,
                  budget: int = DEFAULT_BUDGET,
                  window: int = DEFAULT_WINDOW,
                  seed: int = 0
                  ) -> Tuple[Dict[str, object], str, DownsampleReport]:
    """Downsample + canonicalise: ``(payload, digest, report)``."""
    global PIPELINE_RUNS
    PIPELINE_RUNS += 1
    kept, report = downsample_events(events, isize, budget=budget,
                                     window=window, seed=seed)
    payload = blob_payload(kept, isize)
    return payload, canonical_digest(payload), report


def ingest_path(path: str, fmt: str = "auto",
                store: Optional[ResultStore] = None,
                name: str = "",
                budget: int = DEFAULT_BUDGET,
                window: int = DEFAULT_WINDOW,
                seed: int = 0) -> IngestReport:
    """Ingest the trace file at *path*; returns an :class:`IngestReport`.

    With a store, a previous ingest of the same (bytes, parameters) is
    resolved from the index without touching the pipeline.
    """
    source_sha = source_fingerprint(path, fmt, budget, window, seed)
    if store is not None:
        row = store.find_trace(source_sha=source_sha)
        if row is not None:
            return IngestReport(
                source=path, format=str((row.get("meta") or {}).get(
                    "format", fmt)),
                digest=str(row["digest"]), source_sha=source_sha,
                created=False, events=int(row["events"]),
                instructions=int(row["instructions"]), downsample=None)
    meta, records = load_records(path, fmt)
    events = derive_block_events(records)
    payload, digest, report = ingest_events(
        events, int(meta.get("isize", DEFAULT_ISIZE)),  # type: ignore[arg-type]
        budget=budget, window=window, seed=seed)
    if store is not None:
        store.put_trace(payload, name=name, source_sha=source_sha,
                        meta={"format": str(meta.get("format", fmt)),
                              "source": path,
                              "instructions": report.instructions_kept,
                              "budget": budget, "window": window,
                              "seed": seed})
    return IngestReport(
        source=path, format=str(meta.get("format", fmt)), digest=digest,
        source_sha=source_sha, created=True,
        events=report.events_kept,
        instructions=report.instructions_kept, downsample=report)


def load_workload(name: str, digest: str,
                  store: Optional[ResultStore] = None,
                  path: Optional[str] = None, fmt: str = "auto",
                  budget: int = DEFAULT_BUDGET,
                  window: int = DEFAULT_WINDOW,
                  seed: int = 0,
                  profile_overrides: Optional[Dict[str, object]] = None,
                  description: str = "") -> TraceWorkload:
    """Materialise a :class:`TraceWorkload` for a known trace digest.

    Resolution order: store blob by digest, then re-ingest from *path*.
    The resulting blob digest must equal *digest* — a mismatch means the
    source drifted out from under its registration (category
    ``bundle-drift``).
    """
    payload: Optional[Dict[str, object]] = None
    if store is not None and digest:
        payload = store.get_trace(digest)
    if payload is None:
        if path is None:
            raise TraceIngestError(
                "trace %s (digest %s) not in the store and no source path "
                "to re-ingest from" % (name, digest[:12] or "?"))
        meta, records = load_records(path, fmt)
        events = derive_block_events(records)
        payload, got, _report = ingest_events(
            events, int(meta.get("isize", DEFAULT_ISIZE)),  # type: ignore[arg-type]
            budget=budget, window=window, seed=seed)
        if digest and got != digest:
            raise TraceIngestError(
                "trace %s: source %s re-ingests to digest %s, expected %s"
                % (name, path, got[:12], digest[:12]),
                category="bundle-drift")
        digest = got
        if store is not None:
            store.put_trace(payload, name=name,
                            source_sha=source_fingerprint(
                                path, fmt, budget, window, seed),
                            meta={"format": fmt, "source": path,
                                  "budget": budget, "window": window,
                                  "seed": seed})
    events, isize = events_from_blob(payload)
    return synthesize(name, events, isize, digest=digest,
                      profile_overrides=profile_overrides,
                      description=description)

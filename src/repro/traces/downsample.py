"""Deterministic downsampling of block-event streams.

Real traces run to hundreds of millions of instructions; the simulator's
budgets are O(100K).  Naive head-truncation would erase exactly the
structure external traces are here to provide (late phases, cold
bursts), so the sampler is *windowed and phase-aware*:

1. The event stream is cut into consecutive windows of ``window`` block
   events.
2. Each window gets a **novelty score**: the fraction of its static
   blocks never seen in any earlier window.  A phase change — the
   program moving onto code it has not touched — shows up as a novelty
   spike, so windows with novelty >= ``phase_threshold`` are *phase
   heads* and are always kept (in order, until the budget runs out).
3. The remaining instruction budget is filled with non-head windows
   chosen by a seeded shuffle (:func:`repro.utils.derive_rng`, stream
   ``"trace-downsample"``), then re-sorted chronologically so the kept
   stream preserves the original phase order.

The output is a pure function of ``(events, budget, window, seed)`` —
the ingest digest over the kept events is golden-pinned in the tests, so
any change to this algorithm is a schema event, not a silent drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.traces.schema import BlockEvent, TraceIngestError
from repro.utils import derive_rng

DEFAULT_BUDGET = 120_000  # instructions
DEFAULT_WINDOW = 1024     # block events per window
PHASE_THRESHOLD = 0.25    # novelty fraction that marks a phase head

#: Per-block instruction estimates are clamped here so one absurd
#: address span (e.g. a trace that jumps across a library) cannot eat
#: the whole budget or produce a pathological layout block.
MAX_BLOCK_INSTRUCTIONS = 64


def estimate_instructions(event: BlockEvent, isize: int) -> int:
    """Estimated instructions retired by one block execution."""
    span = max(0, event.end - event.start)
    return max(1, min(MAX_BLOCK_INSTRUCTIONS, span // max(1, isize) + 1))


@dataclass(frozen=True)
class DownsampleReport:
    """What the sampler did — carried into the ingest report and blob meta."""

    events_in: int
    events_kept: int
    instructions_in: int
    instructions_kept: int
    windows_total: int
    windows_kept: int
    phase_windows: int
    budget: int
    window: int
    seed: int

    @property
    def sampled(self) -> bool:
        return self.events_kept < self.events_in


def downsample_events(
    events: List[BlockEvent],
    isize: int,
    budget: int = DEFAULT_BUDGET,
    window: int = DEFAULT_WINDOW,
    seed: int = 0,
    phase_threshold: float = PHASE_THRESHOLD,
) -> Tuple[List[BlockEvent], DownsampleReport]:
    """Cut *events* down to ~*budget* estimated instructions.

    Returns ``(kept_events, report)``.  Raises
    :class:`TraceIngestError` (category ``budget-too-small``) when the
    budget cannot fit even the entry window.
    """
    if budget <= 0 or window <= 0:
        raise TraceIngestError(
            "budget and window must be positive (budget=%d window=%d)"
            % (budget, window),
            category="budget-too-small")
    instr = [estimate_instructions(ev, isize) for ev in events]
    total = sum(instr)
    if total <= budget:
        report = DownsampleReport(
            events_in=len(events), events_kept=len(events),
            instructions_in=total, instructions_kept=total,
            windows_total=1, windows_kept=1, phase_windows=1,
            budget=budget, window=window, seed=seed)
        return list(events), report

    # window index -> (event slice bounds, instruction count, novelty)
    bounds: List[Tuple[int, int]] = []
    win_instr: List[int] = []
    novelty: List[float] = []
    seen: Set[Tuple[int, int]] = set()
    for lo in range(0, len(events), window):
        hi = min(lo + window, len(events))
        keys = {events[i].key() for i in range(lo, hi)}
        fresh = len(keys - seen)
        novelty.append(fresh / len(keys))
        seen |= keys
        bounds.append((lo, hi))
        win_instr.append(sum(instr[lo:hi]))

    if win_instr[0] > budget:
        raise TraceIngestError(
            "budget %d cannot fit the entry window (%d instructions); "
            "raise --budget or shrink --window" % (budget, win_instr[0]),
            category="budget-too-small")

    heads = [i for i, nov in enumerate(novelty) if nov >= phase_threshold]
    chosen: List[int] = []
    spent = 0
    for i in heads:  # chronological: early phases win when heads alone overflow
        if spent + win_instr[i] > budget:
            continue
        chosen.append(i)
        spent += win_instr[i]

    rest = [i for i in range(len(bounds)) if i not in set(chosen)]
    derive_rng(seed, "trace-downsample").shuffle(rest)
    for i in rest:
        if spent + win_instr[i] > budget:
            continue
        chosen.append(i)
        spent += win_instr[i]

    chosen.sort()
    kept: List[BlockEvent] = []
    for i in chosen:
        lo, hi = bounds[i]
        kept.extend(events[lo:hi])
    report = DownsampleReport(
        events_in=len(events), events_kept=len(kept),
        instructions_in=total, instructions_kept=spent,
        windows_total=len(bounds), windows_kept=len(chosen),
        phase_windows=len(heads),
        budget=budget, window=window, seed=seed)
    return kept, report

"""The external trace schema (``repro-xtrace`` v1) and its error taxonomy.

An external trace is a stream of **retired branch records** — the same
information a ChampSim branch tracer or a Pin branch log carries.  The
canonical interchange form is JSON Lines:

Header (first non-empty line)::

    {"schema": "repro-xtrace", "version": 1, "isize": 4,
     "source": "optional free text"}

* ``schema`` / ``version`` — required, exactly as above.  Unknown extra
  header keys are preserved as metadata but never interpreted.
* ``isize`` — optional mean instruction size in bytes (default 4); used
  to estimate per-block instruction counts from address spans.

Record lines (one JSON object per retired branch)::

    {"pc": 4198400, "size": 4, "taken": true, "target": 4198656,
     "kind": "cond"}

* ``pc`` — required, address of the branch instruction (int, or a
  ``"0x..."`` string).
* ``taken`` — required bool.  Not-taken flow falls through to
  ``pc + size``.
* ``target`` — required when ``taken`` is true; the branch target.
* ``size`` — optional instruction size in bytes (default ``isize``).
* ``kind`` — optional hint, one of :data:`RECORD_KINDS`; defaults to
  ``"unknown"``.  Kinds are *hints*: layout synthesis trusts observed
  edges over declared kinds and degrades gracefully when they disagree.

Between two consecutive records the program executed a straight-line run
of instructions: the basic block entered at the previous record's
flow-out address and terminated by the current record's ``pc``.  That
derived *block event stream* (see :func:`derive_block_events`) is what
the downsampler and the layout synthesizer operate on, and what the
content-addressed blob stores.

Malformed-input taxonomy
------------------------

Every failure raises a subclass of :class:`TraceIngestError` carrying a
``category`` from :data:`TAXONOMY` and, where meaningful, a 1-based
``lineno`` — so callers (CLI, tests, services) can dispatch on *why* an
input was rejected, not just that it was:

============================ ===========================================
category                      meaning
============================ ===========================================
``not-a-trace``               no parseable header / unrecognised format
``unsupported-version``       header version this code does not speak
``bad-header-field``          header field missing or of the wrong type
``malformed-record``          record line is not parseable at all
``bad-field-type``            record field present but wrong type
``bad-field-value``           record field parseable but out of domain
``missing-target``            taken branch without a target
``empty-trace``               header but zero records
``inconsistent-flow``         records contradict each other (block would
                              end before it starts)
``budget-too-small``          downsample budget below one window
``bundle-drift``              bundled/pinned digest no longer matches
============================ ===========================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, IO, Iterable, List, Optional, Tuple

SCHEMA_NAME = "repro-xtrace"
SCHEMA_VERSION = 1

#: Recognised values for a record's ``kind`` hint.
RECORD_KINDS = (
    "cond",
    "direct",
    "indirect",
    "call",
    "indirect_call",
    "return",
    "unknown",
)

DEFAULT_ISIZE = 4

#: category -> human description (the malformed-input taxonomy).
TAXONOMY: Dict[str, str] = {
    "not-a-trace": "no parseable header / unrecognised format",
    "unsupported-version": "header names a schema version this code does not speak",
    "bad-header-field": "header field missing or of the wrong type",
    "malformed-record": "record line is not parseable at all",
    "bad-field-type": "record field present but of the wrong type",
    "bad-field-value": "record field parseable but outside its domain",
    "missing-target": "taken branch without a target address",
    "empty-trace": "valid header but zero records",
    "inconsistent-flow": "records contradict each other mid-stream",
    "budget-too-small": "downsample budget smaller than one window",
    "bundle-drift": "bundled/pinned trace digest no longer matches",
}


class TraceIngestError(ValueError):
    """Base for every trace-ingestion failure.

    ``category`` is always a key of :data:`TAXONOMY`; ``lineno`` is the
    1-based input line when the failure is attributable to one.
    """

    category = "not-a-trace"

    def __init__(self, message: str, category: Optional[str] = None,
                 lineno: Optional[int] = None):
        if category is not None:
            self.category = category
        assert self.category in TAXONOMY, self.category
        self.lineno = lineno
        where = " (line %d)" % lineno if lineno is not None else ""
        super().__init__("[%s] %s%s" % (self.category, message, where))


class TraceFormatError(TraceIngestError):
    """The input is not a trace in any supported shape."""

    category = "not-a-trace"


class TraceSchemaError(TraceIngestError):
    """The header is present but wrong (version/fields)."""

    category = "bad-header-field"


class TraceRecordError(TraceIngestError):
    """A single record line is malformed."""

    category = "malformed-record"


class TraceStreamError(TraceIngestError):
    """Individually valid records that are mutually inconsistent."""

    category = "inconsistent-flow"


@dataclass(frozen=True)
class BranchRecord:
    """One retired branch, normalised from any input format."""

    pc: int
    taken: bool
    target: int  # 0 when not taken
    size: int
    kind: str  # one of RECORD_KINDS

    @property
    def flow_out(self) -> int:
        """Address control flow continues at after this branch."""
        return self.target if self.taken else self.pc + self.size


@dataclass(frozen=True)
class BlockEvent:
    """One dynamic basic-block execution derived from the record stream.

    The block spans ``[start, end]`` where ``end`` is the terminating
    branch's pc; ``size`` is that branch instruction's size (needed to
    compute the fall-through / return-point address ``end + size``).
    """

    start: int
    end: int
    size: int
    taken: bool
    target: int
    kind: str

    @property
    def flow_out(self) -> int:
        return self.target if self.taken else self.end + self.size

    def key(self) -> Tuple[int, int]:
        """Static block identity: same entry + same terminator."""
        return (self.start, self.end)


def parse_int(value: object, field: str, lineno: Optional[int]) -> int:
    """Parse an int field that may arrive as an int or a hex/dec string."""
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TraceRecordError(
            "field %r must be an integer, got bool" % field,
            category="bad-field-type", lineno=lineno)
    if isinstance(value, int):
        out = value
    elif isinstance(value, str):
        try:
            out = int(value, 0)
        except ValueError:
            raise TraceRecordError(
                "field %r is not an integer: %r" % (field, value),
                category="bad-field-type", lineno=lineno)
    else:
        raise TraceRecordError(
            "field %r must be an integer, got %s" % (field, type(value).__name__),
            category="bad-field-type", lineno=lineno)
    if out < 0:
        raise TraceRecordError(
            "field %r must be non-negative, got %d" % (field, out),
            category="bad-field-value", lineno=lineno)
    return out


def validate_header(obj: object, lineno: int = 1) -> Dict[str, object]:
    """Validate a parsed JSONL header object; returns it as metadata."""
    if not isinstance(obj, dict):
        raise TraceFormatError("header line is not a JSON object",
                               lineno=lineno)
    schema = obj.get("schema")
    if schema != SCHEMA_NAME:
        raise TraceFormatError(
            "header schema %r is not %r" % (schema, SCHEMA_NAME),
            lineno=lineno)
    version = obj.get("version")
    if not isinstance(version, int) or isinstance(version, bool):
        raise TraceSchemaError("header 'version' must be an integer",
                               lineno=lineno)
    if version != SCHEMA_VERSION:
        raise TraceSchemaError(
            "schema version %d unsupported (this code speaks %d)"
            % (version, SCHEMA_VERSION),
            category="unsupported-version", lineno=lineno)
    isize = obj.get("isize", DEFAULT_ISIZE)
    if not isinstance(isize, int) or isinstance(isize, bool) or isize <= 0:
        raise TraceSchemaError("header 'isize' must be a positive integer",
                               lineno=lineno)
    return dict(obj)


def validate_record(obj: object, isize: int, lineno: int) -> BranchRecord:
    """Validate one parsed JSONL record object into a :class:`BranchRecord`."""
    if not isinstance(obj, dict):
        raise TraceRecordError("record line is not a JSON object",
                               lineno=lineno)
    if "pc" not in obj:
        raise TraceRecordError("record is missing 'pc'",
                               category="bad-field-value", lineno=lineno)
    pc = parse_int(obj["pc"], "pc", lineno)
    taken = obj.get("taken")
    if not isinstance(taken, bool):
        raise TraceRecordError("field 'taken' must be a bool",
                               category="bad-field-type", lineno=lineno)
    size = parse_int(obj.get("size", isize), "size", lineno)
    if size <= 0:
        raise TraceRecordError("field 'size' must be positive",
                               category="bad-field-value", lineno=lineno)
    kind = obj.get("kind", "unknown")
    if kind not in RECORD_KINDS:
        raise TraceRecordError(
            "field 'kind' must be one of %s, got %r"
            % ("/".join(RECORD_KINDS), kind),
            category="bad-field-value", lineno=lineno)
    if taken:
        if "target" not in obj or obj["target"] is None:
            raise TraceRecordError("taken branch has no 'target'",
                                   category="missing-target", lineno=lineno)
        target = parse_int(obj["target"], "target", lineno)
    else:
        target = 0
    return BranchRecord(pc=pc, taken=taken, target=target, size=size, kind=kind)


def read_jsonl(lines: Iterable[str]) -> Tuple[Dict[str, object], List[BranchRecord]]:
    """Parse JSONL text lines into ``(header_meta, records)``.

    The first non-empty, non-comment line must be the header.  Lines
    starting with ``#`` are comments.
    """
    meta: Optional[Dict[str, object]] = None
    isize = DEFAULT_ISIZE
    records: List[BranchRecord] = []
    lineno = 0
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            if meta is None:
                raise TraceFormatError("first line is not JSON", lineno=lineno)
            raise TraceRecordError("line is not JSON", lineno=lineno)
        if meta is None:
            meta = validate_header(obj, lineno=lineno)
            isize = int(meta.get("isize", DEFAULT_ISIZE))  # type: ignore[arg-type]
            continue
        records.append(validate_record(obj, isize, lineno))
    if meta is None:
        raise TraceFormatError("empty input: no header line",
                               lineno=lineno or None)
    if not records:
        raise TraceSchemaError("trace has a header but no records",
                               category="empty-trace", lineno=lineno)
    return meta, records


def write_jsonl(fh: IO[str], records: Iterable[BranchRecord],
                meta: Optional[Dict[str, object]] = None) -> None:
    """Write records in canonical ``repro-xtrace`` JSONL form."""
    header: Dict[str, object] = {"schema": SCHEMA_NAME, "version": SCHEMA_VERSION}
    if meta:
        for key, value in meta.items():
            if key not in ("schema", "version"):
                header[key] = value
    fh.write(json.dumps(header, sort_keys=True) + "\n")
    for rec in records:
        obj: Dict[str, object] = {"pc": rec.pc, "taken": rec.taken,
                                  "size": rec.size}
        if rec.taken:
            obj["target"] = rec.target
        if rec.kind != "unknown":
            obj["kind"] = rec.kind
        fh.write(json.dumps(obj, sort_keys=True) + "\n")


def derive_block_events(records: List[BranchRecord]) -> List[BlockEvent]:
    """Turn the branch-record stream into a dynamic basic-block stream.

    Block *i* starts at record *i-1*'s flow-out address (the first block
    starts at record 0's pc) and ends at record *i*'s pc.  A record whose
    pc precedes its block's start would mean the block ends before it
    begins — mutually contradictory records, rejected with category
    ``inconsistent-flow``.
    """
    if not records:
        raise TraceSchemaError("no records to derive blocks from",
                               category="empty-trace")
    events: List[BlockEvent] = []
    start = records[0].pc
    for i, rec in enumerate(records):
        if rec.pc < start:
            raise TraceStreamError(
                "record %d: branch pc 0x%x precedes its block start 0x%x "
                "(previous record's flow-out)" % (i, rec.pc, start),
                lineno=None)
        events.append(BlockEvent(start=start, end=rec.pc, size=rec.size,
                                 taken=rec.taken, target=rec.target,
                                 kind=rec.kind))
        start = rec.flow_out
    return events

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — simulate one benchmark under one policy and print its stats;
* ``suite`` — run a benchmark x policy grid and print speedups;
* ``figure`` — regenerate one paper figure/table by id (fig01..fig16,
  tab01/tab04/tab05) or ``all``;
* ``bench`` — time representative simulation cells and write
  ``BENCH_runner.json`` (see :mod:`repro.bench`);
* ``manifest`` — print the summary of a suite run's JSON manifest;
* ``workload`` — characterize a benchmark's instruction stream;
* ``trace`` — record/replay **this simulator's own** block-stream dumps
  of a benchmark (an internal debugging format), or (``trace run``)
  simulate with the telemetry recorder attached and export Chrome-trace
  JSON (Perfetto-loadable) plus JSONL (see :mod:`repro.telemetry`).
  To bring a trace captured *outside* this simulator, see ``ingest``;
* ``ingest`` — import an **external** basic-block trace (schema-v1
  JSONL, ChampSim branch records, or ``pc,target,taken`` CSV) as a
  content-addressed blob, optionally registering it as a first-class
  benchmark name usable in ``run``/``suite``/``sweep``/``bench``
  (see :mod:`repro.traces`);
* ``diff`` — compare two run dumps / manifests / traces and name the
  first diverging counter or event (exit 0 match, 1 diverged,
  2 incomparable);
* ``lint`` — run the AST determinism/architecture rules
  (see :mod:`repro.analysis`);
* ``serve`` — run the simulation job server (priority queue, worker
  pool, durable result store; see :mod:`repro.service`), or with
  ``--coordinator`` the cluster scheduler that dispatches to
  registered workers (see :mod:`repro.service.cluster`);
* ``worker`` — join a coordinator as a cluster worker (an execute
  endpoint plus one shard of the content-addressed store);
* ``submit`` — submit one cell to a running server (``--wait`` blocks
  for the result);
* ``jobs`` — list/inspect/cancel server jobs, ``--drain`` it,
  ``--workers`` to list a coordinator's fleet, or ``--watch SECONDS``
  to poll and redraw until Ctrl-C;
* ``sweep`` — compile (``plan``), execute (``run``), or resolve
  (``status``) a declarative TOML/JSON sweep spec against the result
  store, a local pool, or a running server (see :mod:`repro.sweeps`);
* ``dash`` — summarize (and ``--open`` in a browser) a running
  server's live dashboard;
* ``list`` — show the available benchmarks, policies, and figures.

``run``, ``suite``, and ``figure`` accept ``--store DIR`` (or the
``REPRO_STORE`` env var) to read and write the same durable store the
server uses, so batch and served work share one result set. ``bench``
deliberately has no such flag — scores must time real simulations.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import List, Optional

from repro.simulator.config import BACKENDS
from repro.simulator.policies import POLICIES, get_policy
from repro.simulator.runner import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_WARMUP,
    run_benchmark,
    run_suite_parallel,
)
from repro.utils import geomean
from repro.workloads.profiles import (
    BENCHMARK_NAMES,
    external_benchmark_names,
    get_profile,
    known_benchmark_names,
)

FIGURES = {
    "fig01": "repro.experiments.fig01_topdown",
    "fig03": "repro.experiments.fig03_prior_techniques",
    "fig04": "repro.experiments.fig04_fec_fraction",
    "fig09": "repro.experiments.fig09_mpki",
    "fig10": "repro.experiments.fig10_speedup",
    "fig11": "repro.experiments.fig11_late_prefetches",
    "fig12": "repro.experiments.fig12_fec_stall_reduction",
    "fig13": "repro.experiments.fig13_table_sensitivity",
    "fig14": "repro.experiments.fig14_btb_sensitivity",
    "fig15": "repro.experiments.fig15_storage_efficiency",
    "fig16": "repro.experiments.fig16_trigger_distribution",
    "tab01": "repro.experiments.tab01_config",
    "tab04": "repro.experiments.tab04_ppki_accuracy",
    "tab05": "repro.experiments.tab05_energy_area",
    # extension (beyond the paper's figures)
    "ext_related_work": "repro.experiments.ext_related_work",
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro", description="PDIP (ASPLOS 2024) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one benchmark x policy")
    p_run.add_argument("benchmark", choices=known_benchmark_names())
    p_run.add_argument("policy", choices=sorted(POLICIES))
    _budget_args(p_run)
    _store_arg(p_run)
    p_run.add_argument("--stats-out", default=None, metavar="PATH",
                       help="also write the stats as a JSON run dump "
                            "(comparable with 'repro diff')")
    p_run.add_argument("--telemetry", action="store_true",
                       help="attach the telemetry recorder (implies a fresh "
                            "simulation) and include its summary in "
                            "--stats-out")

    p_suite = sub.add_parser("suite", help="benchmark x policy grid")
    p_suite.add_argument("--benchmarks", default="all",
                         help="comma-separated names or 'all'")
    p_suite.add_argument("--policies", default="baseline,pdip_44",
                         help="comma-separated policy names")
    _budget_args(p_suite)
    _jobs_arg(p_suite)
    _store_arg(p_suite)

    p_fig = sub.add_parser("figure", help="regenerate a paper artifact")
    p_fig.add_argument("figure", choices=sorted(FIGURES) + ["all"])
    _jobs_arg(p_fig)
    _store_arg(p_fig)

    p_bench = sub.add_parser(
        "bench", help="time the simulation core and write BENCH_runner.json")
    p_bench.add_argument("--quick", action="store_true",
                         help="small cell subset (CI smoke)")
    p_bench.add_argument("--cells", default=None,
                         help="comma-separated cell names (see repro.bench)")
    p_bench.add_argument("--repeats", type=int, default=2,
                         help="timing repeats per cell (best wall kept)")
    p_bench.add_argument("--out", default=None,
                         help="output JSON (default: BENCH_runner.json)")
    p_bench.add_argument("--baseline", default=None,
                         help="recorded baseline JSON to compare against "
                              "(default: benchmarks/bench_baseline.json)")
    p_bench.add_argument("--record-baseline", default=None, metavar="PATH",
                         help="record current scores as the baseline at PATH "
                              "and exit")
    p_bench.add_argument("--check", action="store_true",
                         help="exit 1 if a cell's normalized score regresses "
                              "beyond --tolerance vs the baseline")
    p_bench.add_argument("--tolerance", type=float, default=None,
                         help="allowed normalized regression (default 0.20)")
    p_bench.add_argument("--backend", choices=("ref", "fast", "both"),
                         default="both",
                         help="timed core matrix: ref cells, fast-core "
                              "twins ('<cell>-fast'), or both (default)")

    p_man = sub.add_parser("manifest", help="summarize a suite run manifest")
    p_man.add_argument("path", nargs="?", default=None,
                       help="manifest JSON (default: the most recent)")
    p_man.add_argument("--cells", action="store_true",
                       help="also list the per-cell records")

    p_wl = sub.add_parser("workload", help="characterize a benchmark")
    p_wl.add_argument("benchmark", choices=known_benchmark_names())
    p_wl.add_argument("--instructions", type=int, default=200_000)
    p_wl.add_argument("--seed", type=int, default=1)

    p_tr = sub.add_parser(
        "trace",
        help="record/replay this simulator's own block-stream dumps "
             "(internal format; for external traces see 'repro ingest')")
    tr_sub = p_tr.add_subparsers(dest="trace_command", required=True)
    t_rec = tr_sub.add_parser("record")
    t_rec.add_argument("benchmark", choices=known_benchmark_names())
    t_rec.add_argument("path", help="output trace file")
    t_rec.add_argument("--blocks", type=int, default=50_000)
    t_rec.add_argument("--seed", type=int, default=1)
    t_rep = tr_sub.add_parser("replay")
    t_rep.add_argument("benchmark", choices=known_benchmark_names())
    t_rep.add_argument("path", help="trace file to replay")
    t_rep.add_argument("--policy", default="baseline",
                       choices=sorted(POLICIES))
    t_rep.add_argument("--instructions", type=int, default=100_000)
    t_rep.add_argument("--warmup", type=int, default=20_000)
    t_rep.add_argument("--seed", type=int, default=1)
    t_run = tr_sub.add_parser(
        "run", help="simulate with the telemetry recorder attached and "
                    "export Chrome-trace + JSONL traces")
    t_run.add_argument("benchmark", choices=known_benchmark_names())
    t_run.add_argument("--policy", default="pdip_44",
                       choices=sorted(POLICIES))
    t_run.add_argument("--instructions", type=int,
                       default=DEFAULT_INSTRUCTIONS)
    t_run.add_argument("--warmup", type=int, default=DEFAULT_WARMUP)
    t_run.add_argument("--seed", type=int, default=1)
    t_run.add_argument("--out", default=None, metavar="PREFIX",
                       help="output prefix for <PREFIX>.trace.json / "
                            ".trace.jsonl / .run.json (default: "
                            "<benchmark>-<policy>-s<seed>)")
    t_run.add_argument("--capacity", type=int, default=None,
                       help="event ring capacity (default: "
                            "REPRO_TELEMETRY_CAPACITY env, else 65536)")
    t_run.add_argument("--sample-every", type=int, default=None,
                       help="keep every Nth event (default: "
                            "REPRO_TELEMETRY_SAMPLE env, else 1)")

    from repro.traces.convert import FORMATS
    from repro.traces.downsample import DEFAULT_BUDGET, DEFAULT_WINDOW

    p_ing = sub.add_parser(
        "ingest",
        help="import an external basic-block trace as a content-addressed "
             "workload (unlike 'repro trace', which handles this "
             "simulator's own dumps)")
    p_ing.add_argument("file", help="trace file (.jsonl/.champsim/.csv, "
                                    "optionally gzipped)")
    p_ing.add_argument("--format", dest="format", default="auto",
                       choices=FORMATS,
                       help="input format (default: sniffed from the "
                            "first line)")
    p_ing.add_argument("--budget", type=int, default=DEFAULT_BUDGET,
                       help="downsample to about this many instructions "
                            "(default %d)" % DEFAULT_BUDGET)
    p_ing.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                       help="downsampler window in events (default %d)"
                            % DEFAULT_WINDOW)
    p_ing.add_argument("--seed", type=int, default=0,
                       help="downsampler fill-selection seed (default 0)")
    p_ing.add_argument("--register", default=None, metavar="NAME",
                       help="also register the trace as benchmark NAME "
                            "(persists in the user trace registry; "
                            "usable in run/suite/sweep/bench/submit)")
    _store_arg(p_ing)

    p_diff = sub.add_parser(
        "diff", help="compare two run dumps, manifests, or traces")
    p_diff.add_argument("a", help="first artifact (JSON or .jsonl)")
    p_diff.add_argument("b", help="second artifact")
    p_diff.add_argument("--format", dest="format", default="text",
                        choices=("text", "json"),
                        help="report format (json for CI)")

    p_lint = sub.add_parser(
        "lint", help="run the AST determinism/architecture rules")
    p_lint.add_argument("paths", nargs="*", default=[],
                        help="files/directories to scan (default: src/repro)")
    p_lint.add_argument("--format", dest="format", default="text",
                        choices=("text", "json", "github"),
                        help="report format (github emits Actions "
                             "::error annotations)")
    p_lint.add_argument("--baseline", default=None,
                        help="baseline JSON (default: <root>/lint_baseline.json "
                             "when present)")
    p_lint.add_argument("--no-baseline", action="store_true",
                        help="report baselined findings too")
    p_lint.add_argument("--write-baseline", default=None, metavar="PATH",
                        help="write current findings as the baseline at PATH "
                             "and exit")
    p_lint.add_argument("--select", default=None,
                        help="comma-separated rule names (default: all)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="list the registered rules and exit")
    p_lint.add_argument("--timings", action="store_true",
                        help="print per-rule wall time after the report")
    p_lint.add_argument("--budget", type=float, default=None,
                        metavar="SECONDS",
                        help="fail (exit 1) if the full lint run takes "
                             "longer than SECONDS")

    p_serve = sub.add_parser(
        "serve", help="run the simulation job server (see repro.service)")
    _endpoint_args(p_serve)
    p_serve.add_argument("--jobs", type=int, default=2,
                         help="simulation worker processes (default 2)")
    p_serve.add_argument("--queue-limit", type=int, default=None,
                         help="max queued jobs before 429 (default 256)")
    p_serve.add_argument("--timeout", type=float, default=None,
                         help="per-attempt job timeout in seconds "
                              "(default: none)")
    p_serve.add_argument("--retries", type=int, default=None,
                         help="retry budget per job beyond try #1 "
                              "(default 2)")
    p_serve.add_argument("--backoff", type=float, default=None,
                         help="base retry backoff seconds, doubled per "
                              "attempt (default 0.25)")
    p_serve.add_argument("--store", default=None, metavar="DIR",
                         help="result store root (default: REPRO_STORE "
                              "env, else <cache dir>/store)")
    p_serve.add_argument("--no-store", action="store_true",
                         help="run without durable persistence")
    p_serve.add_argument("--coordinator", action="store_true",
                         help="cluster mode: dispatch to registered "
                              "'repro worker' processes instead of a "
                              "local pool (see repro.service.cluster)")
    p_serve.add_argument("--heartbeat-interval", type=float, default=None,
                         help="coordinator mode: seconds between worker "
                              "heartbeats (default 1.0)")
    p_serve.add_argument("--heartbeat-timeout", type=float, default=None,
                         help="coordinator mode: heartbeat silence after "
                              "which a worker is declared dead and its "
                              "jobs retried elsewhere (default 5.0)")
    p_serve.add_argument("--allow-faults", action="store_true",
                         help="accept fault-injection jobs (failure-mode "
                              "tests and CI only)")

    p_submit = sub.add_parser(
        "submit", help="submit one cell to a running job server")
    p_submit.add_argument("benchmark", choices=known_benchmark_names())
    p_submit.add_argument("policy", choices=sorted(POLICIES))
    p_submit.add_argument("--instructions", type=int,
                          default=DEFAULT_INSTRUCTIONS)
    p_submit.add_argument("--warmup", type=int, default=DEFAULT_WARMUP)
    p_submit.add_argument("--seed", type=int, default=1)
    p_submit.add_argument("--priority", type=int, default=0,
                          help="higher runs earlier (default 0)")
    _endpoint_args(p_submit)
    p_submit.add_argument("--wait", action="store_true",
                          help="block until the job is terminal and print "
                               "its stats")
    p_submit.add_argument("--wait-timeout", type=float, default=None,
                          help="give up waiting after this many seconds")

    p_worker = sub.add_parser(
        "worker", help="join a coordinator as a cluster worker")
    p_worker.add_argument("--coordinator-host", default="127.0.0.1",
                          help="coordinator address (default 127.0.0.1)")
    p_worker.add_argument("--coordinator-port", type=int, default=None,
                          help="coordinator port (default 8642)")
    p_worker.add_argument("--host", default="127.0.0.1",
                          help="address this worker listens on "
                               "(default 127.0.0.1)")
    p_worker.add_argument("--port", type=int, default=0,
                          help="worker listen port (default: ephemeral)")
    p_worker.add_argument("--slots", type=int, default=1,
                          help="concurrent simulation slots (default 1)")
    p_worker.add_argument("--name", default=None,
                          help="stable worker name on the shard ring "
                               "(default: random)")
    p_worker.add_argument("--store", default=None, metavar="DIR",
                          help="this worker's store shard (default: "
                               "<cache>/shards/<name>)")
    p_worker.add_argument("--no-store", action="store_true",
                          help="run without a store shard (results are "
                               "never persisted on this worker)")

    p_jobs = sub.add_parser(
        "jobs", help="list or manage jobs on a running server")
    p_jobs.add_argument("job", nargs="?", default=None,
                        help="job id to show in detail (default: list all)")
    p_jobs.add_argument("--cancel", metavar="ID", default=None,
                        help="cancel a queued or running job")
    p_jobs.add_argument("--drain", action="store_true",
                        help="ask the server to drain and exit")
    p_jobs.add_argument("--workers", action="store_true",
                        help="list the registered cluster workers "
                             "(coordinator mode)")
    p_jobs.add_argument("--watch", type=float, default=None,
                        metavar="SECONDS",
                        help="poll and redraw every SECONDS until Ctrl-C")
    _endpoint_args(p_jobs)

    p_sweep = sub.add_parser(
        "sweep", help="compile/run/inspect a declarative sweep spec "
                      "(see repro.sweeps)")
    sweep_sub = p_sweep.add_subparsers(dest="sweep_command", required=True)
    for verb, blurb in (("plan", "compile a spec and print its plan"),
                        ("run", "execute the dirty cells of a plan"),
                        ("status", "resolve a plan without executing")):
        p_verb = sweep_sub.add_parser(verb, help=blurb)
        p_verb.add_argument("spec", help="sweep spec file (.toml or .json)")
        _store_arg(p_verb)
        p_verb.add_argument("--state", default=None, metavar="PATH",
                            help="resumable state file (default: keyed by "
                                 "plan digest under the result cache; "
                                 "'' disables)")
        p_verb.add_argument("--format", dest="format", default="text",
                            choices=("text", "json"))
        if verb == "plan":
            p_verb.add_argument("--cells", action="store_true",
                                help="list every compiled cell")
        if verb == "run":
            _jobs_arg(p_verb)
            p_verb.add_argument("--endpoint", default=None,
                                metavar="HOST:PORT",
                                help="submit dirty cells to a running "
                                     "'repro serve' instead of a local pool")
            p_verb.add_argument("--max-in-flight", type=int, default=None,
                                help="bound on outstanding service "
                                     "submissions (default 16)")
            p_verb.add_argument("--retries", type=int, default=None,
                                help="local-pool retry budget per cell "
                                     "(default 2)")
            p_verb.add_argument("--report", default=None, metavar="PATH",
                                help="write the JSON sweep report here")
            p_verb.add_argument("--no-stats", action="store_true",
                                help="omit per-cell stats from the report")
            p_verb.add_argument("--quiet", action="store_true",
                                help="suppress per-cell progress lines")

    p_dash = sub.add_parser(
        "dash", help="show/open the live dashboard of a running server")
    _endpoint_args(p_dash)
    p_dash.add_argument("--open", action="store_true",
                        help="open the dashboard in a web browser")

    sub.add_parser("list", help="show benchmarks, policies, figures")
    return parser


def _budget_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--instructions", type=int,
                        default=DEFAULT_INSTRUCTIONS)
    parser.add_argument("--warmup", type=int, default=DEFAULT_WARMUP)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="simulation core: 'ref' (per-object reference) "
                             "or 'fast' (flat-array; bit-identical stats). "
                             "Default: REPRO_BACKEND env, else 'ref'")


def _backend_config(args: argparse.Namespace):
    """MachineConfig pinning ``--backend``, or None when unspecified."""
    backend = getattr(args, "backend", None)
    if not backend:
        return None
    from repro.simulator.config import MachineConfig

    return MachineConfig(backend=backend)


def _jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the simulation grid "
                             "(default: REPRO_JOBS env, else serial)")


def _store_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="durable result store to read/write "
                             "(default: REPRO_STORE env, else none)")


def _endpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1",
                        help="server address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=None,
                        help="server port (default 8642)")


def _resolve_store(path: Optional[str]):
    """ResultStore for an explicit --store path or the REPRO_STORE env."""
    from repro.service.store import ResultStore, store_from_env

    if path:
        return ResultStore(path)
    return store_from_env()


def _run_dump(args: argparse.Namespace, stats, session=None,
              trace=None) -> dict:
    """JSON run dump: the artifact ``repro diff`` compares."""
    dump: dict = {
        "schema": 1,
        "benchmark": args.benchmark,
        "policy": args.policy,
        "seed": args.seed,
        "instructions": args.instructions,
        "warmup": args.warmup,
        "stats": dict(stats.counters()),
    }
    if session is not None:
        dump["telemetry"] = session.summary()
    if trace is not None:
        dump["trace"] = trace
    return dump


def cmd_run(args: argparse.Namespace) -> int:
    """``repro run``: one benchmark x policy."""
    session = None
    if args.telemetry:
        from repro.telemetry import TelemetrySession

        session = TelemetrySession.from_env()
    stats = run_benchmark(args.benchmark, args.policy,
                          instructions=args.instructions,
                          warmup=args.warmup, seed=args.seed,
                          config=_backend_config(args),
                          use_cache=not args.no_cache,
                          telemetry=session,
                          store=_resolve_store(args.store))
    if args.stats_out:
        import json
        from pathlib import Path

        out = Path(args.stats_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        with open(out, "w") as fh:
            # no sort_keys: the stats dict's declaration order (pipeline
            # order) is what makes diff's "first diverging counter" useful
            json.dump(_run_dump(args, stats, session=session), fh,
                      indent=1)
            fh.write("\n")
        print(f"run dump: {out}")
    td = stats.topdown
    print(f"{args.benchmark} / {args.policy}")
    print(f"  IPC        {stats.ipc:.3f}")
    print(f"  MPKI       L1I {stats.l1i_mpki:.1f}  L2I {stats.l2i_mpki:.1f}"
          f"  L2D {stats.l2d_mpki:.1f}  L3 {stats.l3_mpki:.2f}")
    print(f"  top-down   ret {td['retiring']:.0%}  fe {td['frontend_bound']:.0%}"
          f"  bad-spec {td['bad_speculation']:.0%}"
          f"  be {td['backend_bound']:.0%}")
    if stats.prefetches_issued:
        print(f"  prefetch   PPKI {stats.ppki:.1f}  "
              f"accuracy {stats.prefetch_accuracy:.0%}  "
              f"late {stats.prefetch_late_fraction:.0%}")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    """``repro suite``: a benchmark x policy grid."""
    benches = (list(BENCHMARK_NAMES) if args.benchmarks == "all"
               else [b.strip() for b in args.benchmarks.split(",")])
    policies = [p.strip() for p in args.policies.split(",")]
    from repro.simulator import manifest as manifest_mod

    results = run_suite_parallel(policies, benchmarks=benches,
                                 instructions=args.instructions,
                                 warmup=args.warmup, seed=args.seed,
                                 config=_backend_config(args),
                                 jobs=args.jobs, verbose=True,
                                 store=_resolve_store(args.store))
    latest = manifest_mod.latest()
    if latest is not None:
        print(f"\nmanifest: {latest}")
    if "baseline" in policies:
        print()
        for policy in policies:
            if policy == "baseline":
                continue
            ratios = [by[policy].ipc / by["baseline"].ipc
                      for by in results.values()]
            print(f"geomean speedup {policy}: "
                  f"{(geomean(ratios) - 1) * 100:+.2f}%")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    """``repro figure``: regenerate paper artifacts."""
    import os

    if args.jobs is not None:
        # the figure drivers read REPRO_JOBS through experiments.common
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.store is not None:
        # likewise, drivers resolve the store via the REPRO_STORE env
        os.environ["REPRO_STORE"] = args.store
    names = sorted(FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        module = importlib.import_module(FIGURES[name])
        print(module.render(module.run()))
        print()
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench``: time the simulation core (see :mod:`repro.bench`)."""
    from repro import bench

    if args.out is None:
        args.out = bench.DEFAULT_OUT
    if args.baseline is None:
        args.baseline = bench.DEFAULT_BASELINE
    if args.tolerance is None:
        args.tolerance = bench.DEFAULT_TOLERANCE
    return bench.main(args)


def cmd_manifest(args: argparse.Namespace) -> int:
    """``repro manifest``: summarize a suite run's JSON manifest."""
    from pathlib import Path

    from repro.simulator import manifest as manifest_mod

    path = Path(args.path) if args.path else manifest_mod.latest()
    if path is None:
        print("no manifests found under", manifest_mod.manifest_dir())
        return 1
    try:
        data = manifest_mod.load(path)
    except (OSError, ValueError) as exc:
        print(f"cannot read manifest {path}: {exc}")
        return 1
    print(f"[{path}]")
    print(manifest_mod.render_summary(data))
    if args.cells:
        print()
        for cell in data.get("cells", []):
            src = "hit " if cell["cache_hit"] else cell["worker"]
            print(f"  {cell['benchmark']:16s} {cell['policy']:18s} "
                  f"seed={cell['seed']} {src:10s} "
                  f"{cell['wall_time']:7.2f}s x{cell['attempts']} "
                  f"{cell['status']}")
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    """``repro workload``: characterize a benchmark."""
    from repro.workloads.analysis import characterize, render

    profile = get_profile(args.benchmark)
    print(render(characterize(profile, instructions=args.instructions,
                              seed=args.seed)))
    return 0


def _cmd_trace_run(args: argparse.Namespace) -> int:
    """``repro trace run``: simulate with telemetry, export both formats."""
    import json
    import os

    from repro.telemetry import TelemetrySession, export_recorder
    from repro.telemetry.recorder import DEFAULT_CAPACITY

    capacity = (args.capacity if args.capacity is not None
                else int(os.environ.get("REPRO_TELEMETRY_CAPACITY",
                                        str(DEFAULT_CAPACITY))))
    sample = (args.sample_every if args.sample_every is not None
              else int(os.environ.get("REPRO_TELEMETRY_SAMPLE", "1")))
    session = TelemetrySession(capacity=capacity, sample_every=sample)
    stats = run_benchmark(args.benchmark, args.policy,
                          instructions=args.instructions,
                          warmup=args.warmup, seed=args.seed,
                          telemetry=session)
    prefix = args.out or "%s-%s-s%d" % (args.benchmark, args.policy,
                                        args.seed)
    meta = {"benchmark": args.benchmark, "policy": args.policy,
            "seed": args.seed, "instructions": args.instructions,
            "warmup": args.warmup}
    paths = export_recorder(session.recorder, prefix, meta=meta)
    run_path = str(prefix) + ".run.json"
    with open(run_path, "w") as fh:
        # no sort_keys: preserve the stats dict's pipeline-order keys
        # (diff names the *first* diverging counter in this order)
        json.dump(_run_dump(args, stats, session=session, trace=paths),
                  fh, indent=1)
        fh.write("\n")
    summary = session.recorder.summary()
    print(f"{args.benchmark} / {args.policy} seed={args.seed}: "
          f"{stats.summary()}")
    print(f"  events     {summary['events_offered']} offered, "
          f"{summary['events_retained']} retained "
          f"(ring dropped {summary['events_dropped_ring']}, "
          f"sampled out {summary['events_sampled_out']})")
    print(f"  chrome     {paths['chrome']}   (load in ui.perfetto.dev)")
    print(f"  jsonl      {paths['jsonl']}")
    print(f"  run dump   {run_path}   (compare with 'repro diff')")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: record/replay traces or run with telemetry."""
    from repro.simulator.runner import get_layout
    from repro.workloads.profiles import external_benchmark
    from repro.workloads.trace import TraceReplayer, record
    from repro.workloads.walker import PathWalker

    if args.trace_command == "run":
        return _cmd_trace_run(args)
    profile = get_profile(args.benchmark)
    layout = get_layout(args.benchmark, seed=args.seed)
    ext = external_benchmark(args.benchmark)
    if args.trace_command == "record":
        if ext is not None:
            walker = ext.walker_factory(layout, args.seed)
        else:
            walker = PathWalker(layout, seed=args.seed,
                                indirect_noise=profile.indirect_noise)
        with open(args.path, "w") as fh:
            instructions = record(walker, args.blocks, fh,
                                  workload=args.benchmark, seed=args.seed)
        print(f"recorded {args.blocks} blocks ({instructions:,} "
              f"instructions) to {args.path}")
        return 0
    # replay
    from repro.simulator.policies import build_machine

    with open(args.path) as fh:
        replayer = TraceReplayer(layout, fh, loop=True)
    machine = build_machine(layout, profile, get_policy(args.policy),
                            seed=args.seed)
    machine.walker = replayer
    stats = machine.run(args.instructions, warmup=args.warmup)
    print(f"replayed {args.path}: {stats.summary()}")
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    """``repro ingest``: external trace -> content-addressed workload."""
    from repro.traces.ingest import ingest_path
    from repro.traces.schema import TraceIngestError

    store = _resolve_store(args.store)
    try:
        report = ingest_path(args.file, fmt=args.format, store=store,
                             name=args.register or "",
                             budget=args.budget, window=args.window,
                             seed=args.seed)
    except (TraceIngestError, OSError) as exc:
        print(f"ingest failed: {exc}")
        return 1
    source = ("ingested" if report.created else
              "store hit (same bytes + parameters already ingested)")
    print(f"{args.file}: {source}")
    print(f"  format       {report.format}")
    print(f"  digest       {report.digest}")
    print(f"  events       {report.events:,}")
    print(f"  instructions {report.instructions:,}")
    ds = report.downsample
    if ds is not None and ds.sampled:
        print(f"  downsample   kept {ds.events_kept:,}/{ds.events_in:,} "
              f"events across {ds.windows_kept}/{ds.windows_total} windows "
              f"({ds.phase_windows} phase heads; budget {ds.budget:,}, "
              f"seed {ds.seed})")
    if store is None:
        print("  (no --store/REPRO_STORE: blob not persisted; runs will "
              "re-ingest from the source file)")
    if args.register:
        try:
            from repro.traces.registry import register_ingested

            reg = register_ingested(args.register, report,
                                    budget=args.budget, window=args.window,
                                    seed=args.seed)
        except TraceIngestError as exc:
            print(f"register failed: {exc}")
            return 1
        print(f"  registered   '{args.register}' in {reg} "
              f"(usable in run/suite/sweep/bench)")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    """``repro diff``: compare two run artifacts (see repro.telemetry.diff)."""
    import json

    from repro.telemetry import diff_paths

    report = diff_paths(args.a, args.b)
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        print(report.render())
    return report.exit_code


def cmd_lint(args: argparse.Namespace) -> int:
    """``repro lint``: AST determinism/architecture rules."""
    from repro.analysis.cli import run_lint

    select = ([s.strip() for s in args.select.split(",") if s.strip()]
              if args.select else None)
    return run_lint(args.paths, fmt=args.format, baseline=args.baseline,
                    no_baseline=args.no_baseline,
                    write_baseline_path=args.write_baseline,
                    select=select, list_rules=args.list_rules,
                    timings=args.timings, budget=args.budget)


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the simulation job server until drained."""
    import os

    from repro.service import server as service_server
    from repro.simulator import cache as result_cache

    if args.coordinator:
        from repro.service import cluster

        return cluster.serve_coordinator(
            host=args.host,
            port=(args.port if args.port is not None
                  else service_server.DEFAULT_PORT),
            queue_limit=(args.queue_limit if args.queue_limit is not None
                         else service_server.DEFAULT_QUEUE_LIMIT),
            timeout=args.timeout,
            retries=(args.retries if args.retries is not None
                     else service_server.DEFAULT_RETRIES),
            backoff=(args.backoff if args.backoff is not None
                     else service_server.DEFAULT_BACKOFF_S),
            allow_faults=args.allow_faults,
            heartbeat_interval=(args.heartbeat_interval
                                if args.heartbeat_interval is not None
                                else cluster.DEFAULT_HEARTBEAT_INTERVAL),
            heartbeat_timeout=(args.heartbeat_timeout
                               if args.heartbeat_timeout is not None
                               else cluster.DEFAULT_HEARTBEAT_TIMEOUT))

    store_root = None
    if not args.no_store:
        store_root = (args.store
                      or os.environ.get("REPRO_STORE", "").strip()
                      or str(result_cache.cache_dir() / "store"))
    return service_server.serve(
        host=args.host,
        port=(args.port if args.port is not None
              else service_server.DEFAULT_PORT),
        store_root=store_root,
        jobs=args.jobs,
        queue_limit=(args.queue_limit if args.queue_limit is not None
                     else service_server.DEFAULT_QUEUE_LIMIT),
        timeout=args.timeout,
        retries=(args.retries if args.retries is not None
                 else service_server.DEFAULT_RETRIES),
        backoff=(args.backoff if args.backoff is not None
                 else service_server.DEFAULT_BACKOFF_S),
        allow_faults=args.allow_faults)


def cmd_worker(args: argparse.Namespace) -> int:
    """``repro worker``: join a coordinator as a cluster worker."""
    from repro.service import cluster
    from repro.service.server import DEFAULT_PORT
    from repro.simulator import cache as result_cache

    name = args.name
    store_root = None
    if not args.no_store:
        if args.store:
            store_root = args.store
        else:
            import uuid

            name = name or ("w-" + uuid.uuid4().hex[:8])
            store_root = str(result_cache.cache_dir() / "shards" / name)
    return cluster.run_worker(
        coordinator_host=args.coordinator_host,
        coordinator_port=(args.coordinator_port
                          if args.coordinator_port is not None
                          else DEFAULT_PORT),
        host=args.host, port=args.port, slots=args.slots,
        store_root=store_root, name=name)


def _client(args: argparse.Namespace):
    from repro.service.client import ServiceClient
    from repro.service.server import DEFAULT_PORT

    return ServiceClient(host=args.host,
                         port=args.port if args.port is not None
                         else DEFAULT_PORT)


def _job_line(job: dict) -> str:
    line = (f"  {job['id']}  {job.get('benchmark', '?'):16s} "
            f"{job.get('policy', '?'):18s} seed={job.get('seed', '?')} "
            f"prio={job.get('priority', 0)} {job['state']:9s} "
            f"x{job['attempts']}")
    if job.get("source"):
        line += f" [{job['source']}]"
    if job.get("error"):
        line += f"  {job['error']}"
    return line


def _print_job(job: dict) -> None:
    print(_job_line(job))


def cmd_submit(args: argparse.Namespace) -> int:
    """``repro submit``: send one cell to a running server."""
    from repro.service.client import ServiceError

    client = _client(args)
    try:
        job = client.submit(args.benchmark, args.policy,
                            instructions=args.instructions,
                            warmup=args.warmup, seed=args.seed,
                            priority=args.priority)
        print(f"job {job['id']} {job['state']} (key {job['key'][:12]})")
        if not args.wait:
            return 0
        job = client.wait(job["id"], timeout=args.wait_timeout)
        _print_job(job)
        if job["state"] != "done":
            return 1
        result = client.result(job["id"])
        stats = result["stats"]
        ipc = (stats["instructions"] / stats["cycles"]
               if stats.get("cycles") else 0.0)
        print(f"  IPC {ipc:.3f}  ({result['source']})")
        return 0
    except (ServiceError, ConnectionError, OSError, TimeoutError) as exc:
        print(f"submit failed: {exc}")
        return 1


def _jobs_screen(health: dict, jobs: list) -> str:
    """One full ``repro jobs`` listing as a string (for --watch redraw)."""
    lines = [f"server {health['state']}: {health['queued']} queued, "
             f"{health['running']} running, {health['jobs']} total"]
    lines.extend(_job_line(job) for job in jobs)
    return "\n".join(lines)


def _watch_jobs(client, interval: float) -> int:
    """``repro jobs --watch``: clear + redraw until Ctrl-C (exit 0)."""
    import time as _time

    from repro.service.client import ServiceError

    interval = max(float(interval), 0.05)
    try:
        while True:
            try:
                screen = _jobs_screen(client.health(), client.jobs())
            except (ServiceError, ConnectionError, OSError) as exc:
                screen = f"server unreachable: {exc}"
            # ANSI clear-screen + home, then the fresh listing
            sys.stdout.write("\x1b[2J\x1b[H" + screen +
                             f"\n\n(every {interval:g}s; Ctrl-C to exit)\n")
            sys.stdout.flush()
            _time.sleep(interval)
    except KeyboardInterrupt:
        print()
        return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    """``repro jobs``: list/inspect/cancel jobs, or drain the server."""
    import json

    from repro.service.client import ServiceError

    client = _client(args)
    if args.watch is not None:
        return _watch_jobs(client, args.watch)
    try:
        if args.workers:
            for worker in client.workers():
                print(f"  {worker['id']:16s} {worker['state']:6s} "
                      f"{worker['host']}:{worker['port']} "
                      f"slots={worker['slots']} "
                      f"executed={worker['executed']} "
                      f"stolen={worker['stolen']} "
                      f"in_flight={len(worker['in_flight'])}")
            return 0
        if args.drain:
            client.drain()
            print("drain requested")
            return 0
        if args.cancel:
            job = client.cancel(args.cancel)
            _print_job(job)
            return 0
        if args.job:
            job = client.status(args.job)
            print(json.dumps(job, indent=1, sort_keys=True))
            return 0
        print(_jobs_screen(client.health(), client.jobs()))
        return 0
    except (ServiceError, ConnectionError, OSError) as exc:
        print(f"jobs failed: {exc}")
        return 1


def _parse_endpoint(text: str):
    """``HOST:PORT`` / ``:PORT`` / ``HOST`` → (host, port)."""
    from repro.service.server import DEFAULT_PORT

    host, sep, port = text.rpartition(":")
    if not sep:
        return text or "127.0.0.1", DEFAULT_PORT
    return host or "127.0.0.1", int(port)


def cmd_sweep(args: argparse.Namespace) -> int:
    """``repro sweep plan|run|status``: the declarative sweep engine."""
    import json

    from repro.simulator import cache as result_cache
    from repro.sweeps import (
        DEFAULT_MAX_IN_FLIGHT,
        SweepSpecError,
        compile_spec,
        load_spec,
        load_state,
        run_sweep,
        sweep_state_path,
    )

    try:
        plan = compile_spec(load_spec(args.spec))
    except SweepSpecError as exc:
        print(f"sweep spec error: {exc}")
        return 2
    store = _resolve_store(args.store)
    state_file = sweep_state_path(plan) if args.state is None else args.state

    if args.sweep_command == "plan":
        if args.format == "json":
            doc = dict(plan.summary(),
                       cells=[dict(c.payload(), key=c.key)
                              for c in plan.cells])
            print(json.dumps(doc, indent=2, sort_keys=True))
            return 0
        summary = plan.summary()
        print(f"sweep {summary['name']}: {summary['cells']} cells "
              f"(plan {summary['plan_digest'][:12]})")
        print(f"  benchmarks: {', '.join(summary['benchmarks'])}")
        print(f"  policies:   {', '.join(summary['policies'])}")
        print(f"  configs:    {', '.join(summary['configs'])}")
        if args.cells:
            for cell in plan.cells:
                print(f"  {cell.describe():44s} {cell.key[:12]}")
        return 0

    if args.sweep_command == "status":
        state = load_state(state_file, plan) if state_file else {
            "done": {}, "failed": {}}
        counts = {"store": 0, "cache": 0, "failed": 0, "pending": 0}
        rows = []
        for cell in plan.cells:
            if store is not None and cell.key in store:
                source = "store"
            elif result_cache.load(cell.key) is not None:
                source = "cache"
            elif cell.key in state["failed"]:
                source = "failed"
            else:
                source = "pending"
            counts[source] += 1
            rows.append(dict(cell.payload(), key=cell.key, source=source))
        if args.format == "json":
            print(json.dumps({"name": plan.name, "plan_digest": plan.digest,
                              "counts": counts, "cells": rows},
                             indent=2, sort_keys=True))
        else:
            warm = counts["store"] + counts["cache"]
            print(f"sweep {plan.name}: {len(plan.cells)} cells, {warm} warm "
                  f"({counts['store']} store / {counts['cache']} cache), "
                  f"{counts['pending']} pending, {counts['failed']} failed")
        return 0 if not counts["failed"] else 1

    # sweep run
    client = None
    if args.endpoint:
        from repro.service.client import ServiceClient

        host, port = _parse_endpoint(args.endpoint)
        client = ServiceClient(host=host, port=port)
    report = run_sweep(
        plan, store=store, client=client, jobs=args.jobs,
        retries=args.retries if args.retries is not None else 2,
        max_in_flight=(args.max_in_flight if args.max_in_flight is not None
                       else DEFAULT_MAX_IN_FLIGHT),
        state_path=args.state, report_path=args.report,
        include_stats=not args.no_stats, verbose=not args.quiet)
    counts = report.counts
    if args.format == "json":
        print(json.dumps(dict(counts, name=plan.name,
                              plan_digest=plan.digest),
                         indent=2, sort_keys=True))
    else:
        print(f"sweep {plan.name}: {counts['total']} cells — "
              f"{counts['store']} store, {counts['cache']} cache, "
              f"{counts['executed']} executed, {counts['failed']} failed")
        if args.report:
            print(f"report: {args.report}")
    for key, error in list(report.failed.items())[:5]:
        print(f"  failed {key[:12]}: {error}")
    return 0 if not counts["failed"] else 1


def cmd_dash(args: argparse.Namespace) -> int:
    """``repro dash``: summarize (and optionally open) the dashboard."""
    from repro.service.client import ServiceError

    client = _client(args)
    url = f"http://{client.host}:{client.port}/dash"
    try:
        state = client.dash_state()
    except (ServiceError, ConnectionError, OSError) as exc:
        print(f"dash failed: {exc}")
        return 1
    server = state.get("server") or {}
    jobs = state.get("jobs") or {}
    print(f"{server.get('mode', 'server')} {server.get('state', '?')}: "
          f"{jobs.get('queued', 0)} queued, {jobs.get('running', 0)} "
          f"running, {jobs.get('total', 0)} jobs")
    workers = state.get("workers")
    if workers is not None:
        alive = sum(1 for w in workers if w.get("state") == "alive")
        print(f"workers: {alive}/{len(workers)} alive")
    for sweep in state.get("sweeps") or []:
        counts = sweep.get("counts") or {}
        done = (counts.get("store", 0) + counts.get("cache", 0)
                + counts.get("executed", 0))
        print(f"sweep {sweep['name']} [{sweep['state']}]: "
              f"{done}/{sweep.get('total', 0)} done, "
              f"{counts.get('failed', 0)} failed")
    print(f"dashboard: {url}")
    if args.open:
        import webbrowser

        webbrowser.open(url)
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    """``repro list``: show the catalogs."""
    print("benchmarks:")
    for name in BENCHMARK_NAMES:
        print(f"  {name:16s} {get_profile(name).description}")
    externals = external_benchmark_names()
    if externals:
        print("\ntrace benchmarks (ingested; see 'repro ingest'):")
        for name in externals:
            profile = get_profile(name)
            digest = getattr(profile, "trace_digest", "")[:12]
            print(f"  {name:16s} [{digest}] {profile.description}")
    print("\npolicies:")
    for name in sorted(POLICIES):
        print(f"  {name:18s} {POLICIES[name].description}")
    print("\nfigures:", " ".join(sorted(FIGURES)))
    return 0


COMMANDS = {
    "run": cmd_run,
    "suite": cmd_suite,
    "figure": cmd_figure,
    "bench": cmd_bench,
    "manifest": cmd_manifest,
    "workload": cmd_workload,
    "trace": cmd_trace,
    "ingest": cmd_ingest,
    "diff": cmd_diff,
    "lint": cmd_lint,
    "serve": cmd_serve,
    "worker": cmd_worker,
    "submit": cmd_submit,
    "jobs": cmd_jobs,
    "sweep": cmd_sweep,
    "dash": cmd_dash,
    "list": cmd_list,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: run with env-controlled budgets and print."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

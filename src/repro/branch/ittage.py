"""ITTAGE indirect target predictor (Seznec, CBP-2 2011).

Same tagged-geometric structure as TAGE, but entries hold full target
addresses and a confidence counter. The base predictor is a direct-mapped
last-target table. Provider selection mirrors TAGE: longest matching
history wins; low-confidence providers fall back to the alternate.
"""

from __future__ import annotations

from typing import List, Optional

from repro.branch.tage import FoldedHistory
from repro.utils import derive_rng


class _ITEntry:
    __slots__ = ("tag", "target", "conf", "useful")

    def __init__(self) -> None:
        self.tag = 0
        self.target = 0
        self.conf = 0     # 2-bit confidence
        self.useful = 0   # 1-bit usefulness


class ITTAGEPredictor:
    """Indirect target predictor with tagged geometric history tables."""

    def __init__(self, num_tables: int = 6, log_entries: int = 10,
                 min_history: int = 4, max_history: int = 120,
                 tag_bits: int = 11, log_base_entries: int = 11,
                 target_bits: int = 34, seed: int = 0):
        self.num_tables = num_tables
        self.log_entries = log_entries
        self.tag_bits = tag_bits
        self.log_base_entries = log_base_entries
        self.target_bits = target_bits
        self._rng = derive_rng(seed, "ittage")

        self.hist_lens: List[int] = []
        for i in range(num_tables):
            if num_tables == 1:
                h = min_history
            else:
                ratio = (max_history / min_history) ** (1.0 / (num_tables - 1))
                h = int(round(min_history * (ratio ** i)))
            self.hist_lens.append(max(1, h))

        self._base: List[Optional[int]] = [None] * (1 << log_base_entries)
        self._tables: List[List[Optional[_ITEntry]]] = [
            [None] * (1 << log_entries) for _ in range(num_tables)
        ]
        self._ghist = [0] * (max(self.hist_lens) + 1)
        # folded histories as flat mutable rows [value, hist_len, out_pos,
        # compressed_bits, mask] — same layout (and rationale) as
        # TAGEPredictor: row[0] is the live folded value

        def _fold_row(h: int, bits: int) -> List[int]:
            return [0, h, h % bits, bits, (1 << bits) - 1]

        self._idx_rows = [_fold_row(h, log_entries) for h in self.hist_lens]
        self._tag1_rows = [_fold_row(h, tag_bits) for h in self.hist_lens]
        self._tag2_rows = [_fold_row(h, tag_bits - 1) for h in self.hist_lens]
        self._fold_rows = [
            rows[t]
            for t in range(num_tables)
            for rows in (self._idx_rows, self._tag1_rows, self._tag2_rows)
        ]
        max_h = max(self.hist_lens)
        self._ghist_cap = 4 * max_h
        self._ghist_keep = max_h + 1

        self.predictions = 0
        self.mispredicts = 0

        self._provider: Optional[int] = None
        self._provider_idx = 0
        self._base_idx = 0

    def _index(self, pc: int, table: int) -> int:
        mask = (1 << self.log_entries) - 1
        return (pc ^ (pc >> self.log_entries)
                ^ self._idx_rows[table][0]) & mask

    def _tag(self, pc: int, table: int) -> int:
        mask = (1 << self.tag_bits) - 1
        return (pc ^ self._tag1_rows[table][0]
                ^ (self._tag2_rows[table][0] << 1)) & mask

    # -- prediction -----------------------------------------------------------
    def predict(self, pc: int) -> Optional[int]:
        """Predicted target address for the indirect branch at ``pc``.

        Returns None when neither the tagged tables nor the last-target
        base have any information.
        """
        self.predictions += 1
        self._base_idx = (pc >> 2) & ((1 << self.log_base_entries) - 1)
        prediction = self._base[self._base_idx]
        self._provider = None
        # hoisted copies of _index/_tag (this loop runs per indirect)
        log_entries = self.log_entries
        idx_mask = (1 << log_entries) - 1
        tag_mask = (1 << self.tag_bits) - 1
        pc_idx = pc ^ (pc >> log_entries)
        tables = self._tables
        idx_rows = self._idx_rows
        tag1_rows = self._tag1_rows
        tag2_rows = self._tag2_rows
        for t in range(self.num_tables - 1, -1, -1):
            idx = (pc_idx ^ idx_rows[t][0]) & idx_mask
            entry = tables[t][idx]
            if entry is not None and entry.tag == (
                    pc ^ tag1_rows[t][0]
                    ^ (tag2_rows[t][0] << 1)) & tag_mask:
                self._provider = t
                self._provider_idx = idx
                if entry.conf > 0 or prediction is None:
                    prediction = entry.target
                break
        return prediction

    # -- update ---------------------------------------------------------------
    def update(self, pc: int, target: int, predicted: Optional[int]) -> None:
        """Train on the resolved target; must follow the matching predict()."""
        correct = predicted == target
        if not correct:
            self.mispredicts += 1
        provider = self._provider
        if provider is not None:
            entry = self._tables[provider][self._provider_idx]
            if entry is not None:
                if entry.target == target:
                    entry.conf = min(entry.conf + 1, 3)
                    entry.useful = 1
                else:
                    if entry.conf > 0:
                        entry.conf -= 1
                    else:
                        entry.target = target
                        entry.useful = 0
        self._base[self._base_idx] = target

        if not correct:
            start = (provider + 1) if provider is not None else 0
            for t in range(start, self.num_tables):
                idx = self._index(pc, t)
                entry = self._tables[t][idx]
                if entry is None or entry.useful == 0:
                    if entry is None:
                        entry = _ITEntry()
                        self._tables[t][idx] = entry
                    entry.tag = self._tag(pc, t)
                    entry.target = target
                    entry.conf = 1
                    entry.useful = 0
                    break

        self._shift_history(target)

    def _shift_history(self, target: int) -> None:
        # Indirect history injects four hashed target bits per resolution.
        # Low and high target bits are mixed so that targets differing
        # only in high bits (different functions) or only in low bits
        # (blocks within a function) still produce distinct history.
        ghist = self._ghist
        fold_rows = self._fold_rows
        for bit_pos in (2, 3, 4, 5):
            bit = ((target >> bit_pos) ^ (target >> (bit_pos + 10))) & 1
            ghist.append(bit)
            gend = len(ghist) - 1
            for row in fold_rows:
                value, h, out_pos, bits, mask = row
                value = ((value << 1) | bit) ^ (ghist[gend - h] << out_pos)
                value ^= value >> bits
                row[0] = value & mask
        if len(ghist) > self._ghist_cap:
            del ghist[: len(ghist) - self._ghist_keep]

    # -- reporting ----------------------------------------------------------
    @property
    def storage_bits(self) -> int:
        """Storage footprint in bits."""
        per_entry = self.tag_bits + self.target_bits + 2 + 1
        tagged = self.num_tables * (1 << self.log_entries) * per_entry
        base = (1 << self.log_base_entries) * self.target_bits
        return tagged + base

    @property
    def storage_kb(self) -> float:
        """Storage footprint in kilobytes."""
        return self.storage_bits / 8.0 / 1024.0

    def mispredict_rate(self) -> float:
        """Mispredicts / predictions (0 when unused)."""
        return self.mispredicts / self.predictions if self.predictions else 0.0

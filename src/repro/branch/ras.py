"""Return address stack.

A fixed-depth circular stack: pushes beyond capacity overwrite the oldest
entry, so very deep call chains cause (realistic, rare) return
mispredicts. The IAG keeps the RAS synchronized with the correct path;
wrong-path excursions use their own speculative stack copy and never
corrupt this one (a simplification — real hardware checkpoints the RAS
top on every prediction, recovering almost as precisely).
"""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """Circular return-address stack of fixed depth."""

    def __init__(self, depth: int = 64):
        if depth <= 0:
            raise ValueError("RAS depth must be positive")
        self.depth = depth
        self._buf: List[Optional[int]] = [None] * depth
        self._top = 0        # index of next push slot
        self._count = 0      # live entries (<= depth)
        self.pushes = 0
        self.pops = 0
        self.underflows = 0

    def push(self, return_addr: int) -> None:
        """Push a return address."""
        self._buf[self._top] = return_addr
        self._top = (self._top + 1) % self.depth
        self._count = min(self._count + 1, self.depth)
        self.pushes += 1

    def pop(self) -> Optional[int]:
        """Pop and return the predicted return address (None if empty)."""
        self.pops += 1
        if self._count == 0:
            self.underflows += 1
            return None
        self._top = (self._top - 1) % self.depth
        self._count -= 1
        addr = self._buf[self._top]
        self._buf[self._top] = None
        return addr

    def peek(self) -> Optional[int]:
        """Top of stack without popping (None if empty)."""
        if self._count == 0:
            return None
        return self._buf[(self._top - 1) % self.depth]

    def __len__(self) -> int:
        return self._count

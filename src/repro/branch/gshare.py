"""Gshare conditional branch predictor (McFarling, 1993).

A deliberately simpler alternative to TAGE, kept as a BPU-sensitivity
baseline: Section 7.6 of the paper argues that, for large-code-footprint
workloads, the BTB budget — not conditional-predictor sophistication —
bounds front-end performance, and that PDIP's gains survive across BPU
quality levels. Swapping gshare in for TAGE (``BranchPredictionUnit``
accepts any object with ``predict``/``update``) lets the reproduction
test that claim directly.
"""

from __future__ import annotations

from typing import List


class GsharePredictor:
    """Global-history-XOR-PC indexed table of 2-bit counters."""

    def __init__(self, log_entries: int = 14, history_bits: int = 12):
        if log_entries <= 0 or history_bits < 0:
            raise ValueError("bad gshare geometry")
        self.log_entries = log_entries
        self.history_bits = history_bits
        self._table: List[int] = [0] * (1 << log_entries)  # [-2, 1]
        self._history = 0
        self.predictions = 0
        self.mispredicts = 0

    def _index(self, pc: int) -> int:
        mask = (1 << self.log_entries) - 1
        hist = self._history & ((1 << self.history_bits) - 1)
        return ((pc >> 2) ^ hist) & mask

    def predict(self, pc: int) -> bool:
        """Predict the direction of the conditional branch at ``pc``."""
        self.predictions += 1
        return self._table[self._index(pc)] >= 0

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        """Train on the resolved outcome; must follow the matching predict()."""
        if predicted != taken:
            self.mispredicts += 1
        idx = self._index(pc)
        ctr = self._table[idx]
        if taken:
            self._table[idx] = min(ctr + 1, 1)
        else:
            self._table[idx] = max(ctr - 1, -2)
        self._history = ((self._history << 1) | (1 if taken else 0)) \
            & ((1 << self.history_bits) - 1)

    def mispredict_rate(self) -> float:
        """Mispredicts / predictions (0 when unused)."""
        return self.mispredicts / self.predictions if self.predictions else 0.0

    @property
    def storage_bits(self) -> int:
        """Storage footprint in bits (2-bit counters)."""
        return (1 << self.log_entries) * 2

    @property
    def storage_kb(self) -> float:
        """Storage footprint in kilobytes."""
        return self.storage_bits / 8.0 / 1024.0

"""TAGE conditional branch predictor (Seznec & Michaud, JILP 2006).

A bimodal base predictor plus ``num_tables`` partially-tagged tables
indexed with geometrically increasing global-history lengths. Prediction
comes from the longest-history matching table (the *provider*); the next
longest match is the alternate. Allocation on mispredict follows the
standard policy (allocate in one longer-history table with a usefulness
counter of 0), with periodic usefulness aging.

Histories are folded incrementally (:class:`FoldedHistory`) so each
prediction costs O(num_tables), independent of history length.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.utils import derive_rng


class FoldedHistory:
    """Incrementally-folded global history register.

    Maintains ``fold(h[0:length]) -> compressed_bits`` under single-bit
    shifts in O(1): when a new outcome bit enters and the bit that falls
    off the end of the window leaves, the folded register is rotated and
    both bits are XORed in at the right positions.
    """

    __slots__ = ("length", "bits", "value", "mask", "_out_pos")

    def __init__(self, length: int, compressed_bits: int):
        self.length = length
        self.bits = compressed_bits
        self.value = 0
        self.mask = (1 << compressed_bits) - 1
        self._out_pos = length % compressed_bits

    def update(self, new_bit: int, old_bit: int) -> None:
        # classic CBP folded-history update: shift in the new bit, cancel
        # the outgoing bit at its folded position, then wrap the bit that
        # overflowed past ``bits`` back into position 0 (the rotation that
        # makes this a pure function of the last ``length`` bits)
        """Advance the folded register by one history bit."""
        value = (self.value << 1) | new_bit
        value ^= old_bit << self._out_pos
        value ^= value >> self.bits
        self.value = value & self.mask


class _TaggedEntry:
    __slots__ = ("tag", "ctr", "useful")

    def __init__(self) -> None:
        self.tag = 0
        self.ctr = 0      # signed 3-bit counter in [-4, 3]; >= 0 means taken
        self.useful = 0   # 2-bit usefulness


class TAGEPredictor:
    """TAGE with a bimodal base and geometric tagged tables."""

    def __init__(self, num_tables: int = 8, log_entries: int = 10,
                 min_history: int = 4, max_history: int = 160,
                 tag_bits: int = 11, log_base_entries: int = 13,
                 seed: int = 0):
        self.num_tables = num_tables
        self.log_entries = log_entries
        self.tag_bits = tag_bits
        self.log_base_entries = log_base_entries
        self._rng = derive_rng(seed, "tage")

        # geometric history lengths
        self.hist_lens: List[int] = []
        for i in range(num_tables):
            if num_tables == 1:
                h = min_history
            else:
                ratio = (max_history / min_history) ** (1.0 / (num_tables - 1))
                h = int(round(min_history * (ratio ** i)))
            self.hist_lens.append(max(1, h))

        self._base = [0] * (1 << log_base_entries)  # 2-bit counters in [-2,1]
        self._tables: List[List[Optional[_TaggedEntry]]] = [
            [None] * (1 << log_entries) for _ in range(num_tables)
        ]
        # global history as a list-backed shift register (most recent = end)
        self._ghist = [0] * (max(self.hist_lens) + 1)
        # folded histories as flat mutable rows [value, hist_len, out_pos,
        # compressed_bits, mask] (the FoldedHistory recurrence unrolled
        # onto lists): row[0] is the live folded value, read by
        # predict()/_index()/_tag() and advanced by _shift_history —
        # list indexing beats per-fold attribute traffic on this path

        def _fold_row(h: int, bits: int) -> List[int]:
            return [0, h, h % bits, bits, (1 << bits) - 1]

        self._idx_rows = [_fold_row(h, log_entries) for h in self.hist_lens]
        self._tag1_rows = [_fold_row(h, tag_bits) for h in self.hist_lens]
        self._tag2_rows = [_fold_row(h, tag_bits - 1) for h in self.hist_lens]
        self._fold_rows = [
            rows[t]
            for t in range(num_tables)
            for rows in (self._idx_rows, self._tag1_rows, self._tag2_rows)
        ]
        max_h = max(self.hist_lens)
        self._ghist_cap = 4 * max_h
        self._ghist_keep = max_h + 1

        self._tick = 0  # usefulness aging clock
        self.predictions = 0
        self.mispredicts = 0

        # per-prediction scratch (filled by predict, consumed by update)
        self._provider: Optional[int] = None
        self._provider_idx = 0
        self._alt_pred = False
        self._provider_pred = False
        self._base_idx = 0

    # -- indexing -----------------------------------------------------------
    def _index(self, pc: int, table: int) -> int:
        mask = (1 << self.log_entries) - 1
        h = self._idx_rows[table][0]
        return (pc ^ (pc >> self.log_entries) ^ h) & mask

    def _tag(self, pc: int, table: int) -> int:
        mask = (1 << self.tag_bits) - 1
        return (pc ^ self._tag1_rows[table][0]
                ^ (self._tag2_rows[table][0] << 1)) & mask

    # -- prediction -----------------------------------------------------------
    def predict(self, pc: int) -> bool:
        """Predict the direction of the conditional branch at ``pc``."""
        self.predictions += 1
        self._base_idx = (pc >> 2) & ((1 << self.log_base_entries) - 1)
        base_pred = self._base[self._base_idx] >= 0

        # hoisted copies of _index/_tag (this loop runs per conditional)
        log_entries = self.log_entries
        idx_mask = (1 << log_entries) - 1
        tag_mask = (1 << self.tag_bits) - 1
        pc_idx = pc ^ (pc >> log_entries)
        tables = self._tables
        idx_rows = self._idx_rows
        tag1_rows = self._tag1_rows
        tag2_rows = self._tag2_rows

        provider = None
        provider_idx = 0
        alt = base_pred
        provider_pred = base_pred
        for t in range(self.num_tables - 1, -1, -1):
            idx = (pc_idx ^ idx_rows[t][0]) & idx_mask
            entry = tables[t][idx]
            if entry is not None and entry.tag == (
                    pc ^ tag1_rows[t][0]
                    ^ (tag2_rows[t][0] << 1)) & tag_mask:
                if provider is None:
                    provider = t
                    provider_idx = idx
                    provider_pred = entry.ctr >= 0
                else:
                    alt = entry.ctr >= 0
                    break
        self._provider = provider
        self._provider_idx = provider_idx
        self._alt_pred = alt if provider is not None else base_pred
        self._provider_pred = provider_pred
        return provider_pred if provider is not None else base_pred

    # -- update ---------------------------------------------------------------
    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        """Train on the resolved outcome; must follow the matching predict()."""
        if predicted != taken:
            self.mispredicts += 1
        provider = self._provider
        # provider / base counter update (inlined _sat_update)
        if provider is not None:
            entry = self._tables[provider][self._provider_idx]
            if entry is not None:
                ctr = entry.ctr
                if taken:
                    entry.ctr = ctr + 1 if ctr < 3 else 3
                else:
                    entry.ctr = ctr - 1 if ctr > -4 else -4
                if self._provider_pred != self._alt_pred:
                    if self._provider_pred == taken:
                        entry.useful = min(entry.useful + 1, 3)
                    else:
                        entry.useful = max(entry.useful - 1, 0)
        else:
            ctr = self._base[self._base_idx]
            if taken:
                self._base[self._base_idx] = ctr + 1 if ctr < 1 else 1
            else:
                self._base[self._base_idx] = ctr - 1 if ctr > -2 else -2

        # allocation on mispredict in a longer-history table
        if predicted != taken:
            start = (provider + 1) if provider is not None else 0
            candidates = []
            for t in range(start, self.num_tables):
                idx = self._index(pc, t)
                entry = self._tables[t][idx]
                if entry is None or entry.useful == 0:
                    candidates.append(t)
            if candidates:
                # prefer shorter histories with probability bias (classic TAGE)
                t = candidates[0]
                if len(candidates) > 1 and self._rng.random() < 0.33:
                    t = candidates[1]
                idx = self._index(pc, t)
                entry = self._tables[t][idx]
                if entry is None:
                    entry = _TaggedEntry()
                    self._tables[t][idx] = entry
                entry.tag = self._tag(pc, t)
                entry.ctr = 0 if taken else -1
                entry.useful = 0
            else:
                for t in range(start, self.num_tables):
                    idx = self._index(pc, t)
                    entry = self._tables[t][idx]
                    if entry is not None:
                        entry.useful = max(entry.useful - 1, 0)

        # periodic usefulness aging
        self._tick += 1
        if self._tick >= (1 << 18):
            self._tick = 0
            for table in self._tables:
                for entry in table:
                    if entry is not None:
                        entry.useful >>= 1

        self._shift_history(taken)

    def _shift_history(self, taken: bool) -> None:
        bit = 1 if taken else 0
        ghist = self._ghist
        ghist.append(bit)
        gend = len(ghist) - 1
        # inlined FoldedHistory.update per row (hot: 3 folds x num_tables)
        for row in self._fold_rows:
            value, h, out_pos, bits, mask = row
            value = ((value << 1) | bit) ^ (ghist[gend - h] << out_pos)
            value ^= value >> bits
            row[0] = value & mask
        # bound the history buffer
        if gend + 1 > self._ghist_cap:
            del ghist[: gend + 1 - self._ghist_keep]

    # -- reporting ----------------------------------------------------------
    @property
    def storage_bits(self) -> int:
        """Storage footprint in bits."""
        per_entry = 3 + 2 + self.tag_bits  # ctr + useful + tag
        tagged = self.num_tables * (1 << self.log_entries) * per_entry
        base = (1 << self.log_base_entries) * 2
        return tagged + base

    @property
    def storage_kb(self) -> float:
        """Storage footprint in kilobytes."""
        return self.storage_bits / 8.0 / 1024.0

    def mispredict_rate(self) -> float:
        """Mispredicts / predictions (0 when unused)."""
        return self.mispredicts / self.predictions if self.predictions else 0.0


def _sat_update(ctr: int, taken: bool, lo: int, hi: int) -> int:
    """Saturating signed counter update."""
    if taken:
        return min(ctr + 1, hi)
    return max(ctr - 1, lo)

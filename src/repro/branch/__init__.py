"""Branch prediction unit: TAGE, ITTAGE, BTB, and RAS.

The paper's baseline (Table 1) uses a 64 KB TAGE conditional predictor, a
64 KB ITTAGE indirect predictor, and an 8K-entry BTB. In a decoupled
front end the BTB doubles as the *branch discovery* mechanism: a taken
branch that misses the BTB is invisible to the instruction address
generator, which keeps fetching sequentially until pre-decode detects the
bogus path and resteers — one of the two resteer categories PDIP uses as
prefetch triggers.
"""

from repro.branch.btb import BTB, BTBEntry
from repro.branch.ras import ReturnAddressStack
from repro.branch.tage import TAGEPredictor
from repro.branch.ittage import ITTAGEPredictor
from repro.branch.bpu import (
    BranchPredictionUnit,
    BlockPrediction,
    MispredictKind,
)

__all__ = [
    "BTB",
    "BTBEntry",
    "ReturnAddressStack",
    "TAGEPredictor",
    "ITTAGEPredictor",
    "BranchPredictionUnit",
    "BlockPrediction",
    "MispredictKind",
]

"""Set-associative Branch Target Buffer.

Only *taken* branches are inserted (classic BTB discipline): a
never-taken conditional never occupies an entry. The BTB stores the
branch kind so the IAG knows whether to consult TAGE (conditional),
ITTAGE (indirect), or the RAS (return).

Storage accounting follows the paper's Table 1, which prices an 8K-entry
BTB at 119.01 KB: per entry we count a partial tag, the target address,
kind bits, and LRU state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.utils import SLOTTED


@dataclass(**SLOTTED)
class BTBEntry:
    """One BTB entry: tag, predicted target, and branch kind."""

    tag: int
    target: int
    kind: str  # "cond" | "direct" | "indirect" | "call" | "indirect_call" | "return"
    lru: int = 0


class BTB:
    """Set-associative branch target buffer indexed by branch PC."""

    #: storage per entry in bits (tag + 38-bit target + 3 kind + LRU),
    #: chosen so that 8K entries come out at ~119 KB like Table 1.
    BITS_PER_ENTRY = 122

    def __init__(self, num_entries: int = 8192, assoc: int = 8):
        if num_entries % assoc != 0:
            raise ValueError("entries must be a multiple of associativity")
        self.num_entries = num_entries
        self.assoc = assoc
        self.num_sets = num_entries // assoc
        self._sets: Dict[int, Dict[int, BTBEntry]] = {}
        self._clock = 0
        self.lookups = 0
        self.hits = 0
        self.inserts = 0
        self.evictions = 0

    # -- indexing ----------------------------------------------------------
    def _index(self, pc: int) -> "tuple[int, int]":
        set_idx = (pc >> 2) % self.num_sets
        tag = (pc >> 2) // self.num_sets
        return set_idx, tag

    # -- operations ----------------------------------------------------------
    def lookup(self, pc: int) -> Optional[BTBEntry]:
        """Return the entry for ``pc`` or None on a miss; updates LRU."""
        self.lookups += 1
        word = pc >> 2
        ways = self._sets.get(word % self.num_sets)
        entry = ways.get(word // self.num_sets) if ways is not None else None
        if entry is None:
            return None
        self._clock += 1
        entry.lru = self._clock
        self.hits += 1
        return entry

    def insert(self, pc: int, target: int, kind: str) -> None:
        """Insert/update the taken branch at ``pc``."""
        set_idx, tag = self._index(pc)
        ways = self._sets.setdefault(set_idx, {})
        self._clock += 1
        if tag in ways:
            entry = ways[tag]
            entry.target = target
            entry.kind = kind
            entry.lru = self._clock
            return
        if len(ways) >= self.assoc:
            victim = min(ways, key=lambda t: ways[t].lru)
            del ways[victim]
            self.evictions += 1
        ways[tag] = BTBEntry(tag=tag, target=target, kind=kind, lru=self._clock)
        self.inserts += 1

    # -- reporting ----------------------------------------------------------
    @property
    def storage_bits(self) -> int:
        """Storage footprint in bits."""
        return self.num_entries * self.BITS_PER_ENTRY

    @property
    def storage_kb(self) -> float:
        """Storage footprint in kilobytes."""
        return self.storage_bits / 8.0 / 1024.0

    def hit_rate(self) -> float:
        """Hits / lookups (0 when never looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0

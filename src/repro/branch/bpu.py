"""Composite branch prediction unit for the decoupled front end.

The BPU walks basic blocks on behalf of the instruction address generator
and reports, for each block, whether the front end would have followed
the correct path — and if not, which *kind* of resteer occurs. The BTB is
the branch-discovery structure: a taken branch absent from the BTB is
invisible to the IAG, which keeps fetching sequentially until pre-decode
catches the bogus path (the paper's "early correction" feature).

Mispredict kinds map directly onto the paper's trigger categories
(Section 4.2): conditional / indirect / return mispredicts resolve at
execute; BTB misses resteer earlier, at pre-decode.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.branch.btb import BTB
from repro.branch.ittage import ITTAGEPredictor
from repro.branch.ras import ReturnAddressStack
from repro.branch.tage import TAGEPredictor
from repro.utils import SLOTTED
from repro.workloads.layout import BasicBlock, BranchKind


class MispredictKind(Enum):
    """Why the front end had to resteer."""

    NONE = "none"
    COND_MISPREDICT = "cond_mispredict"        # TAGE wrong direction
    INDIRECT_MISPREDICT = "indirect_mispredict"  # ITTAGE wrong target
    RETURN_MISPREDICT = "return_mispredict"    # RAS wrong
    BTB_MISS = "btb_miss"                      # taken branch unknown to IAG

    @property
    def is_resteer(self) -> bool:
        """True when this verdict forces a front-end resteer."""
        return self is not MispredictKind.NONE

    @property
    def resolves_at_predecode(self) -> bool:
        """BTB misses are caught by the early-correction pre-decoder."""
        return self is MispredictKind.BTB_MISS


@dataclass(**SLOTTED)
class BlockPrediction:
    """BPU verdict for one executed basic block."""

    mispredict: MispredictKind
    #: address the (wrong) predicted path starts at, when mispredicted
    predicted_target: Optional[int]


#: the no-resteer verdict — by far the most common outcome, so every
#: correct prediction shares this one immutable instance instead of
#: allocating a fresh record per block (treat it as read-only)
_CORRECT = BlockPrediction(MispredictKind.NONE, None)


class BranchPredictionUnit:
    """TAGE + ITTAGE + BTB + RAS, driven along the committed path.

    The simulator feeds each block's *actual* outcome; the BPU forms its
    prediction first, compares, trains, and reports resteers. (Training
    at prediction time rather than at retire is a standard trace-driven
    simplification; the predictors never see wrong-path history.)
    """

    def __init__(self, btb_entries: int = 8192, btb_assoc: int = 8,
                 ras_depth: int = 64, seed: int = 0,
                 tage: Optional[TAGEPredictor] = None,
                 ittage: Optional[ITTAGEPredictor] = None):
        self.btb = BTB(num_entries=btb_entries, assoc=btb_assoc)
        self.tage = tage if tage is not None else TAGEPredictor(seed=seed)
        self.ittage = ittage if ittage is not None else ITTAGEPredictor(seed=seed)
        self.ras = ReturnAddressStack(depth=ras_depth)

        self.blocks_predicted = 0
        self.cond_mispredicts = 0
        self.indirect_mispredicts = 0
        self.return_mispredicts = 0
        self.btb_misses = 0

    def predict_block(self, block: BasicBlock, taken: bool,
                      target_addr: int) -> BlockPrediction:
        """Predict block's control transfer given the actual outcome.

        ``taken``/``target_addr`` describe the architecturally-correct
        transfer (from the path walker); the return value says whether the
        IAG would have followed it.
        """
        self.blocks_predicted += 1
        kind = block.kind
        if kind is BranchKind.FALLTHROUGH:
            return _CORRECT

        pc = block.branch_pc
        fallthrough_addr = block.end_addr

        if kind is BranchKind.COND:
            return self._predict_cond(block, pc, taken, target_addr,
                                      fallthrough_addr)
        if kind is BranchKind.DIRECT:
            return self._predict_direct(pc, target_addr, fallthrough_addr,
                                        "direct")
        if kind is BranchKind.CALL:
            result = self._predict_direct(pc, target_addr, fallthrough_addr,
                                          "call")
            self.ras.push(fallthrough_addr)
            return result
        if kind in (BranchKind.INDIRECT, BranchKind.INDIRECT_CALL):
            result = self._predict_indirect(block, pc, target_addr,
                                            fallthrough_addr)
            if kind is BranchKind.INDIRECT_CALL:
                self.ras.push(fallthrough_addr)
            return result
        if kind is BranchKind.RETURN:
            return self._predict_return(pc, target_addr, fallthrough_addr)
        raise AssertionError("unhandled branch kind %r" % kind)

    # -- per-kind helpers -----------------------------------------------------
    def _predict_cond(self, block: BasicBlock, pc: int, taken: bool,
                      target_addr: int, fallthrough_addr: int) -> BlockPrediction:
        entry = self.btb.lookup(pc)
        if entry is None:
            # branch invisible to the IAG: implicit not-taken
            if taken:
                self.btb.insert(pc, target_addr, "cond")
                self.btb_misses += 1
                # TAGE still trains once the branch is discovered
                predicted = self.tage.predict(pc)
                self.tage.update(pc, True, predicted)
                return BlockPrediction(MispredictKind.BTB_MISS,
                                       fallthrough_addr)
            return _CORRECT
        predicted = self.tage.predict(pc)
        self.tage.update(pc, taken, predicted)
        if predicted != taken:
            self.cond_mispredicts += 1
            wrong = entry.target if predicted else fallthrough_addr
            return BlockPrediction(MispredictKind.COND_MISPREDICT, wrong)
        return _CORRECT

    def _predict_direct(self, pc: int, target_addr: int,
                        fallthrough_addr: int, kind: str) -> BlockPrediction:
        entry = self.btb.lookup(pc)
        if entry is None:
            self.btb.insert(pc, target_addr, kind)
            self.btb_misses += 1
            return BlockPrediction(MispredictKind.BTB_MISS, fallthrough_addr)
        # direct targets never change; a hit is always correct
        return _CORRECT

    def _predict_indirect(self, block: BasicBlock, pc: int, target_addr: int,
                          fallthrough_addr: int) -> BlockPrediction:
        entry = self.btb.lookup(pc)
        if entry is None:
            self.btb.insert(pc, target_addr, "indirect")
            self.btb_misses += 1
            predicted = self.ittage.predict(pc)
            self.ittage.update(pc, target_addr, predicted)
            return BlockPrediction(MispredictKind.BTB_MISS, fallthrough_addr)
        predicted = self.ittage.predict(pc)
        self.ittage.update(pc, target_addr, predicted)
        if predicted is None:
            predicted = entry.target  # BTB last-target fallback
        self.btb.insert(pc, target_addr, "indirect")
        if predicted != target_addr:
            self.indirect_mispredicts += 1
            return BlockPrediction(MispredictKind.INDIRECT_MISPREDICT,
                                   predicted)
        return _CORRECT

    def _predict_return(self, pc: int, target_addr: int,
                        fallthrough_addr: int) -> BlockPrediction:
        entry = self.btb.lookup(pc)
        if entry is None:
            self.btb.insert(pc, target_addr, "return")
            self.btb_misses += 1
            self.ras.pop()  # keep the RAS in sync even on discovery
            return BlockPrediction(MispredictKind.BTB_MISS, fallthrough_addr)
        predicted = self.ras.pop()
        if predicted != target_addr:
            self.return_mispredicts += 1
            return BlockPrediction(MispredictKind.RETURN_MISPREDICT, predicted)
        return _CORRECT

    # -- reporting ----------------------------------------------------------
    @property
    def total_mispredicts(self) -> int:
        """All resteer-causing events seen so far."""
        return (self.cond_mispredicts + self.indirect_mispredicts
                + self.return_mispredicts + self.btb_misses)

"""Bounded structured trace recorder.

The recorder is the ``enabled=True`` counterpart of
:class:`repro.telemetry.handle.NullRecorder`: components emit typed
events (schema: :mod:`repro.telemetry.events`) into a ring buffer of
``capacity`` events — old events fall off the front, so a long run keeps
the *tail* of its history, which is the part a divergence triage wants.

Sampling keeps 1-in-``sample_every`` events. It is strictly
deterministic — a modulo over the global sequence number, never an RNG
draw — because the recorder must not perturb simulation state: the same
``(layout, profile, seed)`` run produces the same trace whether or not
anyone is watching, and stats stay bit-identical either way.

Per-kind counts are tracked for *every* offered event (before sampling
and before ring eviction), so the summary is exact even when the ring
kept only a suffix.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.telemetry.events import EVENT_KINDS

#: default ring capacity (events, not cycles)
DEFAULT_CAPACITY = 65536

#: one recorded event: (seq, cycle, kind, args)
Event = Tuple[int, int, str, Dict[str, object]]


class TraceRecorder:
    """Ring-buffered event recorder with deterministic sampling."""

    __slots__ = ("capacity", "sample_every", "seq", "dropped",
                 "sampled_out", "kind_counts", "_ring", "_validate")

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 sample_every: int = 1, validate: bool = True):
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        self.capacity = capacity
        self.sample_every = sample_every
        #: events offered (pre-sampling); doubles as the alignment key
        self.seq = 0
        #: events evicted from the ring by newer ones
        self.dropped = 0
        #: events skipped by sampling
        self.sampled_out = 0
        #: per-kind offered-event counts (exact, unaffected by the ring)
        self.kind_counts: Dict[str, int] = {}
        self._ring: Deque[Event] = deque()
        self._validate = validate

    def emit(self, kind: str, cycle: int, **args: object) -> None:
        """Record one event (drop-in for ``NullRecorder.emit``)."""
        if self._validate and kind not in EVENT_KINDS:
            raise ValueError(
                "unknown telemetry event kind %r; known: %s"
                % (kind, ", ".join(sorted(EVENT_KINDS))))
        seq = self.seq
        self.seq = seq + 1
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        if self.sample_every > 1 and seq % self.sample_every:
            self.sampled_out += 1
            return
        ring = self._ring
        if len(ring) >= self.capacity:
            ring.popleft()
            self.dropped += 1
        ring.append((seq, cycle, kind, args))

    def __len__(self) -> int:
        return len(self._ring)

    def events(self, kind: Optional[str] = None) -> List[Event]:
        """The retained events in emission order (optionally one kind)."""
        if kind is None:
            return list(self._ring)
        return [e for e in self._ring if e[2] == kind]

    def clear(self) -> None:
        """Drop retained events; counts and ``seq`` keep accumulating."""
        self._ring.clear()

    def summary(self) -> Dict[str, object]:
        """Exact accounting of what was offered, kept, and lost."""
        return {
            "events_offered": self.seq,
            "events_retained": len(self._ring),
            "events_dropped_ring": self.dropped,
            "events_sampled_out": self.sampled_out,
            "capacity": self.capacity,
            "sample_every": self.sample_every,
            "kind_counts": dict(sorted(self.kind_counts.items())),
        }

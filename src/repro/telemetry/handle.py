"""The zero-overhead telemetry handle (the only telemetry module hot
paths may import).

Simulation components (the machine, the memory hierarchy, the prefetch
queue, the PDIP controller) hold a ``tel`` attribute initialized to
:data:`NULL_RECORDER`. Every emit site is guarded by the handle's
``enabled`` class attribute::

    tel = self.tel
    if tel.enabled:
        tel.emit("resteer", cycle, kind=pr.kind.name)

With telemetry off (the default), ``enabled`` is the class-level
constant ``False``, so the guard costs two attribute loads and a branch
— nothing allocates, nothing is recorded, and the bench gate
(DESIGN.md §10) stays green. With telemetry on, a
:class:`repro.telemetry.recorder.TraceRecorder` (whose ``enabled`` is
``True``) replaces the null handle via
:meth:`repro.telemetry.session.TelemetrySession.attach`.

This module must stay dependency-free (stdlib only): the
``telemetry-noop-import`` lint rule pins hot-path modules to importing
*only* ``repro.telemetry.handle`` from the telemetry package, so the
full recorder/registry machinery can never leak onto per-cycle paths.
"""

from __future__ import annotations

import os


def telemetry_enabled() -> bool:
    """True when the ``REPRO_TELEMETRY`` environment switch is on.

    Drivers (the suite runner, ``repro bench``) consult this to decide
    whether to attach sessions; the simulator itself never reads it —
    attachment is always explicit.
    """
    return os.environ.get("REPRO_TELEMETRY", "").strip() not in ("", "0")


class NullRecorder:
    """Do-nothing stand-in for a trace recorder.

    ``enabled`` is a class attribute so the hot-path guard reads a
    constant; :meth:`emit` exists only for callers that skip the guard
    (cold paths where the branch is not worth the line of code).
    """

    __slots__ = ()

    enabled = False

    def emit(self, kind: str, cycle: int, **args: object) -> None:
        """Discard the event."""


#: the shared no-op handle every component starts with
NULL_RECORDER = NullRecorder()

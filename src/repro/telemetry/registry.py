"""Named metrics: counters, gauges, and histograms.

A :class:`MetricsRegistry` hands out typed metric handles by name;
components bump the handle, the registry owns the namespace and renders
one flat snapshot for export and diffing. Names are dotted
(``pq.issued``, ``l1i.misses``) so the snapshot sorts into sections.

Handles are deliberately tiny slotted objects — with telemetry enabled
they sit on warm (per-event, not per-cycle) paths; with telemetry
disabled nothing ever constructs a registry at all (hot components see
only :data:`repro.telemetry.handle.NULL_RECORDER`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

#: default histogram bucket upper bounds (latencies/cycle counts)
DEFAULT_BUCKETS: Tuple[int, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500)


class Counter:
    """Monotonic named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1)."""
        self.value += n


class Gauge:
    """Last-write-wins named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value


class Histogram:
    """Fixed-bucket histogram (cumulative-free, one count per bucket).

    ``bounds`` are upper bounds of the finite buckets; observations
    beyond the last bound land in the overflow bucket, so ``counts`` has
    ``len(bounds) + 1`` entries.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, name: str, bounds: Tuple[int, ...] = DEFAULT_BUCKETS):
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Count ``value`` into its bucket."""
        self.total += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def to_dict(self) -> Dict[str, object]:
        """JSON form: bounds, per-bucket counts, total, sum."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Namespace of metric handles, one per name, kind-checked.

    Asking for an existing name with a different kind raises — two
    components silently sharing ``pq.issued`` as a counter *and* a gauge
    is exactly the aliasing bug a registry exists to prevent.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, kind: type, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                "metric %r is already registered as %s, not %s"
                % (name, type(metric).__name__, kind.__name__))
        return metric

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  bounds: Tuple[int, ...] = DEFAULT_BUCKETS) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get(name, Histogram, lambda: Histogram(name, bounds))

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        """The handle for ``name``, or None."""
        return self._metrics.get(name)

    def snapshot(self) -> Dict[str, object]:
        """Flat ``{name: value-or-histogram-dict}``, sorted by name."""
        out: Dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.to_dict()
            else:
                out[name] = metric.value
        return out

"""Run-diff triage: what changed between two runs, and where first.

``repro diff A B`` compares two run artifacts and reports (1) which
counters diverged — naming the **first** diverging counter in the
declaration order the stats dump preserves, which for simulator counters
follows pipeline order, so the first name is usually the closest to the
root cause — and (2) when both runs carry traces, the first trace event
at which the two executions stopped agreeing (seq/cycle/kind/args).

Accepted inputs, auto-detected by content:

* **run dumps** — JSON written by ``repro run --stats-out`` or
  ``repro trace run`` (``{"stats": {...}, "trace": {...}}``); when both
  dumps reference existing ``.trace.jsonl`` files, the event-level
  first divergence is computed too;
* **manifests** — suite manifests (schema ≥ 2) whose cells carry
  ``stats`` digests; cells are aligned on
  (benchmark, policy, seed, instructions, warmup);
* **traces** — ``.trace.jsonl`` streams or Chrome ``traceEvents``
  documents, compared event-by-event.

The verdict is machine-readable (``--format json``) for CI:
exit 0 = match, 1 = diverged, 2 = incomparable/usage error.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.telemetry.export import read_jsonl
from repro.telemetry.recorder import Event

#: counters whose divergence is reported before any event-level triage
_SKIP_KEYS = ("extra",)


@dataclass
class CounterDivergence:
    """One counter that differs between the two runs."""

    name: str
    a: Optional[float]
    b: Optional[float]
    #: manifest diffs qualify the counter with its grid cell
    cell: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "a": self.a, "b": self.b,
                "cell": self.cell}

    def render(self) -> str:
        where = ("%s: " % self.cell) if self.cell else ""
        return "%s%s: %s != %s" % (where, self.name, self.a, self.b)


@dataclass
class DiffReport:
    """Outcome of one A/B comparison."""

    a: str
    b: str
    kind: str                     #: "stats" | "manifest" | "trace"
    verdict: str = "match"        #: "match" | "diverged" | "incomparable"
    counters: List[CounterDivergence] = field(default_factory=list)
    #: {"index", "a", "b"} — first event where the traces disagree
    first_event_divergence: Optional[Dict[str, object]] = None
    notes: List[str] = field(default_factory=list)

    @property
    def first_diverging_counter(self) -> Optional[str]:
        """Name of the first diverging counter (None when none did)."""
        return self.counters[0].name if self.counters else None

    @property
    def exit_code(self) -> int:
        """CI contract: 0 match, 1 diverged, 2 incomparable."""
        if self.verdict == "match":
            return 0
        if self.verdict == "diverged":
            return 1
        return 2

    def to_dict(self) -> Dict[str, object]:
        return {
            "a": self.a,
            "b": self.b,
            "kind": self.kind,
            "verdict": self.verdict,
            "first_diverging_counter": self.first_diverging_counter,
            "counters": [c.to_dict() for c in self.counters],
            "first_event_divergence": self.first_event_divergence,
            "notes": list(self.notes),
        }

    def render(self) -> str:
        lines = ["diff %s vs %s [%s]: %s"
                 % (self.a, self.b, self.kind, self.verdict.upper())]
        if self.counters:
            lines.append("  first diverging counter: %s"
                         % self.counters[0].render())
            for div in self.counters[1:]:
                lines.append("  also diverged: %s" % div.render())
        fed = self.first_event_divergence
        if fed is not None:
            lines.append("  first event divergence at index %s:"
                         % fed.get("index"))
            lines.append("    a: %s" % (fed.get("a"),))
            lines.append("    b: %s" % (fed.get("b"),))
        for note in self.notes:
            lines.append("  note: %s" % note)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def load_artifact(path) -> Tuple[str, object]:
    """Load and classify one input: ("run"|"manifest"|"trace", payload)."""
    path = Path(path)
    if path.suffix == ".jsonl":
        return "trace", read_jsonl(path)
    with open(path) as fh:
        doc = json.load(fh)
    if isinstance(doc, dict):
        if "traceEvents" in doc:
            return "trace", _events_from_chrome(doc)
        if "cells" in doc:
            return "manifest", doc
        if "stats" in doc:
            return "run", doc
        if doc and all(isinstance(v, (int, float))
                       for v in doc.values()):
            return "run", {"stats": doc}
    raise ValueError("unrecognized diff input %s (want a run dump, "
                     "manifest, or trace)" % path)


def _events_from_chrome(doc: Dict[str, object]) -> List[Event]:
    events: List[Event] = []
    for row in doc.get("traceEvents", []):
        if row.get("ph") != "i":
            continue
        args = dict(row.get("args", {}))
        seq = args.pop("seq", len(events))
        events.append((seq, row.get("ts", 0), row.get("name", "?"), args))
    return events


# ----------------------------------------------------------------------
# comparisons
# ----------------------------------------------------------------------
def diff_counters(a: Dict[str, object], b: Dict[str, object],
                  cell: str = "") -> List[CounterDivergence]:
    """Diverging numeric entries, in A's key order (B-only keys last)."""
    out: List[CounterDivergence] = []
    for name in list(a) + [k for k in b if k not in a]:
        if name in _SKIP_KEYS:
            continue
        va, vb = a.get(name), b.get(name)
        if isinstance(va, dict) or isinstance(vb, dict):
            continue
        if va != vb:
            out.append(CounterDivergence(name=name, a=va, b=vb, cell=cell))
    return out


def first_event_divergence(a: List[Event], b: List[Event]
                           ) -> Optional[Dict[str, object]]:
    """First index where the two event streams disagree (None if equal)."""
    for i, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            return {"index": i, "a": _event_dict(ea), "b": _event_dict(eb)}
    if len(a) != len(b):
        i = min(len(a), len(b))
        return {
            "index": i,
            "a": _event_dict(a[i]) if i < len(a) else None,
            "b": _event_dict(b[i]) if i < len(b) else None,
        }
    return None


def _event_dict(event: Event) -> Dict[str, object]:
    seq, cycle, kind, args = event
    return {"seq": seq, "cycle": cycle, "kind": kind, "args": args}


def _diff_runs(report: DiffReport, a: Dict[str, object],
               b: Dict[str, object]) -> None:
    report.counters = diff_counters(a.get("stats", {}) or {},
                                    b.get("stats", {}) or {})
    trace_a = (a.get("trace") or {}).get("jsonl")
    trace_b = (b.get("trace") or {}).get("jsonl")
    if trace_a and trace_b:
        pa, pb = Path(trace_a), Path(trace_b)
        if pa.exists() and pb.exists():
            report.first_event_divergence = first_event_divergence(
                read_jsonl(pa), read_jsonl(pb))
        else:
            report.notes.append("trace files referenced but missing; "
                                "event-level triage skipped")
    for side, dump in (("a", a), ("b", b)):
        tel = dump.get("telemetry")
        if tel and tel.get("recorder", {}).get("events_dropped_ring"):
            report.notes.append(
                "%s: ring dropped %d events (raise REPRO_TELEMETRY_CAPACITY "
                "for full-history alignment)"
                % (side, tel["recorder"]["events_dropped_ring"]))


def _cell_key(cell: Dict[str, object]) -> Tuple[object, ...]:
    return (cell.get("benchmark"), cell.get("policy"), cell.get("seed"),
            cell.get("instructions"), cell.get("warmup"))


def _diff_manifests(report: DiffReport, a: Dict[str, object],
                    b: Dict[str, object]) -> None:
    cells_a = {_cell_key(c): c for c in a.get("cells", [])}
    cells_b = {_cell_key(c): c for c in b.get("cells", [])}
    only_a = [k for k in cells_a if k not in cells_b]
    only_b = [k for k in cells_b if k not in cells_a]
    if only_a or only_b:
        report.notes.append(
            "grids differ: %d cell(s) only in A, %d only in B"
            % (len(only_a), len(only_b)))
    missing_digests = 0
    for key in cells_a:
        if key not in cells_b:
            continue
        sa = cells_a[key].get("stats")
        sb = cells_b[key].get("stats")
        if sa is None or sb is None:
            missing_digests += 1
            continue
        label = "%s/%s/s%s" % (key[0], key[1], key[2])
        report.counters.extend(diff_counters(sa, sb, cell=label))
    if missing_digests:
        report.notes.append(
            "%d matched cell(s) lack stats digests (manifest schema < 2?)"
            % missing_digests)


def diff_paths(path_a, path_b) -> DiffReport:
    """Compare two artifacts; never raises on divergence, only on I/O."""
    report = DiffReport(a=str(path_a), b=str(path_b), kind="stats")
    try:
        kind_a, doc_a = load_artifact(path_a)
        kind_b, doc_b = load_artifact(path_b)
    except (OSError, ValueError, KeyError) as exc:
        report.verdict = "incomparable"
        report.notes.append(str(exc))
        return report
    if kind_a != kind_b:
        report.verdict = "incomparable"
        report.kind = "%s/%s" % (kind_a, kind_b)
        report.notes.append("cannot compare a %s against a %s"
                            % (kind_a, kind_b))
        return report
    report.kind = kind_a
    if kind_a == "trace":
        report.first_event_divergence = first_event_divergence(doc_a, doc_b)
    elif kind_a == "manifest":
        _diff_manifests(report, doc_a, doc_b)
    else:
        _diff_runs(report, doc_a, doc_b)
    diverged = bool(report.counters) or (
        report.first_event_divergence is not None)
    report.verdict = "diverged" if diverged else "match"
    return report

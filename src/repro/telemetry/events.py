"""The trace event schema: every kind the simulator emits, documented.

One trace event is a 4-tuple ``(seq, cycle, kind, args)``: a global
sequence number (assigned by the recorder, pre-sampling, so two runs can
be aligned event-by-event even when the ring dropped different
prefixes), the simulated cycle, a kind from :data:`EVENT_KINDS`, and a
small dict of kind-specific arguments.

The schema is deliberately closed: emitting an unknown kind raises in
the recorder, so a typo at an emit site fails the first telemetry run
instead of producing a silently unnamed trace row. Adding an event means
adding a row here (with its argument names) and a paragraph to
DESIGN.md §12.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: kind -> (argument names, human description)
EVENT_KINDS: Dict[str, Tuple[Tuple[str, ...], str]] = {
    "resteer": (
        # named resteer_kind (not "kind") so it can be passed as a
        # keyword through ``emit(kind, cycle, **args)``
        ("resteer_kind", "trigger_line"),
        "a matured front-end resteer flushed the FTQ and redirected the IAG",
    ),
    "l1i_miss": (
        ("line", "served_by", "ready"),
        "a demand instruction fetch missed the L1-I (MSHR allocated)",
    ),
    "fec": (
        ("line", "trigger_line", "trigger_type", "starvation", "high_cost"),
        "a line qualified as front-end critical at block retirement",
    ),
    "pdip_hit": (
        ("trigger", "target", "ttype"),
        "a PDIP table lookup hit: a trigger block requested a prefetch",
    ),
    "pdip_insert": (
        ("trigger", "line", "ttype"),
        "a qualifying FEC event was inserted into the PDIP table",
    ),
    "pq_issue": (
        ("line",),
        "the prefetch queue forwarded a request into the hierarchy",
    ),
    "pq_drop": (
        ("line", "reason"),
        "a prefetch request was dropped (queue full / duplicate filter)",
    ),
    "fast_forward": (
        ("cycles",),
        "the event-horizon fast path skipped this many provably-idle "
        "cycles in one jump (the trace stays horizon-aware: one batch "
        "event replaces the per-cycle stream)",
    ),
}

#: Chrome-trace thread ids: group events by pipeline area so Perfetto
#: renders one track per stage instead of one interleaved stream
STAGE_OF_KIND: Dict[str, str] = {
    "resteer": "frontend",
    "l1i_miss": "memory",
    "fec": "retire",
    "pdip_hit": "prefetch",
    "pdip_insert": "prefetch",
    "pq_issue": "prefetch",
    "pq_drop": "prefetch",
    "fast_forward": "sim",
}

STAGES: Tuple[str, ...] = ("frontend", "memory", "prefetch", "retire", "sim")


def validate_args(kind: str, args: Dict[str, object]) -> None:
    """Raise ``ValueError`` on an unknown kind or unknown argument name."""
    try:
        names, _ = EVENT_KINDS[kind]
    except KeyError:
        raise ValueError(
            "unknown telemetry event kind %r; known: %s"
            % (kind, ", ".join(sorted(EVENT_KINDS))))
    unknown = set(args) - set(names)
    if unknown:
        raise ValueError(
            "event %r does not take argument(s) %s (schema: %s)"
            % (kind, ", ".join(sorted(unknown)), ", ".join(names)))

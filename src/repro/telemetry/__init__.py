"""Telemetry subsystem: structured tracing, metrics, run-diff triage.

Three cooperating pieces (DESIGN.md §12):

* :mod:`repro.telemetry.handle` — the zero-overhead no-op handle hot
  paths hold when telemetry is off (the only telemetry module the
  simulator's per-cycle code may import; enforced by ``repro lint``);
* :mod:`repro.telemetry.recorder` / :mod:`repro.telemetry.registry` /
  :mod:`repro.telemetry.export` / :mod:`repro.telemetry.session` — the
  live side: typed events into a bounded ring, named metrics, Chrome
  trace / JSONL export, machine attach/detach;
* :mod:`repro.telemetry.diff` — ``repro diff A B``: which counters
  diverged between two runs, and (with traces) the first event where
  the executions stopped agreeing.
"""

from __future__ import annotations

from repro.telemetry.diff import DiffReport, diff_paths
from repro.telemetry.events import EVENT_KINDS
from repro.telemetry.export import export_recorder, read_jsonl, to_chrome
from repro.telemetry.handle import NULL_RECORDER, telemetry_enabled
from repro.telemetry.recorder import TraceRecorder
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.session import TelemetrySession

__all__ = [
    "DiffReport",
    "EVENT_KINDS",
    "MetricsRegistry",
    "NULL_RECORDER",
    "TelemetrySession",
    "TraceRecorder",
    "diff_paths",
    "export_recorder",
    "read_jsonl",
    "telemetry_enabled",
    "to_chrome",
]

"""Telemetry sessions: wire a recorder + registry onto a machine.

A :class:`TelemetrySession` owns one
:class:`~repro.telemetry.recorder.TraceRecorder` and one
:class:`~repro.telemetry.registry.MetricsRegistry`.
:meth:`~TelemetrySession.attach` swaps the machine's (and its
components') ``tel`` null handles for the live recorder;
:meth:`~TelemetrySession.detach` restores the null handles and harvests
component counters — FTQ, prefetch queue, cache hierarchy, machine
fast-path diagnostics, and the prefetcher's own accounting — into the
registry under stable dotted names.

Event-horizon interaction (see :mod:`repro.simulator.probe` for the
probe-side rule): attaching telemetry does **not** disable cycle
skipping. The recorder is horizon-aware — ``Machine._fast_forward``
emits one batched ``fast_forward`` event per jump — so a telemetry run
takes the same fast path, produces bit-identical stats, and its trace
marks exactly where the simulator skipped.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.telemetry.handle import NULL_RECORDER
from repro.telemetry.recorder import DEFAULT_CAPACITY, TraceRecorder
from repro.telemetry.registry import MetricsRegistry

#: (metric name, attribute path from the machine) harvested at detach;
#: missing attributes are skipped, so leaner machines harvest less
HARVEST_SOURCES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("ftq.enqueues", ("ftq", "enqueues")),
    ("ftq.flushes", ("ftq", "flushes")),
    ("ftq.flushed_entries", ("ftq", "flushed_entries")),
    ("pq.requests", ("pq", "requests")),
    ("pq.issued", ("pq", "issued")),
    ("pq.dropped_full", ("pq", "dropped_full")),
    ("pq.filtered_resident", ("pq", "filtered_resident")),
    ("l1i.demand_accesses", ("hierarchy", "l1i_demand_accesses")),
    ("l1i.demand_misses", ("hierarchy", "l1i_demand_misses")),
    ("l2.inst_misses", ("hierarchy", "l2_inst_misses")),
    ("l2.data_misses", ("hierarchy", "l2_data_misses")),
    ("l3.misses", ("hierarchy", "l3_misses")),
    ("prefetch.issued", ("hierarchy", "prefetches_issued")),
    ("prefetch.dropped", ("hierarchy", "prefetches_dropped")),
    ("prefetch.useful", ("hierarchy", "prefetch_useful")),
    ("prefetch.late", ("hierarchy", "prefetch_late")),
    ("prefetch.useless", ("hierarchy", "prefetch_useless")),
    ("pdip.candidate_events", ("prefetcher", "candidate_events")),
    ("pdip.qualified_events", ("prefetcher", "qualified_events")),
    ("pdip.inserted_events", ("prefetcher", "inserted_events")),
    ("pdip.prefetch_requests", ("prefetcher", "prefetch_requests")),
    ("sim.fast_forwards", ("fast_forwards",)),
    ("sim.fast_forwarded_cycles", ("fast_forwarded_cycles",)),
    ("sim.cycles", ("cycle",)),
)

#: machine attributes whose ``tel`` handle the session swaps
_TEL_BEARERS: Tuple[Tuple[str, ...], ...] = (
    (), ("hierarchy",), ("pq",), ("prefetcher",),
)


def _resolve(machine, path: Tuple[str, ...]):
    obj = machine
    for attr in path:
        obj = getattr(obj, attr, None)
        if obj is None:
            return None
    return obj


class TelemetrySession:
    """One machine-run's worth of telemetry state."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 sample_every: int = 1,
                 recorder: Optional[TraceRecorder] = None,
                 registry: Optional[MetricsRegistry] = None):
        self.recorder = (recorder if recorder is not None
                         else TraceRecorder(capacity=capacity,
                                            sample_every=sample_every))
        self.registry = registry if registry is not None else MetricsRegistry()
        self._attached: List[object] = []

    @classmethod
    def from_env(cls) -> "TelemetrySession":
        """Build a session from ``REPRO_TELEMETRY_CAPACITY`` /
        ``REPRO_TELEMETRY_SAMPLE`` (defaults: 65536 / 1)."""
        capacity = int(os.environ.get("REPRO_TELEMETRY_CAPACITY",
                                      str(DEFAULT_CAPACITY)))
        sample = int(os.environ.get("REPRO_TELEMETRY_SAMPLE", "1"))
        return cls(capacity=capacity, sample_every=sample)

    # ------------------------------------------------------------------
    def attach(self, machine) -> "TelemetrySession":
        """Swap the machine's (and components') null handles for the
        live recorder. Idempotent per machine; returns self."""
        for path in _TEL_BEARERS:
            bearer = _resolve(machine, path)
            if bearer is not None and hasattr(bearer, "tel"):
                bearer.tel = self.recorder
                if bearer not in self._attached:
                    self._attached.append(bearer)
        return self

    def detach(self, machine) -> "TelemetrySession":
        """Restore the null handles and harvest component counters."""
        self.harvest(machine)
        for bearer in self._attached:
            bearer.tel = NULL_RECORDER
        self._attached = []
        return self

    # ------------------------------------------------------------------
    def harvest(self, machine) -> None:
        """Pull component counters into the registry as gauges."""
        registry = self.registry
        for name, path in HARVEST_SOURCES:
            value = _resolve(machine, path)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                registry.gauge(name).set(value)
        for kind, count in self.recorder.kind_counts.items():
            counter = registry.counter("events." + kind)
            counter.value = count

    def summary(self) -> Dict[str, object]:
        """Ring accounting plus the metric snapshot (JSON-ready)."""
        return {
            "recorder": self.recorder.summary(),
            "metrics": self.registry.snapshot(),
        }

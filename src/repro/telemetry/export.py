"""Trace export: Chrome ``trace_event`` JSON (Perfetto) and JSONL.

Chrome format: one document with a ``traceEvents`` array of instant
events (``ph: "i"``), ``ts`` in simulated cycles (Perfetto displays them
as microseconds — the absolute unit is meaningless for a cycle-level
simulator, the *relative* timeline is what matters), one synthetic
thread per pipeline stage (:data:`repro.telemetry.events.STAGE_OF_KIND`)
so resteers, misses, and prefetch traffic land on separate tracks.
Load with https://ui.perfetto.dev or ``chrome://tracing``.

JSONL format: a ``_meta`` header line followed by one
``{"seq", "cycle", "kind", "args"}`` object per event — the format
:mod:`repro.telemetry.diff` aligns run pairs on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.telemetry.events import STAGE_OF_KIND, STAGES
from repro.telemetry.recorder import Event, TraceRecorder

#: schema tag written into both export headers
TRACE_SCHEMA = 1


def to_chrome(events: Iterable[Event],
              meta: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """Render events as a Chrome ``trace_event`` JSON document."""
    pid = 1
    tids = {stage: tid for tid, stage in enumerate(STAGES, start=1)}
    trace_events: List[Dict[str, object]] = [
        {"name": "process_name", "ph": "M", "pid": pid,
         "args": {"name": "repro simulation"}},
    ]
    for stage in STAGES:
        trace_events.append(
            {"name": "thread_name", "ph": "M", "pid": pid,
             "tid": tids[stage], "args": {"name": stage}})
    for seq, cycle, kind, args in events:
        row: Dict[str, object] = dict(args)
        row["seq"] = seq
        trace_events.append({
            "name": kind,
            "ph": "i",
            "s": "t",
            "ts": cycle,
            "pid": pid,
            "tid": tids[STAGE_OF_KIND.get(kind, "sim")],
            "args": row,
        })
    doc: Dict[str, object] = {
        "schema": TRACE_SCHEMA,
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if meta:
        doc["metadata"] = dict(meta)
    return doc


def write_chrome(events: Iterable[Event], path,
                 meta: Optional[Dict[str, object]] = None) -> Path:
    """Write the Chrome-trace document; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(to_chrome(events, meta=meta), fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def write_jsonl(events: Iterable[Event], path,
                meta: Optional[Dict[str, object]] = None) -> Path:
    """Write the JSONL stream (``_meta`` header + one event per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header: Dict[str, object] = {"_meta": True, "schema": TRACE_SCHEMA}
    if meta:
        header.update(meta)
    with open(path, "w") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for seq, cycle, kind, args in events:
            fh.write(json.dumps(
                {"seq": seq, "cycle": cycle, "kind": kind, "args": args},
                sort_keys=True) + "\n")
    return path


def read_jsonl(path) -> List[Event]:
    """Load a JSONL trace back into event tuples (header skipped)."""
    events: List[Event] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("_meta"):
                continue
            events.append((row["seq"], row["cycle"], row["kind"],
                           dict(row.get("args", {}))))
    return events


def export_recorder(recorder: TraceRecorder, out_prefix,
                    meta: Optional[Dict[str, object]] = None
                    ) -> Dict[str, str]:
    """Write both formats for one recorder.

    Returns ``{"chrome": path, "jsonl": path}`` with string paths,
    suitable for embedding into a run dump.
    """
    events = recorder.events()
    chrome = write_chrome(events, str(out_prefix) + ".trace.json", meta=meta)
    jsonl = write_jsonl(events, str(out_prefix) + ".trace.jsonl", meta=meta)
    return {"chrome": str(chrome), "jsonl": str(jsonl)}

"""PDIP: Priority Directed Instruction Prefetching — full reproduction.

A from-scratch, pure-Python reproduction of *PDIP: Priority Directed
Instruction Prefetching* (ASPLOS 2024): a cycle-level decoupled-front-end
CPU simulator (FDIP, TAGE/ITTAGE/BTB/RAS, three-level cache hierarchy
with EMISSARY replacement, out-of-order back-end occupancy model),
synthetic large-code-footprint server workloads, the PDIP prefetcher, the
EIP baseline, and a benchmark harness that regenerates every table and
figure in the paper's evaluation.

Quickstart::

    from repro import run_benchmark

    baseline = run_benchmark("cassandra", "baseline")
    pdip = run_benchmark("cassandra", "pdip_44")
    print(f"PDIP speedup: {(pdip.ipc / baseline.ipc - 1) * 100:+.2f}%")

See ``examples/`` for richer entry points and ``benchmarks/`` for the
per-figure harnesses.
"""

from repro.core.fec import FECClassifier, FECEvent, TriggerType
from repro.core.pdip import PDIPConfig, PDIPController
from repro.core.pdip_table import PDIPTable
from repro.simulator.config import MachineConfig
from repro.simulator.machine import Machine
from repro.simulator.policies import (
    POLICIES,
    PolicySpec,
    build_machine,
    build_machine_for,
    get_policy,
)
from repro.simulator.runner import (
    run_benchmark,
    run_suite,
    run_suite_parallel,
    speedup,
)
from repro.simulator.stats import SimulationStats
from repro.workloads.profiles import (
    BENCHMARK_NAMES,
    PROFILES,
    WorkloadProfile,
    get_profile,
)

__version__ = "1.0.0"

__all__ = [
    "FECClassifier",
    "FECEvent",
    "TriggerType",
    "PDIPConfig",
    "PDIPController",
    "PDIPTable",
    "MachineConfig",
    "Machine",
    "POLICIES",
    "PolicySpec",
    "build_machine",
    "build_machine_for",
    "get_policy",
    "run_benchmark",
    "run_suite",
    "run_suite_parallel",
    "speedup",
    "SimulationStats",
    "BENCHMARK_NAMES",
    "PROFILES",
    "WorkloadProfile",
    "get_profile",
    "__version__",
]

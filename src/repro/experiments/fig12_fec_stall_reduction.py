"""Figure 12: % reduction in FEC stalls, PDIP(44) vs EIP(46).

FEC stalls are the decode-starvation cycles charged to entries whose
miss qualified as front-end critical. The paper: PDIP cuts them 42% on
average (>=50% on nine benchmarks) vs 19% for EIP; PDIP+EMISSARY reaches
46% on verilator-class workloads. Also reports PDIP's FEC coverage
(paper: >67%).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments import common

POLICIES = ("pdip_44", "eip_46", "pdip_44_emissary")


def run(instructions: Optional[int] = None, warmup: Optional[int] = None,
        benchmarks: Optional[Iterable[str]] = None, seed: int = 1) -> dict:
    """Compute this artifact's data series (see the module docstring)."""
    instructions, warmup = common.budget(instructions, warmup)
    benches = common.suite(benchmarks)
    grid = common.collect(("baseline",) + POLICIES, benches,
                          instructions, warmup, seed=seed)
    rows = {}
    for bench, by in grid.items():
        base = max(1, by["baseline"].fec_starvation_cycles)
        rows[bench] = {
            p: 100.0 * (1.0 - by[p].fec_starvation_cycles / base)
            for p in POLICIES
        }
        rows[bench]["pdip_coverage"] = 100.0 * by["pdip_44"].fec_coverage
        rows[bench]["eip_coverage"] = 100.0 * by["eip_46"].fec_coverage
    avg = {k: sum(r[k] for r in rows.values()) / len(rows)
           for k in ("pdip_44", "eip_46", "pdip_44_emissary",
                     "pdip_coverage", "eip_coverage")}
    return {"benchmarks": benches, "rows": rows, "average": avg}


def render(result: dict) -> str:
    """Render the result as the paper-style text output."""
    headers = ["benchmark", "PDIP(44)", "EIP(46)", "PDIP+EMSRY",
               "PDIP cov%", "EIP cov%"]
    keys = ("pdip_44", "eip_46", "pdip_44_emissary",
            "pdip_coverage", "eip_coverage")
    rows = [[b] + ["%.1f" % result["rows"][b][k] for k in keys]
            for b in result["benchmarks"]]
    rows.append(["Average"] + ["%.1f" % result["average"][k] for k in keys])
    return common.format_table(
        headers, rows, title="Figure 12: FEC stall reduction (%)")


def render_svg(result: dict) -> str:
    """SVG version of the FEC-stall-reduction bars."""
    from repro.reporting_svg import grouped_bar_svg

    series = {
        label: {b: result["rows"][b][key] for b in result["benchmarks"]}
        for label, key in (("PDIP(44)", "pdip_44"), ("EIP(46)", "eip_46"),
                           ("PDIP+EMSRY", "pdip_44_emissary"))
    }
    return grouped_bar_svg(series,
                           title="Figure 12: FEC stall reduction",
                           ylabel="% reduction")


def main() -> None:
    """Entry point: run with env-controlled budgets and print."""
    print(render(run()))


if __name__ == "__main__":
    main()

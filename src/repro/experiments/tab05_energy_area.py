"""Table 5: CPU-core energy and area overhead of the PDIP configurations.

Paper values (McPAT): energy 0.25/0.55/0.62/0.64 %, area
0.31/0.52/0.96/2.84 % for PDIP(11/22/44/87). Our analytical SRAM model
reproduces the scaling trend (energy saturating, area super-linear at
16-way).
"""

from __future__ import annotations

from repro.energy.model import pdip_overheads
from repro.experiments import common

PAPER = {
    "PDIP(11)": (0.25, 0.31),
    "PDIP(22)": (0.55, 0.52),
    "PDIP(44)": (0.62, 0.96),
    "PDIP(87)": (0.64, 2.84),
}


def run() -> dict:
    """Compute this artifact's data series (see the module docstring)."""
    rows = {}
    for ov in pdip_overheads():
        rows[ov.label] = {
            "table_kb": ov.table_kb,
            "energy_pct": ov.energy_pct,
            "area_pct": ov.area_pct,
        }
    return {"rows": rows, "paper": PAPER}


def render(result: dict) -> str:
    """Render the result as the paper-style text output."""
    rows = []
    for label, (p_energy, p_area) in PAPER.items():
        m = result["rows"][label]
        rows.append([label, "%.1f" % m["table_kb"],
                     p_energy, "%.2f" % m["energy_pct"],
                     p_area, "%.2f" % m["area_pct"]])
    return common.format_table(
        ["config", "KB", "paper E%", "ours E%", "paper A%", "ours A%"],
        rows, title="Table 5: PDIP energy and area overhead vs core")


def main() -> None:
    """Entry point: run with env-controlled budgets and print."""
    print(render(run()))


if __name__ == "__main__":
    main()

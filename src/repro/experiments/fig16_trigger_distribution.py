"""Figure 16: distribution of PDIP prefetch triggers.

The paper: 89% of issued prefetch targets are triggered by mispredicting
branches (including BTB misses), 11% by last-taken-branch triggers.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments import common


def run(instructions: Optional[int] = None, warmup: Optional[int] = None,
        benchmarks: Optional[Iterable[str]] = None, seed: int = 1) -> dict:
    """Compute this artifact's data series (see the module docstring)."""
    instructions, warmup = common.budget(instructions, warmup)
    benches = common.suite(benchmarks)
    grid = common.collect(("pdip_44",), benches, instructions, warmup,
                          seed=seed)
    rows = {}
    for bench, by in grid.items():
        st = by["pdip_44"]
        total = st.pdip_triggers_mispredict + st.pdip_triggers_last_taken
        mis = (100.0 * st.pdip_triggers_mispredict / total) if total else 0.0
        rows[bench] = {"mispredict_pct": mis, "last_taken_pct": 100.0 - mis
                       if total else 0.0}
    avg_mis = sum(r["mispredict_pct"] for r in rows.values()) / len(rows)
    return {"benchmarks": benches, "rows": rows,
            "average": {"mispredict_pct": avg_mis,
                        "last_taken_pct": 100.0 - avg_mis}}


def render(result: dict) -> str:
    """Render the result as the paper-style text output."""
    headers = ["benchmark", "% mispredict triggers", "% last-taken triggers"]
    rows = [[b, "%.1f" % result["rows"][b]["mispredict_pct"],
             "%.1f" % result["rows"][b]["last_taken_pct"]]
            for b in result["benchmarks"]]
    rows.append(["Average", "%.1f" % result["average"]["mispredict_pct"],
                 "%.1f" % result["average"]["last_taken_pct"]])
    return common.format_table(
        headers, rows, title="Figure 16: PDIP prefetch trigger distribution")


def render_svg(result: dict) -> str:
    """SVG version of the trigger-distribution bars."""
    from repro.reporting_svg import grouped_bar_svg

    series = {
        "mispredict triggers": {b: result["rows"][b]["mispredict_pct"]
                                for b in result["benchmarks"]},
        "last-taken triggers": {b: result["rows"][b]["last_taken_pct"]
                                for b in result["benchmarks"]},
    }
    return grouped_bar_svg(series,
                           title="Figure 16: trigger distribution",
                           ylabel="% of issued prefetches")


def main() -> None:
    """Entry point: run with env-controlled budgets and print."""
    print(render(run()))


if __name__ == "__main__":
    main()

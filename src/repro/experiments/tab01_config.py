"""Table 1: the simulated processor configuration.

Prints the reproduction's machine parameters next to the paper's, making
the documented 4-8x cache scaling explicit.
"""

from __future__ import annotations

from repro.experiments import common
from repro.simulator.config import MachineConfig

PAPER = {
    "L1-I": "32kB 8-way, 2-cycle, 16 MSHR",
    "L2": "1MB 16-way, 10-cycle, 32 MSHR",
    "L3": "2MB 16-way, 20-cycle, 64 MSHR",
    "BTB": "8K entries (119.01 KB)",
    "FTQ": "24 entries",
    "Prefetch Queue": "40 cachelines",
    "Decode/Retire": "12 wide",
    "ROB": "512 entries",
    "Branch predictor": "TAGE (64KB) / ITTAGE (64KB)",
}


def run(config: MachineConfig = None) -> dict:
    """Compute this artifact's data series (see the module docstring)."""
    cfg = config if config is not None else MachineConfig()
    h = cfg.hierarchy
    ours = {
        "L1-I": "%dkB %d-way, %d-cycle, %d MSHR" % (
            h.l1i_size_kb, h.l1i_assoc, h.l1_hit_latency, h.l1i_mshrs),
        "L2": "%dkB %d-way, %d-cycle, %d MSHR" % (
            h.l2_size_kb, h.l2_assoc, h.l2_hit_latency, h.l2_mshrs),
        "L3": "%dkB %d-way, %d-cycle, %d MSHR" % (
            h.l3_size_kb, h.l3_assoc, h.l3_hit_latency, h.l3_mshrs),
        "BTB": "%d entries" % cfg.btb_entries,
        "FTQ": "%d entries" % cfg.ftq_depth,
        "Prefetch Queue": "%d cachelines" % cfg.pq_capacity,
        "Decode/Retire": "%d wide" % cfg.decode_width,
        "ROB": "%d entries" % cfg.rob_entries,
        "Branch predictor": "TAGE / ITTAGE (scaled tables)",
    }
    return {"paper": PAPER, "ours": ours}


def render(result: dict) -> str:
    """Render the result as the paper-style text output."""
    rows = [[field, result["paper"][field], result["ours"][field]]
            for field in PAPER]
    return common.format_table(
        ["field", "paper (Table 1)", "reproduction (scaled)"], rows,
        title="Table 1: processor configuration")


def main() -> None:
    """Entry point: run with env-controlled budgets and print."""
    print(render(run()))


if __name__ == "__main__":
    main()

"""Shared plumbing for the per-figure experiment drivers."""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.simulator.config import MachineConfig
from repro.simulator.runner import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_WARMUP,
    resolve_jobs,
    run_suite_parallel,
)
from repro.simulator.stats import SimulationStats
from repro.utils import geomean
from repro.workloads.profiles import BENCHMARK_NAMES

#: subset used by the heavy BTB-sweep figures when the caller does not
#: ask for the full suite (override with REPRO_BENCHMARKS=all)
SWEEP_BENCHMARKS = (
    "cassandra", "tomcat", "kafka", "tpcc", "verilator",
)


def budget(instructions: Optional[int] = None,
           warmup: Optional[int] = None) -> Tuple[int, int]:
    """Resolve the instruction budget: explicit args > env > defaults."""
    if instructions is None:
        instructions = int(os.environ.get("REPRO_INSTRUCTIONS",
                                          DEFAULT_INSTRUCTIONS))
    if warmup is None:
        warmup = int(os.environ.get("REPRO_WARMUP", DEFAULT_WARMUP))
    return instructions, warmup


def suite(benchmarks: Optional[Iterable[str]] = None,
          default: Sequence[str] = BENCHMARK_NAMES) -> List[str]:
    """Resolve the benchmark list: explicit args > env > ``default``."""
    if benchmarks is not None:
        return list(benchmarks)
    env = os.environ.get("REPRO_BENCHMARKS", "")
    if env.strip().lower() == "all":
        return list(BENCHMARK_NAMES)
    if env.strip():
        return [b.strip() for b in env.split(",") if b.strip()]
    return list(default)


def jobs(value: Optional[int] = None) -> int:
    """Resolve the worker count: explicit arg > ``REPRO_JOBS`` env > 1.

    Figure drivers default to serial so their behavior (and output
    interleaving) is unchanged unless the user opts in via ``--jobs`` or
    ``REPRO_JOBS``.
    """
    return resolve_jobs(value, default=1)


#: memoized store handle so every figure in a ``figure all`` run shares
#: one SQLite connection; re-resolved when REPRO_STORE changes
_STORE = None
_STORE_ROOT: Optional[str] = None


def store():
    """The durable result store named by ``REPRO_STORE`` (None if unset).

    ``repro figure --store DIR`` exports the env var, so every figure
    driver transparently reads and writes the same store the job server
    uses (see DESIGN.md §13). The bench harness never calls this.
    """
    global _STORE, _STORE_ROOT

    root = os.environ.get("REPRO_STORE", "").strip() or None
    if root != _STORE_ROOT:
        if _STORE is not None:
            _STORE.close()
        _STORE = None
        _STORE_ROOT = root
        if root:
            from repro.service.store import ResultStore

            _STORE = ResultStore(root)
    return _STORE


def collect(policies: Sequence[str], benchmarks: Sequence[str],
            instructions: int, warmup: int, seed: int = 1,
            config: Optional[MachineConfig] = None,
            n_jobs: Optional[int] = None,
            ) -> Dict[str, Dict[str, SimulationStats]]:
    """{benchmark: {policy: stats}} through the on-disk result cache.

    Dispatches the grid via
    :func:`~repro.simulator.runner.run_suite_parallel` — cells fan out
    across ``n_jobs`` worker processes (default: the ``REPRO_JOBS``
    env, else serial) and every call emits a run manifest.
    """
    return run_suite_parallel(
        policies, benchmarks=benchmarks, instructions=instructions,
        warmup=warmup, config=config, seed=seed, jobs=jobs(n_jobs),
        label="experiment", store=store())


def speedup_pct(stats: SimulationStats, baseline: SimulationStats) -> float:
    """IPC speedup in percent (paper's y axis)."""
    return (stats.ipc / baseline.ipc - 1.0) * 100.0


def geomean_speedup_pct(rows: Dict[str, Dict[str, SimulationStats]],
                        policy: str, baseline: str = "baseline") -> float:
    """Geomean IPC speedup of a policy, in percent."""
    ratios = [by[policy].ipc / by[baseline].ipc for by in rows.values()]
    return (geomean(ratios) - 1.0) * 100.0


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Fixed-width text table (what the benches print)."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def speedup_bars_svg(result: Dict, policies: Sequence[str],
                     labels: Dict[str, str], title: str,
                     key: str = "speedups",
                     ylabel: str = "% IPC speedup") -> str:
    """Grouped-bar SVG for the per-benchmark speedup figures."""
    from repro.reporting_svg import grouped_bar_svg

    series = {
        labels.get(p, p): {bench: result[key][bench][p]
                           for bench in result["benchmarks"]}
        for p in policies
    }
    return grouped_bar_svg(series, title=title, ylabel=ylabel)

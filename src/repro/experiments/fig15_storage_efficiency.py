"""Figure 15: IPC gain vs total front-end storage (BTB + prefetch table).

Every configuration is normalized to FDIP with the smallest BTB; the x
axis is the BTB budget plus the prefetcher budget. The paper's claim:
some PDIP configuration always beats spending the same storage on more
BTB, while EIP is always a worse use of storage than BTB scaling.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments import common
from repro.reporting import scatter_chart
from repro.experiments.fig14_btb_sensitivity import (
    BTB_SIZES,
    btb_kb,
    run as run_btb_sweep,
)
from repro.utils import geomean

SERIES = ("baseline", "pdip_11", "pdip_44", "eip_46")
LABELS = {"baseline": "FDIP", "pdip_11": "PDIP(11)",
          "pdip_44": "PDIP(44)", "eip_46": "EIP(46)"}
PREFETCHER_KB = {"baseline": 0.0, "pdip_11": 10.875, "pdip_44": 43.5,
                 "eip_46": 46.0}


def run(instructions: Optional[int] = None, warmup: Optional[int] = None,
        benchmarks: Optional[Iterable[str]] = None, seed: int = 1,
        btb_sizes: Iterable[int] = BTB_SIZES) -> dict:
    """Compute this artifact's data series (see the module docstring)."""
    sweep = run_btb_sweep(instructions=instructions, warmup=warmup,
                          benchmarks=benchmarks, seed=seed,
                          btb_sizes=btb_sizes)
    benches = sweep["benchmarks"]
    smallest = sweep["btb_sizes"][0]
    ref = sweep["ipcs"][smallest]["baseline"]
    points = {label: [] for label in SERIES}
    for entries in sweep["btb_sizes"]:
        for policy in SERIES:
            per_bench = sweep["ipcs"][entries].get(policy)
            if per_bench is None:
                continue
            gain = (geomean([per_bench[b] / ref[b] for b in benches])
                    - 1.0) * 100.0
            storage = btb_kb(entries) + PREFETCHER_KB[policy]
            points[policy].append(
                {"btb_entries": entries, "storage_kb": storage,
                 "gain_pct": gain})
    return {"benchmarks": benches, "points": points}


def render(result: dict) -> str:
    """Render the result as the paper-style text output."""
    rows = []
    for policy in SERIES:
        for pt in result["points"][policy]:
            rows.append([LABELS[policy], "%dK" % (pt["btb_entries"] // 1024),
                         "%.1f" % pt["storage_kb"],
                         "%+.2f%%" % pt["gain_pct"]])
    table = common.format_table(
        ["policy", "BTB", "storage KB", "gain vs 4K-BTB FDIP"], rows,
        title="Figure 15: IPC gain vs front-end storage budget")
    chart = scatter_chart(
        {LABELS[p]: [(pt["storage_kb"], pt["gain_pct"])
                     for pt in result["points"][p]]
         for p in SERIES},
        title="gain vs storage", xlabel="BTB + prefetcher KB",
        ylabel="% IPC gain")
    return table + "\n\n" + chart


def render_svg(result: dict) -> str:
    """SVG version of the storage-efficiency scatter."""
    from repro.reporting_svg import line_svg

    series = {
        LABELS[p]: [(pt["storage_kb"], pt["gain_pct"])
                    for pt in result["points"][p]]
        for p in SERIES
    }
    return line_svg(series, title="Figure 15: gain vs storage",
                    xlabel="BTB + prefetcher KB",
                    ylabel="% gain vs 4K-BTB FDIP")


def main() -> None:
    """Entry point: run with env-controlled budgets and print."""
    print(render(run()))


if __name__ == "__main__":
    main()

"""Figure 9: MPKI at L1-I, L2-I, L2-D, and L3 on the baseline.

The paper reports averages of 85.9 (L1-I), 12.4 (L2-I) and 3.06 (L3)
across the suite — the large-code-footprint regime every other result
depends on.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments import common

PAPER_AVERAGES = {"l1i": 85.9, "l2i": 12.4, "l3": 3.06}


def run(instructions: Optional[int] = None, warmup: Optional[int] = None,
        benchmarks: Optional[Iterable[str]] = None, seed: int = 1) -> dict:
    """Compute this artifact's data series (see the module docstring)."""
    instructions, warmup = common.budget(instructions, warmup)
    benches = common.suite(benchmarks)
    grid = common.collect(("baseline",), benches, instructions, warmup,
                          seed=seed)
    rows = {}
    for bench, by in grid.items():
        st = by["baseline"]
        rows[bench] = {"l1i": st.l1i_mpki, "l2i": st.l2i_mpki,
                       "l2d": st.l2d_mpki, "l3": st.l3_mpki}
    avg = {k: sum(r[k] for r in rows.values()) / len(rows)
           for k in ("l1i", "l2i", "l2d", "l3")}
    return {"benchmarks": benches, "rows": rows, "average": avg,
            "paper_average": PAPER_AVERAGES}


def render(result: dict) -> str:
    """Render the result as the paper-style text output."""
    headers = ["benchmark", "L1I", "L2I", "L2D", "L3"]
    rows = [[b] + ["%.1f" % result["rows"][b][k]
                   for k in ("l1i", "l2i", "l2d", "l3")]
            for b in result["benchmarks"]]
    rows.append(["Average"] + ["%.1f" % result["average"][k]
                               for k in ("l1i", "l2i", "l2d", "l3")])
    return common.format_table(
        headers, rows, title="Figure 9: baseline MPKI per cache level")


def render_svg(result: dict) -> str:
    """SVG version of the per-level MPKI bars."""
    from repro.reporting_svg import grouped_bar_svg

    series = {
        level.upper(): {b: result["rows"][b][level]
                        for b in result["benchmarks"]}
        for level in ("l1i", "l2i", "l2d", "l3")
    }
    return grouped_bar_svg(series, title="Figure 9: baseline MPKI",
                           ylabel="MPKI")


def main() -> None:
    """Entry point: run with env-controlled budgets and print."""
    print(render(run()))


if __name__ == "__main__":
    main()

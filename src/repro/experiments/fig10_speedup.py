"""Figure 10: the headline speedup comparison.

Series (paper order): EIP(46), EIP-Analytical, EMISSARY, PDIP(44),
PDIP(44)+EMISSARY, plus the PDIP(44)-zero-cost markers. Paper geomeans:
EIP(46) 1.5%, PDIP(44) 3.15%, PDIP(44)+EMISSARY 3.7%; PDIP(44)+EMISSARY
captures 72.5% of FEC-Ideal.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments import common
from repro.reporting import hbar_chart

POLICIES = ("eip_46", "eip_analytical", "emissary", "pdip_44",
            "pdip_44_emissary", "pdip_44_zero_cost")
LABELS = {"eip_46": "EIP(46)", "eip_analytical": "EIP-Analytical",
          "emissary": "EMISSARY", "pdip_44": "PDIP(44)",
          "pdip_44_emissary": "PDIP+EMSRY",
          "pdip_44_zero_cost": "PDIP Zero cost"}


def run(instructions: Optional[int] = None, warmup: Optional[int] = None,
        benchmarks: Optional[Iterable[str]] = None, seed: int = 1) -> dict:
    """Compute this artifact's data series (see the module docstring)."""
    instructions, warmup = common.budget(instructions, warmup)
    benches = common.suite(benchmarks)
    grid = common.collect(("baseline", "fec_ideal") + POLICIES, benches,
                          instructions, warmup, seed=seed)
    speedups = {
        bench: {p: common.speedup_pct(by[p], by["baseline"])
                for p in POLICIES + ("fec_ideal",)}
        for bench, by in grid.items()
    }
    geomeans = {p: common.geomean_speedup_pct(grid, p)
                for p in POLICIES + ("fec_ideal",)}
    ideal = geomeans["fec_ideal"]
    capture = (geomeans["pdip_44_emissary"] / ideal * 100.0
               if ideal > 0 else 0.0)
    return {"benchmarks": benches, "speedups": speedups,
            "geomeans": geomeans, "fec_ideal_capture_pct": capture}


def render(result: dict) -> str:
    """Render the result as the paper-style text output."""
    headers = ["benchmark"] + [LABELS[p] for p in POLICIES]
    rows = []
    for bench in result["benchmarks"]:
        rows.append([bench] + ["%+.2f%%" % result["speedups"][bench][p]
                               for p in POLICIES])
    rows.append(["Geomean"] + ["%+.2f%%" % result["geomeans"][p]
                               for p in POLICIES])
    table = common.format_table(
        headers, rows, title="Figure 10: IPC speedup over the FDIP baseline")
    extra = ("\nPDIP(44)+EMISSARY captures %.1f%% of FEC-Ideal "
             "(paper: 72.5%%)" % result["fec_ideal_capture_pct"])
    chart = hbar_chart(
        {"geomean": {LABELS[p]: result["geomeans"][p] for p in POLICIES}},
        title="geomean speedup over FDIP")
    return table + extra + "\n\n" + chart


def render_svg(result: dict) -> str:
    """SVG version of the grouped-bar figure."""
    return common.speedup_bars_svg(result, POLICIES, LABELS,
                                   "Figure 10: IPC speedup over FDIP")


def main() -> None:
    """Entry point: run with env-controlled budgets and print."""
    print(render(run()))


if __name__ == "__main__":
    main()

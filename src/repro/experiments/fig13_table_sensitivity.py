"""Figure 13: PDIP table size sensitivity (11 / 22 / 43.5 / 87 KB).

The paper varies associativity 2-16 at fixed 512 sets and sees strong
scaling up to 43.5 KB, diminishing beyond.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments import common

POLICIES = ("pdip_11", "pdip_22", "pdip_44", "pdip_87")
LABELS = {"pdip_11": "PDIP(11)", "pdip_22": "PDIP(22)",
          "pdip_44": "PDIP(44)", "pdip_87": "PDIP(87)"}


def run(instructions: Optional[int] = None, warmup: Optional[int] = None,
        benchmarks: Optional[Iterable[str]] = None, seed: int = 1) -> dict:
    """Compute this artifact's data series (see the module docstring)."""
    instructions, warmup = common.budget(instructions, warmup)
    benches = common.suite(benchmarks)
    grid = common.collect(("baseline",) + POLICIES, benches,
                          instructions, warmup, seed=seed)
    speedups = {
        bench: {p: common.speedup_pct(by[p], by["baseline"])
                for p in POLICIES}
        for bench, by in grid.items()
    }
    geomeans = {p: common.geomean_speedup_pct(grid, p) for p in POLICIES}
    return {"benchmarks": benches, "speedups": speedups, "geomeans": geomeans}


def render(result: dict) -> str:
    """Render the result as the paper-style text output."""
    headers = ["benchmark"] + [LABELS[p] for p in POLICIES]
    rows = []
    for bench in result["benchmarks"]:
        rows.append([bench] + ["%+.2f%%" % result["speedups"][bench][p]
                               for p in POLICIES])
    rows.append(["Geomean"] + ["%+.2f%%" % result["geomeans"][p]
                               for p in POLICIES])
    return common.format_table(
        headers, rows, title="Figure 13: PDIP table size sensitivity")


def render_svg(result: dict) -> str:
    """SVG version of the grouped-bar figure."""
    return common.speedup_bars_svg(result, POLICIES, LABELS,
                                   "Figure 13: PDIP table size sensitivity")


def main() -> None:
    """Entry point: run with env-controlled budgets and print."""
    print(render(run()))


if __name__ == "__main__":
    main()

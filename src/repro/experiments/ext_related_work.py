"""EXTENSION (not a paper figure): related-work prefetcher comparison.

The paper's Section 8 discusses simpler and differently-shaped
prefetchers qualitatively; this experiment puts two of them on the same
simulator — a sequential next-line prefetcher (FNL-style) and RDIP
(return-address-stack directed) — next to EIP and PDIP, plus the paper's
evaluated-and-dropped PDIP path-information variant (Section 5.2).

Expected shape: next-line helps the sequential fraction only; RDIP
captures context-correlated misses but triggers too coarsely; PDIP wins
because it targets exactly the misses FDIP exposes.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments import common
from repro.reporting import hbar_chart

POLICIES = ("next_line", "rdip", "eip_46", "pdip_44", "pdip_44_path")
LABELS = {"next_line": "Next-line", "rdip": "RDIP", "eip_46": "EIP(46)",
          "pdip_44": "PDIP(44)", "pdip_44_path": "PDIP(44)+path"}


def run(instructions: Optional[int] = None, warmup: Optional[int] = None,
        benchmarks: Optional[Iterable[str]] = None, seed: int = 1) -> dict:
    """Compute this artifact's data series (see the module docstring)."""
    instructions, warmup = common.budget(instructions, warmup)
    benches = common.suite(benchmarks, default=common.SWEEP_BENCHMARKS)
    grid = common.collect(("baseline",) + POLICIES, benches,
                          instructions, warmup, seed=seed)
    speedups = {
        bench: {p: common.speedup_pct(by[p], by["baseline"])
                for p in POLICIES}
        for bench, by in grid.items()
    }
    geomeans = {p: common.geomean_speedup_pct(grid, p) for p in POLICIES}
    metrics = {
        p: {
            "ppki": sum(grid[b][p].ppki for b in benches) / len(benches),
            "accuracy_pct": 100.0 * sum(grid[b][p].prefetch_accuracy
                                        for b in benches) / len(benches),
        }
        for p in POLICIES
    }
    return {"benchmarks": benches, "speedups": speedups,
            "geomeans": geomeans, "metrics": metrics}


def render(result: dict) -> str:
    """Render the result as the paper-style text output."""
    headers = ["benchmark"] + [LABELS[p] for p in POLICIES]
    rows = []
    for bench in result["benchmarks"]:
        rows.append([bench] + ["%+.2f%%" % result["speedups"][bench][p]
                               for p in POLICIES])
    rows.append(["Geomean"] + ["%+.2f%%" % result["geomeans"][p]
                               for p in POLICIES])
    table = common.format_table(
        headers, rows,
        title="Extension: related-work prefetchers on the same machine")
    mrows = [[LABELS[p], "%.1f" % result["metrics"][p]["ppki"],
              "%.0f" % result["metrics"][p]["accuracy_pct"]]
             for p in POLICIES]
    mtable = common.format_table(["policy", "PPKI", "accuracy %"], mrows)
    chart = hbar_chart(
        {"geomean": {LABELS[p]: result["geomeans"][p] for p in POLICIES}},
        title="geomean speedup over FDIP")
    return table + "\n\n" + mtable + "\n\n" + chart


def render_svg(result: dict) -> str:
    """SVG version of the related-work comparison bars."""
    return common.speedup_bars_svg(
        result, POLICIES, LABELS,
        "Extension: related-work prefetchers")


def main() -> None:
    """Entry point: run with env-controlled budgets and print."""
    print(render(run()))


if __name__ == "__main__":
    main()

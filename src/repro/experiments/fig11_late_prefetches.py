"""Figure 11: % of late prefetches (partial hits), PDIP(44) vs EIP(46).

The paper reports an average of 12.6% late for PDIP — the heavy majority
of its prefetches are timely.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments import common

POLICIES = ("pdip_44", "eip_46")


def run(instructions: Optional[int] = None, warmup: Optional[int] = None,
        benchmarks: Optional[Iterable[str]] = None, seed: int = 1) -> dict:
    """Compute this artifact's data series (see the module docstring)."""
    instructions, warmup = common.budget(instructions, warmup)
    benches = common.suite(benchmarks)
    grid = common.collect(POLICIES, benches, instructions, warmup, seed=seed)
    rows = {
        bench: {p: 100.0 * by[p].prefetch_late_fraction for p in POLICIES}
        for bench, by in grid.items()
    }
    avg = {p: sum(r[p] for r in rows.values()) / len(rows) for p in POLICIES}
    return {"benchmarks": benches, "rows": rows, "average": avg}


def render(result: dict) -> str:
    """Render the result as the paper-style text output."""
    headers = ["benchmark", "PDIP(44) % late", "EIP(46) % late"]
    rows = [[b, "%.1f" % result["rows"][b]["pdip_44"],
             "%.1f" % result["rows"][b]["eip_46"]]
            for b in result["benchmarks"]]
    rows.append(["Average", "%.1f" % result["average"]["pdip_44"],
                 "%.1f" % result["average"]["eip_46"]])
    return common.format_table(headers, rows,
                               title="Figure 11: late prefetches (%)")


def render_svg(result: dict) -> str:
    """SVG version of the late-prefetch bars."""
    from repro.reporting_svg import grouped_bar_svg

    series = {
        "PDIP(44)": {b: result["rows"][b]["pdip_44"]
                     for b in result["benchmarks"]},
        "EIP(46)": {b: result["rows"][b]["eip_46"]
                    for b in result["benchmarks"]},
    }
    return grouped_bar_svg(series, title="Figure 11: late prefetches",
                           ylabel="% late")


def main() -> None:
    """Entry point: run with env-controlled budgets and print."""
    print(render(run()))


if __name__ == "__main__":
    main()

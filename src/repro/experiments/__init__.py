"""Experiment drivers: one module per paper figure/table.

Every driver exposes ``run(...) -> dict`` returning the figure's series
keyed the way the paper labels them, and ``render(result) -> str``
producing the text table the benchmark harness prints. Budgets come from
``REPRO_INSTRUCTIONS`` / ``REPRO_WARMUP`` / ``REPRO_BENCHMARKS``
environment variables when set (see :mod:`repro.experiments.common`).
"""

from repro.experiments import common

__all__ = ["common"]

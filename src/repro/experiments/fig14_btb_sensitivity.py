"""Figure 14: IPC gain of the prefetch policies across BTB sizes.

Each point compares a policy against the FDIP baseline *at the same BTB
size*. The paper's shape: small BTBs leave more headroom (PDIP(44) gains
4.32% at 4K entries vs 3.15% at 8K), the PDIP variants converge at large
BTBs but stay positive (>1% even at 64K), and EIP trails everywhere.

This sweep is heavy, so it defaults to the 8-benchmark
:data:`repro.experiments.common.SWEEP_BENCHMARKS` subset
(``REPRO_BENCHMARKS=all`` runs the full suite).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.branch.btb import BTB
from repro.experiments import common
from repro.simulator.config import MachineConfig
from repro.utils import geomean

BTB_SIZES = (4096, 8192, 65536)
POLICIES = ("eip_46", "pdip_11", "pdip_44", "pdip_44_emissary")
LABELS = {"eip_46": "EIP(46)", "pdip_11": "PDIP(11)",
          "pdip_44": "PDIP(44)", "pdip_44_emissary": "PDIP(44)+EMSRY"}


def btb_kb(entries: int) -> float:
    """BTB storage in KB at the paper's bits-per-entry pricing."""
    return entries * BTB.BITS_PER_ENTRY / 8.0 / 1024.0


def run(instructions: Optional[int] = None, warmup: Optional[int] = None,
        benchmarks: Optional[Iterable[str]] = None, seed: int = 1,
        btb_sizes: Iterable[int] = BTB_SIZES) -> dict:
    """Compute this artifact's data series (see the module docstring)."""
    instructions, warmup = common.budget(instructions, warmup)
    benches = common.suite(benchmarks, default=common.SWEEP_BENCHMARKS)
    gains = {}   # {btb: {policy: geomean % gain}}
    ipcs = {}    # {btb: {policy/baseline: {bench: ipc}}}
    for entries in btb_sizes:
        config = MachineConfig(btb_entries=entries)
        grid = common.collect(("baseline",) + POLICIES, benches,
                              instructions, warmup, seed=seed, config=config)
        per_policy = {policy: {bench: grid[bench][policy].ipc
                               for bench in benches}
                      for policy in ("baseline",) + POLICIES}
        ipcs[entries] = per_policy
        gains[entries] = {
            p: (geomean([per_policy[p][b] / per_policy["baseline"][b]
                         for b in benches]) - 1.0) * 100.0
            for p in POLICIES
        }
    return {"benchmarks": benches, "btb_sizes": list(btb_sizes),
            "gains": gains, "ipcs": ipcs}


def render(result: dict) -> str:
    """Render the result as the paper-style text output."""
    headers = ["BTB entries", "BTB KB"] + [LABELS[p] for p in POLICIES]
    rows = []
    for entries in result["btb_sizes"]:
        rows.append(["%dK" % (entries // 1024), "%.0f" % btb_kb(entries)]
                    + ["%+.2f%%" % result["gains"][entries][p]
                       for p in POLICIES])
    return common.format_table(
        headers, rows,
        title="Figure 14: geomean IPC gain at each BTB size "
              "(vs same-BTB baseline)")


def render_svg(result: dict) -> str:
    """SVG version of the BTB-sensitivity lines."""
    from repro.reporting_svg import line_svg

    series = {
        LABELS[p]: [(entries / 1024.0, result["gains"][entries][p])
                    for entries in result["btb_sizes"]]
        for p in POLICIES
    }
    return line_svg(series, title="Figure 14: gain vs BTB size",
                    xlabel="BTB entries (K)", ylabel="% IPC gain")


def main() -> None:
    """Entry point: run with env-controlled budgets and print."""
    print(render(run()))


if __name__ == "__main__":
    main()

"""Ablation studies for the design choices DESIGN.md calls out.

Each function sweeps one knob the paper discusses and returns the same
``{label: geomean % speedup}`` shape:

* :func:`insertion_probability` — Section 5.3 (paper picked 0.25 among
  1→0.03 at 100M instructions; the scaled reproduction defaults to 1.0).
* :func:`candidate_filter` — Section 5.3's two pollution filters
  (high-cost only, back-end-stall only, both, neither).
* :func:`table_geometry` — targets-per-entry and mask width (Section 5.1
  chose 2 targets + 4-bit mask).
* :func:`ftq_depth` — Ishii et al.'s observation that prefetcher gains
  shrink as the FTQ deepens.
* :func:`emissary_knobs` — protected ways and promotion probability.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.experiments import common
from repro.simulator.config import MachineConfig
from repro.simulator.policies import PolicySpec
from repro.simulator.runner import run_benchmark
from repro.utils import geomean

#: ablations run on a fast, representative subset by default
DEFAULT_BENCHMARKS = ("cassandra", "tpcc", "verilator")

#: ablations default to a half-size budget: they compare *trends* across
#: variants, which converge earlier than the absolute figures
ABLATION_INSTRUCTIONS = 200_000
ABLATION_WARMUP = 60_000


def _budget(instructions, warmup):
    import os

    if instructions is None:
        instructions = int(os.environ.get("REPRO_INSTRUCTIONS",
                                          ABLATION_INSTRUCTIONS))
    if warmup is None:
        warmup = int(os.environ.get("REPRO_WARMUP", ABLATION_WARMUP))
    return instructions, warmup


def _geomean_speedup(benches: Sequence[str], spec, base_spec,
                     instructions: int, warmup: int, seed: int,
                     config: Optional[MachineConfig] = None,
                     base_config: Optional[MachineConfig] = None) -> float:
    ratios = []
    for bench in benches:
        test = run_benchmark(bench, spec, instructions=instructions,
                             warmup=warmup, seed=seed, config=config)
        base = run_benchmark(bench, base_spec, instructions=instructions,
                             warmup=warmup, seed=seed,
                             config=base_config if base_config is not None
                             else config)
        ratios.append(test.ipc / base.ipc)
    return (geomean(ratios) - 1.0) * 100.0


def _pdip_spec(name: str, **overrides) -> PolicySpec:
    return PolicySpec(name, name, pdip_kb=44, pdip_overrides=overrides)


def insertion_probability(instructions: Optional[int] = None,
                          warmup: Optional[int] = None,
                          benchmarks: Optional[Iterable[str]] = None,
                          seed: int = 1) -> Dict[str, float]:
    """Sweep the PDIP insertion probability (Section 5.3)."""
    instructions, warmup = _budget(instructions, warmup)
    benches = common.suite(benchmarks, default=DEFAULT_BENCHMARKS)
    base = PolicySpec("baseline", "baseline")
    out = {}
    for prob in (0.03, 0.125, 0.25, 0.5, 1.0):
        spec = _pdip_spec("pdip_ins_%g" % prob, insert_prob=prob)
        out["p=%g" % prob] = _geomean_speedup(
            benches, spec, base, instructions, warmup, seed)
    return out


def candidate_filter(instructions: Optional[int] = None,
                     warmup: Optional[int] = None,
                     benchmarks: Optional[Iterable[str]] = None,
                     seed: int = 1) -> Dict[str, float]:
    """Sweep the PDIP candidate filters (Section 5.3)."""
    instructions, warmup = _budget(instructions, warmup)
    benches = common.suite(benchmarks, default=DEFAULT_BENCHMARKS)
    base = PolicySpec("baseline", "baseline")
    variants = {
        "high-cost + backend-stall (paper)": dict(),
        "high-cost only": dict(require_backend_stall=False),
        "backend-stall only": dict(require_high_cost=False),
        "all FEC lines": dict(require_high_cost=False,
                              require_backend_stall=False),
    }
    out = {}
    for label, overrides in variants.items():
        spec = _pdip_spec("pdip_filter_%d" % len(out), **overrides)
        out[label] = _geomean_speedup(benches, spec, base, instructions,
                                      warmup, seed)
    return out


def table_geometry(instructions: Optional[int] = None,
                   warmup: Optional[int] = None,
                   benchmarks: Optional[Iterable[str]] = None,
                   seed: int = 1) -> Dict[str, float]:
    """Sweep targets-per-entry and mask width (Section 5.1)."""
    instructions, warmup = _budget(instructions, warmup)
    benches = common.suite(benchmarks, default=DEFAULT_BENCHMARKS)
    base = PolicySpec("baseline", "baseline")
    variants = {
        "2 targets, 4-bit mask (paper)": dict(),
        "1 target, 4-bit mask": dict(targets_per_entry=1),
        "4 targets, 4-bit mask": dict(targets_per_entry=4),
        "2 targets, no mask": dict(mask_bits=0),
        "2 targets, 8-bit mask": dict(mask_bits=8),
    }
    out = {}
    for label, overrides in variants.items():
        spec = _pdip_spec("pdip_geom_%d" % len(out), **overrides)
        out[label] = _geomean_speedup(benches, spec, base, instructions,
                                      warmup, seed)
    return out


def ftq_depth(instructions: Optional[int] = None,
              warmup: Optional[int] = None,
              benchmarks: Optional[Iterable[str]] = None,
              seed: int = 1) -> Dict[str, float]:
    """PDIP gain at several FTQ depths (paper baseline: 24 entries)."""
    instructions, warmup = _budget(instructions, warmup)
    benches = common.suite(benchmarks, default=DEFAULT_BENCHMARKS)
    base = PolicySpec("baseline", "baseline")
    pdip = _pdip_spec("pdip_ftq")
    out = {}
    for depth in (8, 16, 24, 48):
        config = MachineConfig(ftq_depth=depth,
                               fec_wake_window=depth)
        out["ftq=%d" % depth] = _geomean_speedup(
            benches, pdip, base, instructions, warmup, seed, config=config)
    return out


def emissary_knobs(instructions: Optional[int] = None,
                   warmup: Optional[int] = None,
                   benchmarks: Optional[Iterable[str]] = None,
                   seed: int = 1) -> Dict[str, float]:
    """EMISSARY protected-ways / promotion-probability sweep.

    Sweeps via dedicated PolicySpecs is not possible (the knobs live on
    the replacement policy), so this builds machines directly and runs
    uncached.
    """
    from repro.memory.replacement import EmissaryPolicy
    from repro.simulator.policies import build_machine, get_policy
    from repro.workloads.generator import generate_layout
    from repro.workloads.profiles import get_profile

    instructions, warmup = _budget(instructions, warmup)
    benches = common.suite(benchmarks, default=DEFAULT_BENCHMARKS)
    out = {}
    variants = [(4, 0.25), (8, 0.25), (12, 0.25), (8, 1 / 32), (8, 1.0)]
    for ways, prob in variants:
        ratios = []
        for bench in benches:
            profile = get_profile(bench)
            layout = generate_layout(profile, seed=seed)
            base = run_benchmark(bench, "baseline",
                                 instructions=instructions, warmup=warmup,
                                 seed=seed)
            machine = build_machine(layout, profile, get_policy("emissary"),
                                    seed=seed)
            machine.hierarchy.l2_policy.protected_ways = ways
            machine.hierarchy.l2_policy.promote_prob = prob
            stats = machine.run(instructions, warmup=warmup)
            ratios.append(stats.ipc / base.ipc)
        out["ways=%d p=%.3f" % (ways, prob)] = (geomean(ratios) - 1.0) * 100.0
    return out


def itlb(instructions: Optional[int] = None,
         warmup: Optional[int] = None,
         benchmarks: Optional[Iterable[str]] = None,
         seed: int = 1) -> Dict[str, float]:
    """PDIP gain with and without an iTLB in the fetch path.

    Section 4.2: the paper experimented with iTLB misses as trackable
    trigger events and saw no gain — because iTLB-exposed stalls cluster
    on the same resteer paths PDIP already covers. This ablation checks
    that PDIP's gain is stable when the iTLB substrate is enabled.
    """
    from repro.memory.hierarchy import HierarchyConfig

    instructions, warmup = _budget(instructions, warmup)
    benches = common.suite(benchmarks, default=DEFAULT_BENCHMARKS)
    base = PolicySpec("baseline", "baseline")
    pdip = _pdip_spec("pdip_itlb")
    out = {}
    for label, enabled in (("no iTLB (paper baseline)", False),
                           ("64-entry iTLB, 25-cycle walk", True)):
        config = MachineConfig(hierarchy=HierarchyConfig(itlb_enabled=enabled))
        out[label] = _geomean_speedup(benches, pdip, base, instructions,
                                      warmup, seed, config=config)
    return out


def render(result: Dict[str, float], title: str) -> str:
    """Render the result as the paper-style text output."""
    rows = [[label, "%+.2f%%" % value] for label, value in result.items()]
    return common.format_table(["variant", "geomean speedup"], rows,
                               title=title)

"""Figure 3: speedup of prior techniques over the FDIP baseline.

Series (paper order): 2X IL1, EMISSARY, EIP-Analytical, EIP+EMISSARY,
FEC-Ideal — per benchmark plus the geomean. The paper's headline shape:
EIP-Analytical > EMISSARY > 2X IL1, EIP+EMISSARY *loses* synergy, and
FEC-Ideal towers over everything.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments import common

POLICIES = ("2x_il1", "emissary", "eip_analytical", "eip_46_emissary",
            "fec_ideal")
LABELS = {"2x_il1": "2X IL1", "emissary": "EMISSARY",
          "eip_analytical": "EIP-Analytical",
          "eip_46_emissary": "EIP+EMISSARY", "fec_ideal": "FEC-Ideal"}


def run(instructions: Optional[int] = None, warmup: Optional[int] = None,
        benchmarks: Optional[Iterable[str]] = None, seed: int = 1) -> dict:
    """Compute this artifact's data series (see the module docstring)."""
    instructions, warmup = common.budget(instructions, warmup)
    benches = common.suite(benchmarks)
    grid = common.collect(("baseline",) + POLICIES, benches,
                          instructions, warmup, seed=seed)
    speedups = {
        bench: {p: common.speedup_pct(by[p], by["baseline"])
                for p in POLICIES}
        for bench, by in grid.items()
    }
    geomeans = {p: common.geomean_speedup_pct(grid, p) for p in POLICIES}
    return {"benchmarks": benches, "speedups": speedups,
            "geomeans": geomeans}


def render(result: dict) -> str:
    """Render the result as the paper-style text output."""
    headers = ["benchmark"] + [LABELS[p] for p in POLICIES]
    rows = []
    for bench in result["benchmarks"]:
        rows.append([bench] + ["%+.2f%%" % result["speedups"][bench][p]
                               for p in POLICIES])
    rows.append(["Geomean"] + ["%+.2f%%" % result["geomeans"][p]
                               for p in POLICIES])
    return common.format_table(
        headers, rows,
        title="Figure 3: prior techniques, IPC speedup over FDIP")


def render_svg(result: dict) -> str:
    """SVG version of the grouped-bar figure."""
    return common.speedup_bars_svg(result, POLICIES, LABELS,
                                   "Figure 3: prior techniques")


def main() -> None:
    """Entry point: run with env-controlled budgets and print."""
    print(render(run()))


if __name__ == "__main__":
    main()

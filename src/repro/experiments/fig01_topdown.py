"""Figure 1: top-down issue-slot breakdown of cassandra on the baseline.

The paper reports (Alder Lake + VTune): Retiring 16.9%, Front-End Bound
53.6%, Bad Speculation 10.6%, Back-End Bound 18.9%.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments import common
from repro.reporting import stacked_pct_bar
from repro.simulator.runner import run_benchmark

BENCHMARK = "cassandra"

PAPER = {
    "retiring": 16.9,
    "frontend_bound": 53.6,
    "bad_speculation": 10.6,
    "backend_bound": 18.9,
}


def run(instructions: Optional[int] = None, warmup: Optional[int] = None,
        seed: int = 1) -> dict:
    """Compute this artifact's data series (see the module docstring)."""
    instructions, warmup = common.budget(instructions, warmup)
    stats = run_benchmark(BENCHMARK, "baseline", instructions=instructions,
                          warmup=warmup, seed=seed)
    measured = {k: 100.0 * v for k, v in stats.topdown.items()}
    return {"benchmark": BENCHMARK, "measured": measured, "paper": PAPER}


def render(result: dict) -> str:
    """Render the result as the paper-style text output."""
    rows = [
        (bucket, result["paper"][bucket], result["measured"][bucket])
        for bucket in ("retiring", "frontend_bound", "bad_speculation",
                       "backend_bound")
    ]
    table = common.format_table(
        ["bucket", "paper %", "measured %"], rows,
        title="Figure 1: top-down slots, %s (baseline FDIP)"
              % result["benchmark"])
    chart = stacked_pct_bar(result["measured"], title="measured slots:")
    return table + "\n\n" + chart


def main() -> None:
    """Entry point: run with env-controlled budgets and print."""
    print(render(run()))


if __name__ == "__main__":
    main()

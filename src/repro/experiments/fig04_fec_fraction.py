"""Figure 4: FEC lines and the decode starvation they cause.

First bar: dynamic FEC lines as a fraction of all retired-path lines.
Second bar: decode-starvation cycles caused by FEC lines vs total decode
starvation. The paper's punchline: ~10% of lines cause ~62% of decode
starvation.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments import common


def run(instructions: Optional[int] = None, warmup: Optional[int] = None,
        benchmarks: Optional[Iterable[str]] = None, seed: int = 1) -> dict:
    """Compute this artifact's data series (see the module docstring)."""
    instructions, warmup = common.budget(instructions, warmup)
    benches = common.suite(benchmarks)
    grid = common.collect(("baseline",), benches, instructions, warmup,
                          seed=seed)
    rows = {}
    for bench, by in grid.items():
        st = by["baseline"]
        rows[bench] = {
            "fec_line_pct": 100.0 * st.fec_line_fraction,
            "fec_starvation_pct": 100.0 * st.fec_starvation_fraction,
        }
    avg = {
        "fec_line_pct": sum(r["fec_line_pct"] for r in rows.values()) / len(rows),
        "fec_starvation_pct": sum(r["fec_starvation_pct"]
                                  for r in rows.values()) / len(rows),
    }
    return {"benchmarks": benches, "rows": rows, "average": avg}


def render(result: dict) -> str:
    """Render the result as the paper-style text output."""
    headers = ["benchmark", "% FEC lines", "% FEC starvation"]
    rows = [[b, "%.1f" % result["rows"][b]["fec_line_pct"],
             "%.1f" % result["rows"][b]["fec_starvation_pct"]]
            for b in result["benchmarks"]]
    rows.append(["Average", "%.1f" % result["average"]["fec_line_pct"],
                 "%.1f" % result["average"]["fec_starvation_pct"]])
    return common.format_table(
        headers, rows,
        title="Figure 4: FEC line fraction and FEC-caused decode starvation")


def render_svg(result: dict) -> str:
    """SVG version: FEC line share vs FEC starvation share."""
    from repro.reporting_svg import grouped_bar_svg

    series = {
        "% FEC lines": {b: result["rows"][b]["fec_line_pct"]
                        for b in result["benchmarks"]},
        "% FEC starvation": {b: result["rows"][b]["fec_starvation_pct"]
                             for b in result["benchmarks"]},
    }
    return grouped_bar_svg(series, title="Figure 4: FEC concentration",
                           ylabel="%")


def main() -> None:
    """Entry point: run with env-controlled budgets and print."""
    print(render(run()))


if __name__ == "__main__":
    main()

"""Table 4: mean prefetches-per-kilo-instruction and prefetch accuracy.

Paper values: EIP(46) 22 PPKI / 44%, EIP-Analytical 40 / 45%, PDIP(11)
21 / 55%, PDIP(44) 32 / 54%. Key shape: the PDIP configurations are more
accurate than EIP at every rate, and EIP-Analytical roughly doubles
EIP(46)'s rate without improving accuracy.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments import common

POLICIES = ("eip_46", "eip_analytical", "pdip_11", "pdip_44")
LABELS = {"eip_46": "EIP(46)", "eip_analytical": "EIP-Analytical",
          "pdip_11": "PDIP(11)", "pdip_44": "PDIP(44)"}
PAPER = {"eip_46": (22, 44), "eip_analytical": (40, 45),
         "pdip_11": (21, 55), "pdip_44": (32, 54)}


def run(instructions: Optional[int] = None, warmup: Optional[int] = None,
        benchmarks: Optional[Iterable[str]] = None, seed: int = 1) -> dict:
    """Compute this artifact's data series (see the module docstring)."""
    instructions, warmup = common.budget(instructions, warmup)
    benches = common.suite(benchmarks)
    grid = common.collect(POLICIES, benches, instructions, warmup, seed=seed)
    means = {}
    for p in POLICIES:
        ppki = sum(grid[b][p].ppki for b in benches) / len(benches)
        acc = sum(grid[b][p].prefetch_accuracy for b in benches) / len(benches)
        means[p] = {"ppki": ppki, "accuracy_pct": 100.0 * acc}
    return {"benchmarks": benches, "means": means, "paper": PAPER}


def render(result: dict) -> str:
    """Render the result as the paper-style text output."""
    rows = []
    for p in POLICIES:
        paper_ppki, paper_acc = result["paper"][p]
        m = result["means"][p]
        rows.append([LABELS[p], paper_ppki, "%.1f" % m["ppki"],
                     paper_acc, "%.1f" % m["accuracy_pct"]])
    return common.format_table(
        ["policy", "paper PPKI", "ours PPKI", "paper acc%", "ours acc%"],
        rows, title="Table 4: mean PPKI and prefetch accuracy")


def main() -> None:
    """Entry point: run with env-controlled budgets and print."""
    print(render(run()))


if __name__ == "__main__":
    main()

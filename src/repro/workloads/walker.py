"""Dynamic execution over a :class:`~repro.workloads.layout.CodeLayout`.

Two walkers:

* :class:`PathWalker` — the architecturally-correct path. A seeded state
  machine (program counter + call stack + RNG) that emits one
  :class:`ControlFlowEvent` per basic block. Conditional outcomes are
  Bernoulli draws with the site's bias (loop back-edges are strongly
  taken, so trip counts are geometric); indirect targets are drawn from
  the site's weight table; calls push / returns pop the real stack.

* :class:`SpeculativePath` — wrong-path fetch after a front-end resteer.
  It walks from the mispredicted target following static-majority
  decisions (the direction/target a predictor with no dynamic state would
  choose) over a *copy* of the call stack, so wrong-path excursions never
  perturb the correct path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.utils import SLOTTED, derive_rng
from repro.workloads.layout import BasicBlock, BranchKind, CodeLayout


class ControlFlowEvent:
    """The outcome of executing one basic block on the correct path.

    Plain ``__slots__`` class (one is allocated per correct-path block,
    making construction a hot path).
    """

    __slots__ = ("block", "taken", "next_bid", "target_addr")

    def __init__(self, block: BasicBlock, taken: bool, next_bid: int,
                 target_addr: int):
        self.block = block
        self.taken = taken
        self.next_bid = next_bid
        #: byte address control transfers to (entry of ``next_bid``)
        self.target_addr = target_addr


class PathWalker:
    """Architecturally-correct path over a layout (deterministic per seed)."""

    # guard against pathological generated layouts; real stacks never get here
    MAX_STACK_DEPTH = 4096

    def __init__(self, layout: CodeLayout, seed: int = 0,
                 indirect_noise: float = 0.15):
        self.layout = layout
        self.rng = derive_rng(seed, "walker")
        self.indirect_noise = indirect_noise
        self.current = layout.functions[layout.entry_function].entry
        self.stack: List[int] = []
        self.events = 0
        self._pattern_pos: dict = {}

    def snapshot_stack(self) -> List[int]:
        """Copy of the call stack (for forking a speculative wrong path)."""
        return list(self.stack)

    def next_event(self) -> ControlFlowEvent:
        """Execute the current block and advance to its successor."""
        blocks = self.layout.blocks
        block = blocks[self.current]
        taken, next_bid = self._outcome(block)
        self.current = next_bid
        self.events += 1
        return ControlFlowEvent(block, taken, next_bid,
                                blocks[next_bid].addr)

    def _outcome(self, block: BasicBlock) -> "tuple[bool, int]":
        kind = block.kind
        if kind is BranchKind.FALLTHROUGH:
            return False, self._fallthrough(block)
        if kind is BranchKind.COND:
            if self.rng.random() < block.taken_bias:
                return True, block.taken_target
            return False, self._fallthrough(block)
        if kind is BranchKind.DIRECT:
            return True, block.taken_target
        if kind is BranchKind.CALL:
            self._push(block)
            return True, block.taken_target
        if kind is BranchKind.INDIRECT:
            return True, self._pick_indirect(block)
        if kind is BranchKind.INDIRECT_CALL:
            self._push(block)
            return True, self._pick_indirect(block)
        if kind is BranchKind.RETURN:
            if self.stack:
                return True, self.stack.pop()
            # stack underflow: restart the dispatcher loop
            return True, self.layout.functions[self.layout.entry_function].entry
        raise AssertionError("unhandled branch kind %r" % kind)

    def _push(self, block: BasicBlock) -> None:
        if block.fallthrough is None:
            raise ValueError("call block %d has no return point" % block.bid)
        if len(self.stack) >= self.MAX_STACK_DEPTH:
            raise RuntimeError("call stack overflow; layout is not acyclic")
        self.stack.append(block.fallthrough)

    def _pick_indirect(self, block: BasicBlock) -> int:
        """Next indirect target: per-site cyclic pattern with noise.

        The deterministic cycle models context-correlated dispatch (what
        ITTAGE exploits in real code); the noise term sets the asymptotic
        indirect mispredict rate.
        """
        pattern = block.indirect_pattern
        if pattern and self.rng.random() >= self.indirect_noise:
            pos = self._pattern_pos.get(block.bid, 0)
            self._pattern_pos[block.bid] = (pos + 1) % len(pattern)
            return block.indirect_targets[pattern[pos]]
        u = self.rng.random()
        for target, cum in zip(block.indirect_targets, block.indirect_weights):
            if u <= cum:
                return target
        return block.indirect_targets[-1]

    @staticmethod
    def _static_fallthrough(layout: CodeLayout, block: BasicBlock) -> Optional[int]:
        return block.fallthrough

    def _fallthrough(self, block: BasicBlock) -> int:
        if block.fallthrough is None:
            raise ValueError("block %d falls off function end" % block.bid)
        return block.fallthrough


def static_majority_successor(layout: CodeLayout, block: BasicBlock,
                              stack: List[int]) -> Optional[int]:
    """Successor a static (no dynamic state) predictor would follow.

    Used for wrong-path walking. ``stack`` is the speculative call stack
    and is mutated by CALL/RETURN. Returns None when the path dead-ends.
    """
    kind = block.kind
    if kind is BranchKind.FALLTHROUGH:
        return block.fallthrough
    if kind is BranchKind.COND:
        if block.taken_bias >= 0.5:
            return block.taken_target
        return block.fallthrough
    if kind is BranchKind.DIRECT:
        return block.taken_target
    if kind is BranchKind.CALL:
        if block.fallthrough is not None:
            stack.append(block.fallthrough)
        return block.taken_target
    if kind is BranchKind.INDIRECT:
        return _heaviest(block)
    if kind is BranchKind.INDIRECT_CALL:
        if block.fallthrough is not None:
            stack.append(block.fallthrough)
        return _heaviest(block)
    if kind is BranchKind.RETURN:
        if stack:
            return stack.pop()
        return None
    raise AssertionError("unhandled branch kind %r" % kind)


def _heaviest(block: BasicBlock) -> int:
    """Target with the largest weight (first in the cumulative table)."""
    best_idx = 0
    best_w = -1.0
    prev = 0.0
    for i, cum in enumerate(block.indirect_weights):
        w = cum - prev
        prev = cum
        if w > best_w:
            best_w = w
            best_idx = i
    return block.indirect_targets[best_idx]


class SpeculativePath:
    """Wrong-path fetch stream from a resteer target.

    ``start_bid`` is the block the (mis)predicted path enters;
    ``stack_snapshot`` is the correct-path call stack at the divergence
    point. ``step()`` yields consecutive wrong-path blocks until the path
    dead-ends or ``max_blocks`` is reached.
    """

    def __init__(self, layout: CodeLayout, start_bid: Optional[int],
                 stack_snapshot: List[int], max_blocks: int = 256):
        self.layout = layout
        self.current = start_bid
        self.stack = list(stack_snapshot)
        self.remaining = max_blocks

    def step(self) -> Optional[BasicBlock]:
        """Return the next wrong-path block, or None when exhausted."""
        if self.current is None or self.remaining <= 0:
            return None
        block = self.layout.blocks[self.current]
        self.remaining -= 1
        self.current = static_majority_successor(self.layout, block, self.stack)
        return block

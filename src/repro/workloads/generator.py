"""Synthetic program generator.

Builds a :class:`~repro.workloads.layout.CodeLayout` from a
:class:`~repro.workloads.profiles.WorkloadProfile`:

* Function 0 is a *dispatcher* that loops forever, indirect-calling one of
  the handler functions with Zipf-skewed weights — the synthetic analogue
  of a server's request loop.
* The call graph is a **tiered DAG**: handlers are tier 0, mid-tier
  functions occupy tiers 1..``call_depth``, and a pool of shared leaf
  functions (hot library code) is reachable from every tier. A call site
  in tier *d* targets a function in tier *d+1* (or a leaf). Tier sizes
  grow geometrically so deep tiers are wide and a request rarely revisits
  the same mid-tier function — that is what makes the instruction stream
  miss-heavy, like the paper's server workloads.
* Each non-leaf function gets ``call_sites_mean`` call sites on average
  (capped at 3), some of which are indirect calls with several candidate
  callees. Effective branching × depth controls the per-request footprint.
* Interior non-call blocks end in conditional branches (forward skips and
  loop back-edges with geometric trip counts), direct jumps, or indirect
  jumps (jump tables). Loop bodies never contain calls or indirect jumps:
  a call inside a stochastic loop multiplies the callee subtree by the
  trip count and cascades exponentially.
* Functions are placed at shuffled addresses with small gaps, so hot code
  is spread across the address space like a real binary.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.utils import LINE_SIZE, derive_rng
from repro.workloads.layout import BasicBlock, BranchKind, CodeLayout, Function
from repro.workloads.profiles import WorkloadProfile

#: Base address for the synthetic text segment.
TEXT_BASE = 0x0010_0000

#: Hard cap on call sites per function (keeps worst-case fan-out bounded).
MAX_CALL_SITES = 3


def _zipf_weights(n: int, alpha: float, rng: random.Random) -> List[float]:
    """Zipf(alpha) weights over n items, with ranks randomly assigned."""
    ranks = list(range(1, n + 1))
    rng.shuffle(ranks)
    return [1.0 / (r ** alpha) for r in ranks]


def _cumulative(weights: Sequence[float]) -> Tuple[float, ...]:
    total = float(sum(weights))
    acc = 0.0
    out = []
    for w in weights:
        acc += w / total
        out.append(acc)
    out[-1] = 1.0
    return tuple(out)


def _pick(rng: random.Random, items: Sequence[int], cum: Sequence[float]) -> int:
    u = rng.random()
    for item, c in zip(items, cum):
        if u <= c:
            return item
    return items[-1]


def _draw_bias(profile: WorkloadProfile, rng: random.Random) -> float:
    """Sample a taken-probability for a forward conditional branch site."""
    hi, med, _ = profile.bias_mix
    u = rng.random()
    if u < hi:
        bias = rng.uniform(0.005, 0.04)      # highly biased
    elif u < hi + med:
        bias = rng.uniform(0.06, 0.18)       # moderately biased
    else:
        bias = rng.uniform(0.40, 0.60)       # hard to predict
    if rng.random() < 0.5:
        bias = 1.0 - bias
    return bias


def _make_pattern(n_targets: int, weights: Sequence[float],
                  rng: random.Random, mono_frac: float) -> Tuple[int, ...]:
    """Cyclic target-index sequence for an indirect site.

    With probability ``mono_frac`` the site is *monomorphic* (a single
    dominant target, like the vast majority of real indirect call sites —
    trivially predictable via the BTB's last-target). Otherwise the site
    follows a short cycle (2-6 long) over its targets: short cycles are
    what history-based predictors like ITTAGE actually capture.
    """
    def draw() -> int:
        """Weighted target-index draw."""
        u = rng.random()
        for i, c in enumerate(weights):
            if u <= c:
                return i
        return n_targets - 1

    if n_targets == 1 or rng.random() < mono_frac:
        return (draw(),)
    # Polymorphic site: a dominant run with occasional excursions
    # (a,a,a,a,a,b[,c]). A last-target predictor rides the run and only
    # misses at the switch points, like real mostly-stable virtual calls,
    # while the excursions keep the excursion subtrees warm-ish and the
    # per-request paths diverse.
    run = rng.randint(3, 7)
    dominant = draw()
    pattern = [dominant] * run
    excursion = draw()
    if excursion == dominant:
        excursion = (dominant + 1) % n_targets
    pattern.append(excursion)
    if n_targets > 2 and rng.random() < 0.4:
        second = draw()
        if second not in (dominant, excursion):
            pattern.append(second)
    return tuple(pattern)


def _block_len(profile: WorkloadProfile, rng: random.Random) -> int:
    """Sample a basic-block length (instructions), geometric-ish around the mean."""
    mean = profile.mean_instructions_per_block
    n = 1 + int(rng.expovariate(1.0 / max(mean - 1, 1)))
    return min(n, profile.max_instructions_per_block)


class _CalleeDirectory:
    """Tier assignment and per-site callee sampling."""

    def __init__(self, profile: WorkloadProfile, rng: random.Random):
        self.profile = profile
        self.rng = rng
        nfuncs = profile.num_functions
        self.nhandlers = min(profile.num_handlers, max(1, nfuncs // 4))
        self.nleaves = min(profile.num_leaves, max(1, nfuncs // 4))
        self.first_leaf = nfuncs - self.nleaves
        depth = max(1, profile.call_depth)
        # mid-tier fids: geometric tier sizes, tiers 1..depth
        mids = list(range(1 + self.nhandlers, self.first_leaf))
        raw = [profile.tier_growth ** d for d in range(1, depth + 1)]
        total = sum(raw)
        self.tiers: List[List[int]] = [list(range(1, 1 + self.nhandlers))]
        start = 0
        for d, r in enumerate(raw):
            if d == depth - 1:
                chunk = mids[start:]
            else:
                size = max(1, int(round(len(mids) * r / total)))
                chunk = mids[start:start + size]
            start += len(chunk)
            self.tiers.append(chunk)
        # drop empty tiers at the end (tiny configs)
        while len(self.tiers) > 1 and not self.tiers[-1]:
            self.tiers.pop()
        self.leaf_fids = list(range(self.first_leaf, nfuncs))
        self.tier_of = {}
        for d, fids in enumerate(self.tiers):
            for fid in fids:
                self.tier_of[fid] = d
        for fid in self.leaf_fids:
            self.tier_of[fid] = len(self.tiers)  # leaves sit below the last tier
        # per-tier zipf popularity (hot/cold functions within a tier)
        self._tier_cum = []
        for fids in self.tiers:
            w = _zipf_weights(len(fids), profile.callee_zipf_alpha, rng)
            self._tier_cum.append(_cumulative(w))
        lw = _zipf_weights(len(self.leaf_fids), profile.callee_zipf_alpha, rng) \
            if self.leaf_fids else []
        self._leaf_cum = _cumulative(lw) if lw else ()

    def is_leaf(self, fid: int) -> bool:
        """True for shared leaf/library functions."""
        return fid >= self.first_leaf

    def sample_callee(self, caller_fid: int) -> Optional[int]:
        """Pick a callee for a call site in ``caller_fid`` (None if nothing
        deeper exists)."""
        tier = self.tier_of[caller_fid]
        use_leaf = (self.rng.random() < self.profile.leaf_call_frac
                    or tier + 1 >= len(self.tiers)
                    or not self.tiers[tier + 1])
        if use_leaf:
            if not self.leaf_fids:
                return None
            return _pick(self.rng, self.leaf_fids, self._leaf_cum)
        return _pick(self.rng, self.tiers[tier + 1], self._tier_cum[tier + 1])

    def num_call_sites(self, fid: int, num_blocks: int) -> int:
        """Sampled call-site count for a function."""
        if self.is_leaf(fid):
            return 0
        mean = self.profile.call_sites_mean
        n = int(mean)
        if self.rng.random() < mean - n:
            n += 1
        return max(0, min(n, MAX_CALL_SITES, max(num_blocks - 2, 0)))


class _FunctionBuilder:
    """Generates one function's blocks and intra-function control flow."""

    #: terminators that may not appear inside a stochastic loop body
    _LOOP_UNSAFE = (BranchKind.CALL, BranchKind.INDIRECT_CALL,
                    BranchKind.INDIRECT)

    def __init__(self, layout: CodeLayout, profile: WorkloadProfile,
                 rng: random.Random, directory: _CalleeDirectory):
        self.layout = layout
        self.profile = profile
        self.rng = rng
        self.directory = directory

    def build(self, fid: int, name: str, num_blocks: int) -> Function:
        """Generate one function's blocks and control flow."""
        blocks = self.layout.blocks
        profile = self.profile
        rng = self.rng
        first_bid = len(blocks)
        bids = list(range(first_bid, first_bid + num_blocks))
        for bid in bids:
            blocks.append(BasicBlock(bid=bid, addr=0,
                                     num_instructions=_block_len(profile, rng),
                                     fid=fid))
        # Choose which interior blocks are call sites. The first site is
        # pinned to block 0 so every invocation of a non-leaf function
        # performs at least one call: without this, the branching process
        # of the call tree goes extinct early on most requests and the
        # walk concentrates in the shallow (hot) tiers.
        n_sites = self.directory.num_call_sites(fid, num_blocks)
        call_idxs = set()
        if n_sites:
            call_idxs.add(0)
            rest = list(range(1, num_blocks - 1))
            extra = min(n_sites - 1, len(rest))
            if extra > 0:
                call_idxs.update(rng.sample(rest, extra))

        for i, bid in enumerate(bids):
            block = blocks[bid]
            if i == num_blocks - 1:
                block.kind = BranchKind.RETURN
                block.fallthrough = None
                continue
            block.fallthrough = bids[i + 1]
            if i in call_idxs:
                self._make_call(block)
                continue
            u = rng.random()
            p = profile.p_cond
            if u < p:
                self._make_cond(block, bids, i)
                continue
            p += profile.p_indirect
            if u < p and i + 2 < num_blocks:
                self._make_indirect(block, bids, i)
                continue
            p += profile.p_direct
            if u < p and i + 2 < num_blocks:
                block.kind = BranchKind.DIRECT
                block.taken_target = bids[rng.randint(i + 1,
                                                      min(i + 3, num_blocks - 1))]
                continue
            block.kind = BranchKind.FALLTHROUGH
        return Function(fid=fid, name=name, entry=bids[0], blocks=bids)

    def _make_call(self, block: BasicBlock) -> None:
        """CALL or INDIRECT_CALL; callees recorded as fids, fixed up later."""
        rng = self.rng
        profile = self.profile
        callee = self.directory.sample_callee(block.fid)
        if callee is None:
            block.kind = BranchKind.FALLTHROUGH
            return
        if rng.random() < profile.indirect_call_frac:
            fanout = max(2, profile.indirect_call_fanout)
            fids = {callee}
            for _ in range(fanout * 2):
                if len(fids) >= fanout:
                    break
                extra = self.directory.sample_callee(block.fid)
                if extra is not None:
                    fids.add(extra)
            targets = sorted(fids)
            weights = _zipf_weights(len(targets), 0.9, rng)
            block.kind = BranchKind.INDIRECT_CALL
            block.indirect_targets = tuple(targets)
            block.indirect_weights = _cumulative(weights)
            block.indirect_pattern = _make_pattern(
                len(targets), block.indirect_weights, rng,
                profile.indirect_mono_frac)
        else:
            block.kind = BranchKind.CALL
            block.taken_target = callee

    def _make_cond(self, block: BasicBlock, bids: List[int], i: int) -> None:
        rng = self.rng
        profile = self.profile
        block.kind = BranchKind.COND
        backward_ok = i >= 1
        if backward_ok and rng.random() < profile.loop_back_prob:
            back = rng.randint(max(0, i - 3), i - 1)
            for b in (self.layout.blocks[x] for x in bids[back:i]):
                if b.kind in self._LOOP_UNSAFE:
                    backward_ok = False
                    break
                if (b.kind is BranchKind.COND and b.taken_target is not None
                        and b.taken_target < b.bid):
                    backward_ok = False
                    break
        else:
            backward_ok = False
        if backward_ok:
            # loop back-edge: taken -> earlier block, geometric trip count
            block.taken_target = bids[back]
            jitter = rng.uniform(-0.06, 0.06)
            block.taken_bias = min(0.97, max(0.5, profile.loop_taken_bias + jitter))
        else:
            # forward skip (if/else): taken -> skips 1..4 blocks ahead
            last = len(bids) - 1
            target = min(i + 1 + rng.randint(1, 4), last)
            block.taken_target = bids[target]
            block.taken_bias = _draw_bias(profile, rng)

    def _make_indirect(self, block: BasicBlock, bids: List[int], i: int) -> None:
        rng = self.rng
        profile = self.profile
        last = len(bids) - 1
        fanout = min(profile.indirect_fanout, last - i)
        candidates = list(range(i + 1, last + 1))
        rng.shuffle(candidates)
        targets = tuple(bids[j] for j in sorted(candidates[:fanout]))
        weights = _zipf_weights(len(targets), 1.0, rng)
        block.kind = BranchKind.INDIRECT
        block.taken_target = None
        block.indirect_targets = targets
        block.indirect_weights = _cumulative(weights)
        block.indirect_pattern = _make_pattern(
            len(targets), block.indirect_weights, rng,
            profile.indirect_mono_frac)


def generate_layout(profile: WorkloadProfile, seed: int = 0) -> CodeLayout:
    """Generate the synthetic binary for ``profile``.

    Deterministic in (profile, seed): the same arguments always produce an
    identical layout.
    """
    rng = derive_rng(seed, "layout:" + profile.name)
    layout = CodeLayout()
    directory = _CalleeDirectory(profile, rng)
    builder = _FunctionBuilder(layout, profile, rng, directory)

    # --- dispatcher (fid 0): entry -> indirect call to a handler -> loop ----
    handler_fids = directory.tiers[0]
    hw = _zipf_weights(len(handler_fids), profile.handler_zipf_alpha, rng)
    layout.blocks.extend([
        BasicBlock(bid=0, addr=0, num_instructions=4, fid=0,
                   kind=BranchKind.FALLTHROUGH, fallthrough=1),
        BasicBlock(bid=1, addr=0, num_instructions=3, fid=0,
                   kind=BranchKind.INDIRECT_CALL, fallthrough=2,
                   indirect_targets=tuple(handler_fids),
                   indirect_weights=_cumulative(hw),
                   indirect_pattern=_make_pattern(
                       len(handler_fids), _cumulative(hw), rng,
                       mono_frac=0.0)),
        BasicBlock(bid=2, addr=0, num_instructions=3, fid=0,
                   kind=BranchKind.DIRECT, taken_target=0, fallthrough=None),
    ])
    layout.functions.append(
        Function(fid=0, name="dispatcher", entry=0, blocks=[0, 1, 2])
    )

    # --- bodies ---------------------------------------------------------------
    for fid in range(1, profile.num_functions):
        nblocks = max(2, 1 + int(rng.expovariate(
            1.0 / max(profile.mean_blocks_per_function - 1, 1))))
        nblocks = min(nblocks, 4 * profile.mean_blocks_per_function)
        if directory.is_leaf(fid):
            name = "leaf_%d" % fid
        elif fid in directory.tier_of and directory.tier_of[fid] == 0:
            name = "handler_%d" % fid
        else:
            name = "func_%d" % fid
        layout.functions.append(builder.build(fid, name, nblocks))

    # Fix-up pass: CALL/INDIRECT_CALL targets were recorded as function ids
    # while the callee functions were still being built; convert them to the
    # callee entry block ids now that every function exists.
    for block in layout.blocks:
        if block.kind is BranchKind.CALL:
            block.taken_target = layout.functions[block.taken_target].entry
        elif block.kind is BranchKind.INDIRECT_CALL:
            block.indirect_targets = tuple(
                layout.functions[f].entry for f in block.indirect_targets
            )

    _place(layout, rng)
    layout.validate()
    return layout


def _place(layout: CodeLayout, rng: random.Random) -> None:
    """Assign byte addresses: shuffled function order, small line gaps."""
    order = list(range(len(layout.functions)))
    rng.shuffle(order)
    addr = TEXT_BASE
    for fid in order:
        func = layout.functions[fid]
        for bid in func.blocks:
            block = layout.blocks[bid]
            block.addr = addr
            addr += block.size_bytes
        # pad to a line boundary plus a random small gap
        addr = ((addr + LINE_SIZE - 1) // LINE_SIZE) * LINE_SIZE
        addr += LINE_SIZE * rng.randint(0, 2)

"""Synthetic large-code-footprint workloads.

The paper evaluates PDIP on 16 real server/client workloads (Table 2).
Those traces are not redistributable, so this package generates synthetic
programs whose *instruction-block access stream* has the same statistical
structure: code footprints far exceeding the 32 KB L1-I, Zipf-skewed
function invocation (hot/cold lines), biased conditional branches,
indirect dispatch with per-site target fan-out, and deep call chains.
One named profile per paper benchmark is tuned to land in the same
qualitative regime (miss-heavy cassandra/verilator, lighter kafka/noop).
"""

from repro.workloads.layout import (
    BasicBlock,
    BranchKind,
    CodeLayout,
    Function,
)
from repro.workloads.profiles import (
    BENCHMARK_NAMES,
    PROFILES,
    ExternalBenchmark,
    WorkloadProfile,
    external_benchmark,
    external_benchmark_names,
    get_profile,
    known_benchmark_names,
    register_external_benchmark,
)
from repro.workloads.generator import generate_layout
from repro.workloads.walker import ControlFlowEvent, PathWalker

__all__ = [
    "BasicBlock",
    "BranchKind",
    "CodeLayout",
    "Function",
    "WorkloadProfile",
    "PROFILES",
    "BENCHMARK_NAMES",
    "ExternalBenchmark",
    "external_benchmark",
    "external_benchmark_names",
    "get_profile",
    "known_benchmark_names",
    "register_external_benchmark",
    "generate_layout",
    "PathWalker",
    "ControlFlowEvent",
]

"""Workload characterization: the numbers that place a workload in (or
out of) the paper's regime.

The paper selects benchmarks by L1-I MPKI > 20 (Section 6.3) and
motivates PDIP with footprint and reuse-distance arguments. This module
computes those characteristics *directly from the instruction stream*,
independent of any machine configuration:

* static footprint (functions, blocks, lines, bytes);
* dynamic instruction mix (branch kinds, taken rate);
* the cache-line **reuse-distance profile** (how many distinct lines are
  touched between consecutive uses of the same line), from which the
  miss rate of any LRU cache size can be read off;
* working-set curves (distinct lines touched in sliding windows).

Used by the calibration workflow that tuned the 16 profiles and exposed
through ``python -m repro workload <name>``.
"""

from __future__ import annotations

import bisect
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.workloads.generator import generate_layout
from repro.workloads.layout import BranchKind, CodeLayout
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.walker import PathWalker


@dataclass
class ReuseDistanceProfile:
    """Histogram of LRU stack distances of the line-access stream."""

    #: bucket upper bounds (distinct lines), ascending
    bucket_bounds: Tuple[int, ...]
    #: accesses whose reuse distance falls in each bucket
    bucket_counts: List[int]
    cold_accesses: int = 0
    total_accesses: int = 0

    def miss_rate_at(self, cache_lines: int) -> float:
        """Fraction of accesses an LRU cache of ``cache_lines`` misses.

        An access misses when its reuse distance is >= the cache size
        (fully-associative approximation); cold accesses always miss.
        """
        if self.total_accesses == 0:
            return 0.0
        misses = self.cold_accesses
        for bound, count in zip(self.bucket_bounds, self.bucket_counts):
            if bound > cache_lines:
                misses += count
        return misses / self.total_accesses


@dataclass
class WorkloadCharacteristics:
    """Everything the characterization pass measures."""

    name: str
    # static
    functions: int
    blocks: int
    footprint_lines: int
    footprint_bytes: int
    # dynamic
    instructions: int
    block_events: int
    taken_fraction: float
    branch_mix: Dict[str, float]
    mean_block_instructions: float
    live_lines: int
    reuse: ReuseDistanceProfile
    #: distinct lines per 10k-instruction window (mean)
    working_set_10k: float

    def estimated_l1i_mpki(self, cache_lines: int = 128) -> float:
        """Back-of-envelope L1-I MPKI for an LRU cache (default: the
        scaled 8 KB L1-I = 128 lines)."""
        accesses_per_ki = (self.reuse.total_accesses
                           / max(1, self.instructions) * 1000.0)
        return accesses_per_ki * self.reuse.miss_rate_at(cache_lines)


#: reuse-distance bucket bounds (distinct lines)
_BUCKETS = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 1 << 30)


class _LRUStack:
    """Exact LRU stack-distance tracker (O(log n) per access)."""

    def __init__(self) -> None:
        self._time: Dict[int, int] = {}
        self._stack: List[int] = []  # sorted access times of live lines
        self._clock = 0

    def access(self, line: int) -> Optional[int]:
        """Return the stack distance of this access (None if cold)."""
        self._clock += 1
        last = self._time.get(line)
        distance = None
        if last is not None:
            idx = bisect.bisect_left(self._stack, last)
            distance = len(self._stack) - idx - 1
            self._stack.pop(idx)
        self._stack.append(self._clock)
        self._time[line] = self._clock
        return distance


def characterize(profile: WorkloadProfile, instructions: int = 200_000,
                 seed: int = 1,
                 layout: Optional[CodeLayout] = None) -> WorkloadCharacteristics:
    """Run the walker for ``instructions`` and measure the stream."""
    if layout is None:
        layout = generate_layout(profile, seed=seed)
    walker = PathWalker(layout, seed=seed,
                        indirect_noise=profile.indirect_noise)

    lru = _LRUStack()
    bucket_counts = [0] * len(_BUCKETS)
    cold = 0
    total_accesses = 0
    kinds: Counter = Counter()
    taken = 0
    events = 0
    instr = 0
    live: set = set()
    window_lines: set = set()
    window_start = 0
    window_sizes: List[int] = []

    while instr < instructions:
        ev = walker.next_event()
        events += 1
        instr += ev.block.num_instructions
        kinds[ev.block.kind.value] += 1
        taken += ev.taken
        for line in ev.block.lines():
            total_accesses += 1
            live.add(line)
            window_lines.add(line)
            distance = lru.access(line)
            if distance is None:
                cold += 1
            else:
                bucket_counts[bisect.bisect_left(_BUCKETS, distance + 1)] += 1
        if instr - window_start >= 10_000:
            window_sizes.append(len(window_lines))
            window_lines = set()
            window_start = instr

    reuse = ReuseDistanceProfile(bucket_bounds=_BUCKETS,
                                 bucket_counts=bucket_counts,
                                 cold_accesses=cold,
                                 total_accesses=total_accesses)
    return WorkloadCharacteristics(
        name=profile.name,
        functions=len(layout.functions),
        blocks=layout.num_blocks,
        footprint_lines=layout.footprint_lines(),
        footprint_bytes=layout.footprint_bytes(),
        instructions=instr,
        block_events=events,
        taken_fraction=taken / max(1, events),
        branch_mix={k: v / events for k, v in kinds.items()},
        mean_block_instructions=instr / max(1, events),
        live_lines=len(live),
        reuse=reuse,
        working_set_10k=(sum(window_sizes) / len(window_sizes)
                         if window_sizes else float(len(live))),
    )


def render(ch: WorkloadCharacteristics) -> str:
    """Human-readable characterization report."""
    lines = [
        f"Workload: {ch.name}",
        "=" * (10 + len(ch.name)),
        f"static:  {ch.functions} functions, {ch.blocks} blocks, "
        f"{ch.footprint_lines} lines ({ch.footprint_bytes // 1024} KB text)",
        f"dynamic: {ch.instructions:,} instructions, "
        f"{ch.mean_block_instructions:.1f} instr/block, "
        f"{ch.taken_fraction:.0%} taken transfers",
        f"live set: {ch.live_lines} lines; "
        f"~{ch.working_set_10k:.0f} lines per 10k instructions",
        "",
        "branch mix:",
    ]
    for kind, frac in sorted(ch.branch_mix.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {kind:14s} {frac:6.1%}")
    lines.append("")
    lines.append("LRU miss rate by cache size (fully associative):")
    for cache_lines in (64, 128, 256, 512, 1024):
        rate = ch.reuse.miss_rate_at(cache_lines)
        kb = cache_lines * 64 // 1024
        lines.append(f"  {kb:4d} KB ({cache_lines:5d} lines): "
                     f"{rate:6.1%}  (~{ch.estimated_l1i_mpki(cache_lines):.0f} MPKI)")
    return "\n".join(lines)

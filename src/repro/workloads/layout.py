"""Static code layout model: functions, basic blocks, and branch sites.

A :class:`CodeLayout` is the synthetic equivalent of a program binary.
Basic blocks carry byte addresses (so cache-line and BTB behaviour are
realistic) and a terminator describing the control transfer at the end of
the block. The dynamic behaviour (which way branches go) lives in
:mod:`repro.workloads.walker`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils import INSTRUCTION_SIZE, lines_spanned


class BranchKind(Enum):
    """Control transfer at the end of a basic block."""

    FALLTHROUGH = "fallthrough"  # no branch; sequential successor
    COND = "cond"                # conditional branch (taken target + fallthrough)
    DIRECT = "direct"            # unconditional direct jump
    INDIRECT = "indirect"        # indirect jump (jump table / virtual dispatch)
    CALL = "call"                # direct call
    INDIRECT_CALL = "indirect_call"  # indirect call (one of several callees)
    RETURN = "return"            # return to caller


#: Branch kinds that transfer control away from the sequential successor
#: whenever they execute taken. Used by the BTB (only taken branches are
#: inserted) and by the FTQ (an entry ends at a taken transfer).
TAKEN_KINDS = frozenset(
    {
        BranchKind.DIRECT,
        BranchKind.INDIRECT,
        BranchKind.CALL,
        BranchKind.INDIRECT_CALL,
        BranchKind.RETURN,
    }
)


@dataclass
class BasicBlock:
    """One straight-line run of instructions ending in a control transfer.

    Addresses are byte addresses; every instruction is
    :data:`repro.utils.INSTRUCTION_SIZE` bytes.
    """

    bid: int
    addr: int
    num_instructions: int
    kind: BranchKind = BranchKind.FALLTHROUGH
    #: Successor block id when the terminator is taken (COND taken target,
    #: DIRECT/CALL target, or None for INDIRECT/RETURN which resolve
    #: dynamically).
    taken_target: Optional[int] = None
    #: Sequential successor block id (COND not-taken, FALLTHROUGH, and the
    #: return point of a CALL). None for the last block of a function.
    fallthrough: Optional[int] = None
    #: Probability the COND terminator is taken.
    taken_bias: float = 0.0
    #: Candidate target block ids for INDIRECT jumps / INDIRECT_CALL entry
    #: blocks, with matching cumulative selection weights.
    indirect_targets: Tuple[int, ...] = ()
    indirect_weights: Tuple[float, ...] = ()
    #: Deterministic per-site target sequence (indices into
    #: ``indirect_targets``): real indirect branches are correlated with
    #: calling context, so the walker cycles this pattern (with a noise
    #: probability of drawing from the weight table instead), which gives
    #: ITTAGE something learnable. Empty for non-indirect blocks.
    indirect_pattern: Tuple[int, ...] = ()
    #: Owning function id.
    fid: int = -1
    #: memoized :meth:`lines` result (blocks are immutable once the
    #: layout is generated, so the span never changes)
    _lines: Optional[List[int]] = field(default=None, repr=False,
                                        compare=False)

    @property
    def size_bytes(self) -> int:
        """Block size in bytes."""
        return self.num_instructions * INSTRUCTION_SIZE

    @property
    def end_addr(self) -> int:
        """Byte address one past the last instruction."""
        return self.addr + self.size_bytes

    @property
    def branch_pc(self) -> int:
        """Address of the terminating instruction (the branch site)."""
        return self.addr + (self.num_instructions - 1) * INSTRUCTION_SIZE

    @property
    def is_branch(self) -> bool:
        """True unless the block falls through."""
        return self.kind is not BranchKind.FALLTHROUGH

    def lines(self) -> List[int]:
        """Cache-line numbers this block occupies (memoized).

        The returned list is shared across calls — treat it as
        read-only (every hot-path consumer only iterates or slices it).
        """
        cached = self._lines
        if cached is None:
            cached = self._lines = lines_spanned(self.addr, self.size_bytes)
        return cached


@dataclass
class Function:
    """A function: an entry block and the ordered blocks it contains."""

    fid: int
    name: str
    entry: int
    blocks: List[int] = field(default_factory=list)


@dataclass
class CodeLayout:
    """The whole synthetic binary.

    ``blocks`` is indexed by block id; ``functions`` by function id.
    ``entry_function`` is the dispatcher the walker starts (and loops) in.
    """

    blocks: List[BasicBlock] = field(default_factory=list)
    functions: List[Function] = field(default_factory=list)
    entry_function: int = 0

    def block(self, bid: int) -> BasicBlock:
        """Block by id."""
        return self.blocks[bid]

    def function(self, fid: int) -> Function:
        """Function by id."""
        return self.functions[fid]

    @property
    def num_blocks(self) -> int:
        """Total basic blocks."""
        return len(self.blocks)

    @property
    def total_instructions(self) -> int:
        """Static instruction count."""
        return sum(b.num_instructions for b in self.blocks)

    def footprint_lines(self) -> int:
        """Number of distinct cache lines occupied by code."""
        lines = set()
        for block in self.blocks:
            lines.update(block.lines())
        return len(lines)

    def footprint_bytes(self) -> int:
        """Static code bytes."""
        return sum(b.size_bytes for b in self.blocks)

    def entry_index(self) -> Dict[int, int]:
        """Map block start address -> block id (built once, then cached).

        The front end uses this to turn a predicted target *address* (from
        the BTB/ITTAGE) back into a block for speculative path walking.
        """
        cached = getattr(self, "_entry_index", None)
        if cached is None:
            cached = {b.addr: b.bid for b in self.blocks}
            self._entry_index = cached
        return cached

    def block_at(self, addr: int) -> Optional[BasicBlock]:
        """Find the block whose address range contains ``addr`` (linear scan;
        only used by tests and diagnostics)."""
        for block in self.blocks:
            if block.addr <= addr < block.end_addr:
                return block
        return None

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        for block in self.blocks:
            if block.num_instructions <= 0:
                raise ValueError("block %d has no instructions" % block.bid)
            for succ in (block.taken_target, block.fallthrough):
                if succ is not None and not (0 <= succ < len(self.blocks)):
                    raise ValueError(
                        "block %d successor %r out of range" % (block.bid, succ)
                    )
            if block.kind is BranchKind.COND:
                if block.taken_target is None or block.fallthrough is None:
                    raise ValueError("COND block %d missing successor" % block.bid)
                if not 0.0 <= block.taken_bias <= 1.0:
                    raise ValueError("COND block %d bias out of range" % block.bid)
            if block.kind in (BranchKind.INDIRECT, BranchKind.INDIRECT_CALL):
                if not block.indirect_targets:
                    raise ValueError(
                        "indirect block %d has no targets" % block.bid
                    )
                if len(block.indirect_targets) != len(block.indirect_weights):
                    raise ValueError(
                        "indirect block %d weight mismatch" % block.bid
                    )
        for func in self.functions:
            if not func.blocks:
                raise ValueError("function %d empty" % func.fid)
            if self.blocks[func.entry].fid != func.fid:
                raise ValueError("function %d entry not owned" % func.fid)

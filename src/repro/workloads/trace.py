"""Instruction-stream trace recording and replay.

The reproduction is execution-driven (the walker generates the stream),
but adopters often have their own traces — from a binary-instrumentation
tool, an emulator, or a previous run they want bit-identical. This module
defines a compact, versioned, text-based trace format and a
:class:`TraceReplayer` that is drop-in compatible with
:class:`~repro.workloads.walker.PathWalker` (same ``next_event`` /
``snapshot_stack`` surface), so a recorded trace can drive the full
simulator, PDIP included.

Format (one record per basic block, whitespace separated)::

    REPRO-TRACE v1
    <bid> <taken> <next_bid>

Block geometry travels with the layout, not the trace: a trace is only
replayable against the layout (profile + seed) it was recorded from,
which the header captures and the replayer verifies.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Optional, Union

from repro.workloads.layout import BranchKind, CodeLayout
from repro.workloads.walker import ControlFlowEvent, PathWalker

MAGIC = "REPRO-TRACE"
VERSION = 1


class TraceError(ValueError):
    """Malformed trace or layout mismatch."""


@dataclass
class TraceHeader:
    """Identity of the layout a trace was recorded against."""

    workload: str
    seed: int
    num_blocks: int

    def line(self) -> str:
        """Serialize the header line."""
        return (f"{MAGIC} v{VERSION} workload={self.workload} "
                f"seed={self.seed} blocks={self.num_blocks}")

    @classmethod
    def parse(cls, line: str) -> "TraceHeader":
        """Parse a header line (TraceError on mismatch)."""
        parts = line.split()
        if len(parts) != 5 or parts[0] != MAGIC:
            raise TraceError("not a repro trace: %r" % line[:50])
        if parts[1] != "v%d" % VERSION:
            raise TraceError("unsupported trace version %r" % parts[1])
        fields = dict(p.split("=", 1) for p in parts[2:])
        try:
            return cls(workload=fields["workload"],
                       seed=int(fields["seed"]),
                       num_blocks=int(fields["blocks"]))
        except (KeyError, ValueError) as exc:
            raise TraceError("bad trace header: %s" % exc)


def record(walker: PathWalker, num_events: int, out: IO[str],
           workload: str = "unknown", seed: int = 0) -> int:
    """Drive ``walker`` for ``num_events`` blocks, writing the trace.

    Returns the number of instructions covered.
    """
    header = TraceHeader(workload=workload, seed=seed,
                         num_blocks=walker.layout.num_blocks)
    out.write(header.line() + "\n")
    instructions = 0
    for _ in range(num_events):
        ev = walker.next_event()
        instructions += ev.block.num_instructions
        out.write(f"{ev.block.bid} {1 if ev.taken else 0} {ev.next_bid}\n")
    return instructions


def record_to_string(walker: PathWalker, num_events: int,
                     workload: str = "unknown", seed: int = 0) -> str:
    """Record a trace into a string (see record())."""
    buf = io.StringIO()
    record(walker, num_events, buf, workload=workload, seed=seed)
    return buf.getvalue()


def _parse_records(lines: Iterable[str]) -> Iterator["tuple[int, bool, int]"]:
    for lineno, raw in enumerate(lines, start=2):
        raw = raw.strip()
        if not raw or raw.startswith("#"):
            continue
        parts = raw.split()
        if len(parts) != 3:
            raise TraceError("line %d: expected 3 fields, got %r"
                             % (lineno, raw[:50]))
        try:
            bid, taken, next_bid = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError:
            raise TraceError("line %d: non-integer field in %r"
                             % (lineno, raw[:50]))
        if taken not in (0, 1):
            raise TraceError("line %d: taken must be 0/1" % lineno)
        yield bid, bool(taken), next_bid


class TraceReplayer:
    """Drop-in walker replacement that replays a recorded trace.

    Verifies each record against the layout (block ids in range,
    successors consistent with the block's terminator) so a corrupt or
    mismatched trace fails fast rather than silently simulating garbage.
    When the trace runs out, raises ``StopIteration`` from
    ``next_event`` unless ``loop=True`` (replay wraps around; only legal
    if the trace ends where it starts).
    """

    def __init__(self, layout: CodeLayout, text: Union[str, IO[str]],
                 loop: bool = False, verify: bool = True):
        if isinstance(text, str):
            text = io.StringIO(text)
        lines = text.read().splitlines()
        if not lines:
            raise TraceError("empty trace")
        self.header = TraceHeader.parse(lines[0])
        if self.header.num_blocks != layout.num_blocks:
            raise TraceError(
                "trace recorded against a %d-block layout, got %d blocks"
                % (self.header.num_blocks, layout.num_blocks))
        self.layout = layout
        self.loop = loop
        self._records: List["tuple[int, bool, int]"] = list(
            _parse_records(lines[1:]))
        if not self._records:
            raise TraceError("trace has a header but no records")
        if verify:
            self._verify()
        self._pos = 0
        self.events = 0
        # maintained for FTQ/wrong-path parity with PathWalker
        self.stack: List[int] = []

    # -- verification ---------------------------------------------------
    def _verify(self) -> None:
        layout = self.layout
        for i, (bid, taken, next_bid) in enumerate(self._records):
            if not 0 <= bid < layout.num_blocks:
                raise TraceError("record %d: block %d out of range" % (i, bid))
            if not 0 <= next_bid < layout.num_blocks:
                raise TraceError("record %d: successor %d out of range"
                                 % (i, next_bid))
            block = layout.blocks[bid]
            if block.kind is BranchKind.FALLTHROUGH and taken:
                raise TraceError("record %d: fallthrough block %d marked "
                                 "taken" % (i, bid))
            if block.kind is BranchKind.COND and not taken:
                if next_bid != block.fallthrough:
                    raise TraceError(
                        "record %d: not-taken COND must fall through" % i)
            if i + 1 < len(self._records):
                if self._records[i + 1][0] != next_bid:
                    raise TraceError(
                        "record %d: successor %d but next record is block %d"
                        % (i, next_bid, self._records[i + 1][0]))

    # -- walker surface -------------------------------------------------
    def next_event(self) -> ControlFlowEvent:
        """Next control-flow event (walker-compatible)."""
        if self._pos >= len(self._records):
            if not self.loop:
                raise StopIteration("trace exhausted after %d events"
                                    % self.events)
            self._pos = 0
        bid, taken, next_bid = self._records[self._pos]
        self._pos += 1
        self.events += 1
        block = self.layout.blocks[bid]
        if block.kind in (BranchKind.CALL, BranchKind.INDIRECT_CALL):
            # Bounded like a real return-address stack: traces with
            # unbalanced call/return mixes (common in externally captured
            # streams replayed with loop=True) must not grow the stack
            # without limit. Dropping the push on overflow is O(1) and
            # deterministic, so both backends replay identically.
            if (block.fallthrough is not None
                    and len(self.stack) < PathWalker.MAX_STACK_DEPTH):
                self.stack.append(block.fallthrough)
        elif block.kind is BranchKind.RETURN and self.stack:
            self.stack.pop()
        return ControlFlowEvent(
            block=block, taken=taken, next_bid=next_bid,
            target_addr=self.layout.blocks[next_bid].addr)

    def snapshot_stack(self) -> List[int]:
        """Copy of the speculative call stack."""
        return list(self.stack)

    def __len__(self) -> int:
        return len(self._records)

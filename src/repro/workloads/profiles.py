"""Per-benchmark workload profiles (the reproduction's stand-in for Table 2).

Each paper benchmark gets a :class:`WorkloadProfile` whose parameters are
tuned so the baseline simulator lands in the same qualitative regime the
paper reports: relative L1-I MPKI ordering (Fig. 9), FEC-line fraction
(Fig. 4), and back-end pressure (which governs how much front-end stall
translates into IPC loss, and the L2 data contention EMISSARY causes).

The generator builds a tiered call DAG (see
:mod:`repro.workloads.generator`); the key levers are:

* ``call_sites_mean`` × ``call_depth`` — per-request instruction footprint
  (more, deeper calls ⇒ more fresh cache lines per kilo-instruction);
* ``handler_zipf_alpha`` / ``callee_zipf_alpha`` — reuse skew (flatter ⇒
  bigger live set ⇒ more capacity misses);
* ``leaf_call_frac`` / ``num_leaves`` — the hot shared-library fraction
  (these calls are the cache *hits*);
* ``loop_back_prob`` / ``loop_taken_bias`` — hit-heavy loop instructions
  that dilute MPKI;
* ``bias_mix`` — conditional-branch predictability, which sets the
  resteer rate that PDIP's trigger mechanism feeds on.

Footprints are scaled to the reproduction's instruction budgets: the paper
runs 100M instructions against multi-MB footprints; we run O(100K)
instructions against 0.2-1 MB footprints, preserving the
footprint >> L1-I >> useful-locality regime.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Optional, Tuple


@dataclass(frozen=True)
class WorkloadProfile:
    """Knobs for the synthetic program generator and dynamic walker."""

    name: str
    description: str = ""

    # --- static code shape ------------------------------------------------
    num_functions: int = 900
    num_handlers: int = 48            # top-level request handlers (tier 0)
    num_leaves: int = 60              # shared leaf/library functions (hot code)
    mean_blocks_per_function: int = 10
    mean_instructions_per_block: int = 6
    max_instructions_per_block: int = 24

    # --- call graph shape ----------------------------------------------------
    call_depth: int = 7               # mid-call-graph tiers below the handlers
    tier_growth: float = 1.6          # tier d+1 is ~1.6x wider than tier d
    call_sites_mean: float = 1.8      # call sites per non-leaf function (cap 3)
    indirect_call_frac: float = 0.15  # fraction of call sites that are indirect
    leaf_call_frac: float = 0.20      # fraction of call sites targeting leaves
    indirect_call_fanout: int = 4     # callees per indirect call site

    # --- non-call terminator mix (probabilities for interior blocks) ---------
    p_cond: float = 0.45
    p_indirect: float = 0.02
    p_direct: float = 0.07
    # remainder is FALLTHROUGH

    # --- dynamic branch behaviour -------------------------------------------
    #: fraction of conditional branch *sites* that are (highly biased,
    #: moderately biased, unbiased).
    bias_mix: Tuple[float, float, float] = (0.90, 0.08, 0.02)
    loop_back_prob: float = 0.12      # fraction of COND sites that are loop back-edges
    loop_taken_bias: float = 0.70     # loop continue probability (geometric trips)
    indirect_fanout: int = 6          # targets per indirect jump site
    #: probability an indirect execution deviates from its cyclic pattern
    #: (sets the asymptotic ITTAGE mispredict rate)
    indirect_noise: float = 0.08
    #: fraction of indirect sites that are monomorphic (one dominant
    #: target) — most call sites in real code are
    indirect_mono_frac: float = 0.50

    # --- invocation skew -----------------------------------------------------
    handler_zipf_alpha: float = 0.40  # lower alpha = flatter = bigger live set
    callee_zipf_alpha: float = 0.40

    # --- back-end / data-side model -----------------------------------------
    backend_stall_prob: float = 0.10  # P(back end retires nothing this cycle)
    data_access_prob: float = 0.05    # P(retired instr issues an L2 data access)
    data_lines: int = 2500            # distinct data lines behind those accesses
    data_zipf_alpha: float = 0.60

    def scaled(self, **overrides) -> "WorkloadProfile":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)


def _profile(name: str, description: str, **kw) -> WorkloadProfile:
    return WorkloadProfile(name=name, description=description, **kw)


#: Benchmark order used by every figure (matches the paper's x axes).
BENCHMARK_NAMES = (
    "cassandra",
    "tomcat",
    "kafka",
    "xalan",
    "finagle-http",
    "dotty",
    "tpcc",
    "ycsb",
    "twitter",
    "voter",
    "smallbank",
    "tatp",
    "sibench",
    "noop",
    "verilator",
    "speedometer2.0",
)


PROFILES: Dict[str, WorkloadProfile] = {
    "cassandra": _profile(
        "cassandra", "DaCapo NoSQL store: huge flat footprint, heavy misses",
        num_functions=1700, num_handlers=96, num_leaves=70,
        call_depth=8, call_sites_mean=2.0, tier_growth=1.25,
        indirect_call_frac=0.45, indirect_call_fanout=8,
        leaf_call_frac=0.06, loop_back_prob=0.05,
        handler_zipf_alpha=0.10, callee_zipf_alpha=0.10,
        backend_stall_prob=0.12, data_access_prob=0.05, data_lines=2200,
    ),
    "tomcat": _profile(
        "tomcat", "DaCapo servlet container: large footprint, deep stacks",
        num_functions=1400, num_handlers=72, num_leaves=80,
        call_depth=8, call_sites_mean=1.9, tier_growth=1.25,
        indirect_call_frac=0.35, indirect_call_fanout=6,
        leaf_call_frac=0.10, loop_back_prob=0.08,
        handler_zipf_alpha=0.20, callee_zipf_alpha=0.20,
        backend_stall_prob=0.11,
    ),
    "kafka": _profile(
        "kafka", "DaCapo message broker: moderate footprint, hotter core loop",
        num_functions=800, num_handlers=32, num_leaves=90,
        call_depth=6, call_sites_mean=1.6, tier_growth=1.3,
        indirect_call_frac=0.20, leaf_call_frac=0.30,
        handler_zipf_alpha=0.55, callee_zipf_alpha=0.50,
        loop_back_prob=0.16, backend_stall_prob=0.14,
    ),
    "xalan": _profile(
        "xalan", "DaCapo XSLT processor: large recursive-transform footprint",
        num_functions=1300, num_handlers=64, num_leaves=70,
        call_depth=8, call_sites_mean=1.9, tier_growth=1.25,
        indirect_call_frac=0.32, indirect_call_fanout=6,
        leaf_call_frac=0.12, loop_back_prob=0.08,
        handler_zipf_alpha=0.22, callee_zipf_alpha=0.22,
        backend_stall_prob=0.10,
    ),
    "finagle-http": _profile(
        "finagle-http", "Renaissance RPC server: medium-large footprint",
        num_functions=1100, num_handlers=64, num_leaves=90,
        call_depth=7, call_sites_mean=1.8, tier_growth=1.3,
        indirect_call_frac=0.30, leaf_call_frac=0.15,
        handler_zipf_alpha=0.30, callee_zipf_alpha=0.30,
        loop_back_prob=0.10, backend_stall_prob=0.12,
    ),
    "dotty": _profile(
        "dotty", "Renaissance Scala compiler: large footprint, high L2 data pressure",
        num_functions=1250, num_handlers=72, num_leaves=80,
        call_depth=8, call_sites_mean=1.85, tier_growth=1.25,
        indirect_call_frac=0.32, indirect_call_fanout=6,
        leaf_call_frac=0.12, loop_back_prob=0.09,
        handler_zipf_alpha=0.25, callee_zipf_alpha=0.25,
        backend_stall_prob=0.13,
        data_access_prob=0.12, data_lines=5000, data_zipf_alpha=0.35,
    ),
    "tpcc": _profile(
        "tpcc", "OLTP-Bench TPC-C on PostgreSQL: transaction mix dispatch",
        num_functions=1000, num_handlers=48, num_leaves=90,
        call_depth=7, call_sites_mean=1.75, tier_growth=1.3,
        indirect_call_frac=0.28, leaf_call_frac=0.16,
        handler_zipf_alpha=0.32, callee_zipf_alpha=0.32,
        loop_back_prob=0.10, backend_stall_prob=0.13,
        data_access_prob=0.08, data_lines=3200,
    ),
    "ycsb": _profile(
        "ycsb", "OLTP-Bench YCSB: key-value transaction mix",
        num_functions=950, num_handlers=40, num_leaves=90,
        call_depth=7, call_sites_mean=1.7, tier_growth=1.3,
        indirect_call_frac=0.25, leaf_call_frac=0.18,
        handler_zipf_alpha=0.36, callee_zipf_alpha=0.36,
        loop_back_prob=0.11, backend_stall_prob=0.12,
        data_access_prob=0.07, data_lines=2800,
    ),
    "twitter": _profile(
        "twitter", "OLTP-Bench twitter workload: skewed social-graph queries",
        num_functions=900, num_handlers=40, num_leaves=90,
        call_depth=7, call_sites_mean=1.7, tier_growth=1.3,
        indirect_call_frac=0.24, leaf_call_frac=0.20,
        handler_zipf_alpha=0.38, callee_zipf_alpha=0.38,
        loop_back_prob=0.11, backend_stall_prob=0.12,
        data_access_prob=0.07, data_lines=2600,
    ),
    "voter": _profile(
        "voter", "OLTP-Bench voter: short repetitive transactions",
        num_functions=920, num_handlers=36, num_leaves=85,
        call_depth=7, call_sites_mean=1.7, tier_growth=1.3,
        indirect_call_frac=0.24, leaf_call_frac=0.19,
        handler_zipf_alpha=0.37, callee_zipf_alpha=0.37,
        loop_back_prob=0.11, backend_stall_prob=0.11,
        data_access_prob=0.06, data_lines=2400,
    ),
    "smallbank": _profile(
        "smallbank", "OLTP-Bench smallbank: banking transactions, L2 data pressure",
        num_functions=850, num_handlers=36, num_leaves=85,
        call_depth=7, call_sites_mean=1.65, tier_growth=1.3,
        indirect_call_frac=0.22, leaf_call_frac=0.22,
        handler_zipf_alpha=0.42, callee_zipf_alpha=0.42,
        loop_back_prob=0.12, backend_stall_prob=0.12,
        data_access_prob=0.11, data_lines=4600, data_zipf_alpha=0.35,
    ),
    "tatp": _profile(
        "tatp", "OLTP-Bench TATP: telecom transactions, L2 data pressure",
        num_functions=820, num_handlers=32, num_leaves=85,
        call_depth=7, call_sites_mean=1.6, tier_growth=1.3,
        indirect_call_frac=0.22, leaf_call_frac=0.24,
        handler_zipf_alpha=0.45, callee_zipf_alpha=0.45,
        loop_back_prob=0.12, backend_stall_prob=0.12,
        data_access_prob=0.11, data_lines=4400, data_zipf_alpha=0.35,
    ),
    "sibench": _profile(
        "sibench", "OLTP-Bench sibench: snapshot-isolation microbenchmark",
        num_functions=760, num_handlers=28, num_leaves=80,
        call_depth=6, call_sites_mean=1.6, tier_growth=1.3,
        indirect_call_frac=0.20, leaf_call_frac=0.26,
        handler_zipf_alpha=0.50, callee_zipf_alpha=0.48,
        loop_back_prob=0.13, backend_stall_prob=0.11,
        data_access_prob=0.06, data_lines=2200,
    ),
    "noop": _profile(
        "noop", "OLTP-Bench noop: protocol/parse path only, smaller live set",
        num_functions=720, num_handlers=24, num_leaves=80,
        call_depth=6, call_sites_mean=1.55, tier_growth=1.3,
        indirect_call_frac=0.18, leaf_call_frac=0.28,
        handler_zipf_alpha=0.55, callee_zipf_alpha=0.52,
        loop_back_prob=0.13, backend_stall_prob=0.10,
        data_access_prob=0.04, data_lines=1800,
    ),
    "verilator": _profile(
        "verilator", "Chipyard RTL sim: BOLTed binary, very long basic blocks",
        num_functions=1500, num_handlers=88, num_leaves=40,
        mean_blocks_per_function=7, mean_instructions_per_block=18,
        max_instructions_per_block=64,
        call_depth=8, call_sites_mean=2.0, tier_growth=1.25,
        indirect_call_frac=0.40, indirect_call_fanout=8,
        leaf_call_frac=0.05, loop_back_prob=0.04,
        handler_zipf_alpha=0.10, callee_zipf_alpha=0.10,
        p_cond=0.50, backend_stall_prob=0.08,
        data_access_prob=0.03, data_lines=1500,
    ),
    "speedometer2.0": _profile(
        "speedometer2.0", "BrowserBench JS: hot JITted kernels, smaller live set",
        num_functions=700, num_handlers=24, num_leaves=90,
        call_depth=6, call_sites_mean=1.5, tier_growth=1.3,
        indirect_call_frac=0.18, leaf_call_frac=0.32,
        handler_zipf_alpha=0.60, callee_zipf_alpha=0.55,
        loop_back_prob=0.17, backend_stall_prob=0.15,
        data_access_prob=0.05, data_lines=2000,
    ),
}


# --------------------------------------------------------------------------
# External benchmark registry
#
# Trace-driven workloads (and any future non-generator workload source)
# plug in here: a provider registers a profile plus factories that build
# the `CodeLayout` and the walker for a benchmark name, and from then on
# the name works everywhere a synthetic profile name does — `repro run`,
# suites, sweeps, the bench matrix, the service.
#
# Providers are loaded lazily by dotted module name the first time an
# unknown benchmark is looked up.  The string import keeps the layering
# DAG honest: `workloads` never *statically* imports the trace subsystem
# (which sits above it and pulls in the service store); the provider
# module imports us and calls :func:`register_external_benchmark` at
# import time — the classic entry-point inversion.


@dataclass(frozen=True)
class ExternalBenchmark:
    """A benchmark backed by something other than the synthetic generator.

    ``layout_builder(seed)`` returns the `CodeLayout`; ``walker_factory``
    ``(layout, seed)`` returns an object with the `PathWalker` surface
    (``next_event`` / ``snapshot_stack`` / ``.layout``) that drives the
    machine.  Both must be importable from a fresh process (pool children
    re-resolve benchmarks by name) and deterministic for a given seed.
    """

    profile: WorkloadProfile
    layout_builder: Callable[[int], Any]
    walker_factory: Callable[[Any, int], Any]


_EXTERNAL: Dict[str, ExternalBenchmark] = {}

#: Provider modules imported (once) on the first unknown-name lookup.
#: Each must call :func:`register_external_benchmark` at import time.
EXTERNAL_PROVIDERS: Tuple[str, ...] = ("repro.traces.registry",)

_providers_loaded = False


def register_external_benchmark(
    name: str,
    profile: WorkloadProfile,
    layout_builder: Callable[[int], Any],
    walker_factory: Callable[[Any, int], Any],
    replace_existing: bool = False,
) -> None:
    """Register *name* as an externally provided benchmark.

    Synthetic profile names are reserved; re-registering an external
    name requires ``replace_existing`` so accidental collisions fail
    loudly instead of last-writer-wins.
    """
    if name in PROFILES:
        raise ValueError(
            "cannot register external benchmark %r: shadows a synthetic profile"
            % (name,)
        )
    if name in _EXTERNAL and not replace_existing:
        raise ValueError("external benchmark %r already registered" % (name,))
    if profile.name != name:
        raise ValueError(
            "profile.name %r does not match benchmark name %r"
            % (profile.name, name)
        )
    _EXTERNAL[name] = ExternalBenchmark(
        profile=profile,
        layout_builder=layout_builder,
        walker_factory=walker_factory,
    )


def _load_providers() -> None:
    global _providers_loaded
    if _providers_loaded:
        return
    _providers_loaded = True  # set first: a broken provider should not retry forever
    for module in EXTERNAL_PROVIDERS:
        importlib.import_module(module)


def external_benchmark(name: str) -> Optional[ExternalBenchmark]:
    """The :class:`ExternalBenchmark` for *name*, or ``None`` if synthetic/unknown."""
    if name in PROFILES:
        return None
    if name not in _EXTERNAL:
        _load_providers()
    return _EXTERNAL.get(name)


def external_benchmark_names() -> Tuple[str, ...]:
    """Sorted names of all registered external benchmarks."""
    _load_providers()
    return tuple(sorted(_EXTERNAL))


def known_benchmark_names() -> Tuple[str, ...]:
    """Every runnable benchmark name: synthetic profiles then external."""
    return BENCHMARK_NAMES + external_benchmark_names()


def get_profile(name: str) -> WorkloadProfile:
    """Look up a benchmark profile by paper name or registered trace name.

    Raises ``KeyError`` with the list of valid names on a miss.
    """
    try:
        return PROFILES[name]
    except KeyError:
        pass
    ext = external_benchmark(name)
    if ext is not None:
        return ext.profile
    raise KeyError(
        "unknown benchmark %r; valid: %s"
        % (name, ", ".join(known_benchmark_names()))
    )

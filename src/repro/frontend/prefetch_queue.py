"""Prefetch Queue (PQ).

Buffers prefetch requests from PDIP/EIP between the prefetcher and the
L1-I, enforcing the paper's demand-priority rules (Section 5): a request
is dropped if the PQ is full; when serviced, it probes the L1-I and only
forwards to the L2 on a probe miss and only while enough MSHRs remain
free for demand fetches.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.memory.hierarchy import MemoryHierarchy
from repro.telemetry.handle import NULL_RECORDER


class PrefetchQueue:
    """Bounded FIFO of prefetch line addresses (Table 1: 40 entries).

    Requests are stored as bare line numbers (the cheapest possible
    "request record" — no per-request object allocation on the hot
    path) with a mirror set for O(1) duplicate filtering.

    The flat-array core (:mod:`repro.simulator.fastcore`) inlines
    :meth:`tick` and :meth:`request` against ``_q``/``_queued`` directly
    and hoists ``capacity``/``issue_width``/``mshr_reserve`` into its
    main loop — renaming these attributes or changing drain order must
    be mirrored there (the differential fuzzer pins the behavior).
    """

    __slots__ = ("hierarchy", "capacity", "issue_width", "mshr_reserve",
                 "_q", "_queued", "requests", "dropped_full", "issued",
                 "filtered_resident", "tel")

    def __init__(self, hierarchy: MemoryHierarchy, capacity: int = 40,
                 issue_width: int = 2, mshr_reserve: int = 2):
        self.hierarchy = hierarchy
        self.capacity = capacity
        self.issue_width = issue_width
        self.mshr_reserve = mshr_reserve
        self._q: Deque[int] = deque()
        self._queued = set()
        self.requests = 0
        self.dropped_full = 0
        self.issued = 0
        self.filtered_resident = 0
        #: telemetry handle (no-op unless a TelemetrySession attaches)
        self.tel = NULL_RECORDER

    def __len__(self) -> int:
        return len(self._q)

    def request(self, line: int, cycle: int = 0) -> bool:
        """Enqueue a prefetch for ``line``; False if dropped (PQ full/dup).

        ``cycle`` only timestamps telemetry drop events; it does not
        affect queueing.
        """
        self.requests += 1
        if line in self._queued:
            tel = self.tel
            if tel.enabled:
                tel.emit("pq_drop", cycle, line=line, reason="dup")
            return False
        if len(self._q) >= self.capacity:
            self.dropped_full += 1
            tel = self.tel
            if tel.enabled:
                tel.emit("pq_drop", cycle, line=line, reason="full")
            return False
        self._q.append(line)
        self._queued.add(line)
        return True

    def tick(self, cycle: int) -> int:
        """Service up to ``issue_width`` queued prefetches; returns count issued."""
        q = self._q
        if not q:
            return 0
        issued = 0
        queued = self._queued
        hierarchy = self.hierarchy
        probe = hierarchy.l1i.probe
        prefetch = hierarchy.prefetch_instruction
        reserve = self.mshr_reserve
        tel = self.tel
        for _ in range(min(self.issue_width, len(q))):
            line = q.popleft()
            queued.discard(line)
            if probe(line):
                self.filtered_resident += 1
                continue
            if prefetch(line, cycle, mshr_reserve=reserve):
                issued += 1
                self.issued += 1
                if tel.enabled:
                    tel.emit("pq_issue", cycle, line=line)
        return issued

    def flush(self) -> None:
        """Drop all queued requests."""
        self._q.clear()
        self._queued.clear()

"""Fetch Target Queue.

A FIFO of basic-block fetch targets produced by the IAG. Each entry
remembers everything the later pipeline stages and the FEC classifier
need: which lines the block spans, the per-line readiness from the FDIP
prefetch, whether the block sits on a wrong path, how close behind a
resteer it was enqueued, and the decode-starvation cycles it caused while
parked at the head.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.branch.bpu import MispredictKind
from repro.workloads.layout import BasicBlock


@dataclass
class FTQEntry:
    """One basic block queued for fetch."""

    block: BasicBlock
    lines: List[int]
    enqueue_cycle: int
    is_wrong_path: bool = False
    #: actual control-flow outcome (meaningless on the wrong path)
    taken: bool = False
    target_addr: int = 0
    #: resteer verdict the BPU issued for this block
    mispredict: MispredictKind = MispredictKind.NONE
    #: wrong-path start address when mispredicted
    predicted_target: Optional[int] = None
    #: the resteer this entry was enqueued behind: kind, trigger block
    #: line, and how many entries were enqueued since it (the "wake"
    #: distance). Recorded at enqueue — by retirement several newer
    #: resteers may have happened.
    resteer_kind: Optional[MispredictKind] = None
    resteer_trigger_line: Optional[int] = None
    entries_since_resteer: int = 1 << 30
    #: per-line fill readiness recorded at FDIP-prefetch (enqueue) time
    line_ready: Dict[int, int] = field(default_factory=dict)
    #: lines whose FDIP fill could not start (MSHRs exhausted); the IFU
    #: issues them as demand accesses when the entry reaches the head
    deferred_lines: List[int] = field(default_factory=list)
    #: lines that newly missed the L1-I when this entry was enqueued
    missed_lines: List[int] = field(default_factory=list)
    #: lines whose fill was still pending when the FDIP stream touched them
    pending_lines: List[int] = field(default_factory=list)
    #: decode-starvation cycles charged to this entry while at the head
    starvation_cycles: int = 0
    #: True if the back end drained (issue queue empty) during that wait
    backend_starved: bool = False

    @property
    def ready_cycle(self) -> int:
        """Cycle at which every *initiated* line fill completes.

        Meaningless while ``deferred_lines`` is non-empty — the IFU must
        issue those before the entry can be considered ready.
        """
        if not self.line_ready:
            return self.enqueue_cycle
        return max(self.line_ready.values())

    @property
    def incurred_miss(self) -> bool:
        """True if any of the entry's lines missed or merged."""
        return bool(self.missed_lines) or bool(self.pending_lines)


class FTQ:
    """Bounded FIFO of :class:`FTQEntry` (default depth 24, like Table 1)."""

    def __init__(self, depth: int = 24):
        if depth <= 0:
            raise ValueError("FTQ depth must be positive")
        self.depth = depth
        self._q: Deque[FTQEntry] = deque()
        self.enqueues = 0
        self.flushes = 0
        self.flushed_entries = 0

    def __len__(self) -> int:
        return len(self._q)

    @property
    def full(self) -> bool:
        """True when the queue is at capacity."""
        return len(self._q) >= self.depth

    @property
    def empty(self) -> bool:
        """True when the queue holds nothing."""
        return not self._q

    def push(self, entry: FTQEntry) -> None:
        """Push a return address."""
        if self.full:
            raise RuntimeError("push on full FTQ")
        self._q.append(entry)
        self.enqueues += 1

    def head(self) -> Optional[FTQEntry]:
        """Oldest entry without removing it (None if empty)."""
        return self._q[0] if self._q else None

    def pop(self) -> FTQEntry:
        """Remove and return the oldest entry."""
        return self._q.popleft()

    def flush(self) -> int:
        """Drop every queued entry (front-end resteer); returns the count."""
        n = len(self._q)
        self._q.clear()
        self.flushes += 1
        self.flushed_entries += n
        return n

    def occupancy(self) -> int:
        """Number of live entries."""
        return len(self._q)

    def __iter__(self):
        return iter(self._q)

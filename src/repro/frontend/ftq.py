"""Fetch Target Queue.

A FIFO of basic-block fetch targets produced by the IAG. Each entry
remembers everything the later pipeline stages and the FEC classifier
need: which lines the block spans, the per-line readiness from the FDIP
prefetch, whether the block sits on a wrong path, how close behind a
resteer it was enqueued, and the decode-starvation cycles it caused while
parked at the head.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.branch.bpu import MispredictKind
from repro.workloads.layout import BasicBlock


class FTQEntry:
    """One basic block queued for fetch.

    A plain ``__slots__`` class with a hand-written ``__init__`` rather
    than a dataclass: the machine allocates one per enqueued block
    (including every wrong-path block), which makes construction one of
    the hottest allocation sites in the simulator.
    """

    __slots__ = (
        "block", "lines", "enqueue_cycle", "is_wrong_path", "taken",
        "target_addr", "mispredict", "predicted_target", "resteer_kind",
        "resteer_trigger_line", "entries_since_resteer", "line_ready",
        "deferred_lines", "missed_lines", "pending_lines",
        "starvation_cycles", "backend_starved", "ready_at",
    )

    def __init__(self, block: BasicBlock, lines: List[int],
                 enqueue_cycle: int, is_wrong_path: bool = False,
                 taken: bool = False, target_addr: int = 0,
                 mispredict: MispredictKind = MispredictKind.NONE,
                 predicted_target: Optional[int] = None,
                 resteer_kind: Optional[MispredictKind] = None,
                 resteer_trigger_line: Optional[int] = None,
                 entries_since_resteer: int = 1 << 30,
                 starvation_cycles: int = 0,
                 backend_starved: bool = False):
        self.block = block
        self.lines = lines
        self.enqueue_cycle = enqueue_cycle
        self.is_wrong_path = is_wrong_path
        #: actual control-flow outcome (meaningless on the wrong path)
        self.taken = taken
        self.target_addr = target_addr
        #: resteer verdict the BPU issued for this block
        self.mispredict = mispredict
        #: wrong-path start address when mispredicted
        self.predicted_target = predicted_target
        #: the resteer this entry was enqueued behind: kind, trigger
        #: block line, and how many entries were enqueued since it (the
        #: "wake" distance). Recorded at enqueue — by retirement several
        #: newer resteers may have happened.
        self.resteer_kind = resteer_kind
        self.resteer_trigger_line = resteer_trigger_line
        self.entries_since_resteer = entries_since_resteer
        #: per-line fill readiness recorded at FDIP-prefetch (enqueue) time
        self.line_ready: Dict[int, int] = {}
        #: lines whose FDIP fill could not start (MSHRs exhausted); the
        #: IFU issues them as demand accesses when the entry reaches the
        #: head
        self.deferred_lines: List[int] = []
        #: lines that newly missed the L1-I when this entry was enqueued
        self.missed_lines: List[int] = []
        #: lines whose fill was still pending when the FDIP stream
        #: touched them
        self.pending_lines: List[int] = []
        #: decode-starvation cycles charged to this entry while at the head
        self.starvation_cycles = starvation_cycles
        #: True if the back end drained (issue queue empty) during that wait
        self.backend_starved = backend_starved
        #: running max of ``line_ready`` maintained by the machine's
        #: FDIP/deferred-fill paths so decode and the event-horizon scan
        #: read one int instead of recomputing ``max(line_ready.values())``
        #: every cycle. Only meaningful for machine-built entries.
        self.ready_at = enqueue_cycle

    @property
    def ready_cycle(self) -> int:
        """Cycle at which every *initiated* line fill completes.

        Meaningless while ``deferred_lines`` is non-empty — the IFU must
        issue those before the entry can be considered ready.
        """
        if not self.line_ready:
            return self.enqueue_cycle
        return max(self.line_ready.values())

    @property
    def incurred_miss(self) -> bool:
        """True if any of the entry's lines missed or merged."""
        return bool(self.missed_lines) or bool(self.pending_lines)


class FTQ:
    """Bounded FIFO of :class:`FTQEntry` (default depth 24, like Table 1)."""

    __slots__ = ("depth", "_q", "enqueues", "flushes", "flushed_entries")

    def __init__(self, depth: int = 24):
        if depth <= 0:
            raise ValueError("FTQ depth must be positive")
        self.depth = depth
        self._q: Deque[FTQEntry] = deque()
        self.enqueues = 0
        self.flushes = 0
        self.flushed_entries = 0

    def __len__(self) -> int:
        return len(self._q)

    @property
    def full(self) -> bool:
        """True when the queue is at capacity."""
        return len(self._q) >= self.depth

    @property
    def empty(self) -> bool:
        """True when the queue holds nothing."""
        return not self._q

    def push(self, entry: FTQEntry) -> None:
        """Push a return address."""
        if self.full:
            raise RuntimeError("push on full FTQ")
        self._q.append(entry)
        self.enqueues += 1

    def head(self) -> Optional[FTQEntry]:
        """Oldest entry without removing it (None if empty)."""
        return self._q[0] if self._q else None

    def pop(self) -> FTQEntry:
        """Remove and return the oldest entry."""
        return self._q.popleft()

    def flush(self) -> int:
        """Drop every queued entry (front-end resteer); returns the count."""
        n = len(self._q)
        self._q.clear()
        self.flushes += 1
        self.flushed_entries += n
        return n

    def occupancy(self) -> int:
        """Number of live entries."""
        return len(self._q)

    def __iter__(self):
        return iter(self._q)


class FlatFTQView(FTQ):
    """Counter-compatible FTQ facade over the fast core's slot ring.

    The flat-array backend keeps FTQ entries in parallel arrays rather
    than a deque of :class:`FTQEntry`, but probes, telemetry harvesting,
    and diagnostics all read the FTQ through this object's surface:
    ``occupancy()`` / ``len()`` / ``full`` / ``empty`` delegate to the
    owning machine via ``occupancy_fn``, and the ``enqueues`` /
    ``flushes`` / ``flushed_entries`` counters are maintained directly
    by the fast core. The inherited ``_q`` deque stays empty — entry
    *contents* are not exposed here (iterating yields nothing).
    """

    __slots__ = ("_occupancy_fn",)

    def __init__(self, depth: int, occupancy_fn):
        super().__init__(depth)
        self._occupancy_fn = occupancy_fn

    def __len__(self) -> int:
        return self._occupancy_fn()

    @property
    def full(self) -> bool:
        """True when the ring window is at capacity."""
        return self._occupancy_fn() >= self.depth

    @property
    def empty(self) -> bool:
        """True when the ring window holds nothing."""
        return not self._occupancy_fn()

    def occupancy(self) -> int:
        """Number of live slots in the ring window."""
        return self._occupancy_fn()

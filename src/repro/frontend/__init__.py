"""Decoupled front-end components: FTQ and prefetch queue.

The Fetch Target Queue decouples the instruction address generator (BPU
walking the predicted path) from the instruction fetch unit. Every entry
is one basic block; enqueuing an entry triggers the FDIP prefetch of its
cache lines, so a full FTQ gives each miss up to FTQ-depth blocks of lead
time — which is exactly why only resteer-adjacent misses stall the
machine, the observation PDIP is built on.
"""

from repro.frontend.ftq import FTQ, FTQEntry
from repro.frontend.prefetch_queue import PrefetchQueue

__all__ = ["FTQ", "FTQEntry", "PrefetchQueue"]

"""The cycle-level machine (Figure 7 wiring).

Per cycle, in order:

1. **Resteer** — if a scheduled front-end resteer matures, flush the FTQ,
   squash wrong-path work in the back end, and redirect the IAG.
2. **IAG** — fill the FTQ along the predicted path: correct-path blocks
   from the walker (with the BPU judging each transfer), or wrong-path
   blocks from a speculative walk after an undiscovered mispredict.
   Enqueuing triggers the FDIP prefetch of the entry's lines and the
   prefetcher's trigger lookup (PDIP table / EIP entangling table).
3. **PQ** — drain prefetch requests into the L1-I under the MSHR rules.
4. **Decode** — consume ready FTQ heads up to the decode width; starve
   (and charge the head entry) when lines are not ready; schedule the
   resteer when a mispredicted block finally decodes.
5. **Back end** — retire; at block retirement run FEC classification,
   EMISSARY promotion, prefetcher training, and the data-side stream.

**Event-horizon fast path** (DESIGN.md §10): most cycles of a
frontend-bound run do nothing observable — the FTQ head is waiting on a
fill, the IAG is redirect-stalled, the PQ is empty, and the back end has
nothing eligible to retire. :meth:`Machine.run` detects those cycles,
computes the earliest cycle at which *any* stage can act (the horizon:
resteer maturation, FTQ-head fill completion, back-end head
eligibility/stall expiry, IAG redirect expiry) and advances the clock
there in one step, batch-updating every cycle-proportional counter
(starvation charging, top-down slots, back-end stall cycles) and
consuming exactly the RNG draws the skipped per-cycle loop would have.
Stats are bit-identical to per-cycle stepping; attaching a probe
disables skipping (unless ``probe_coarse`` opts into one observation per
jump).

**This class is the reference core.** The flat-array fast core
(:mod:`repro.simulator.fastcore`, DESIGN.md §15, selected via
``MachineConfig.backend``) subclasses it and *transcribes* the per-cycle
pipeline below — resteer ordering, RNG draw sequence, counter update
order, telemetry emission points — into an allocation-free loop over
preallocated arrays. Any semantic edit here (a new counter, a reordered
draw, a moved ``tel.emit``) must be mirrored there in the same PR; the
golden tests, the differential fuzzer
(``tests/test_fastcore_differential.py``), and the stats-parity lint
rule will each catch a divergence, but the lockstep is maintained by
hand.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from itertools import accumulate
from typing import List, Optional

from repro.backend.model import BackendModel
from repro.branch.bpu import BlockPrediction, BranchPredictionUnit, MispredictKind
from repro.core.fec import FECClassifier
from repro.frontend.ftq import FTQ, FTQEntry
from repro.frontend.prefetch_queue import PrefetchQueue
from repro.memory.hierarchy import MemoryHierarchy
from repro.prefetchers.base import NoPrefetcher, Prefetcher
from repro.simulator.config import MachineConfig
from repro.simulator.stats import COUNTER_FIELDS, SimulationStats
from repro.telemetry.handle import NULL_RECORDER
from repro.utils import (INSTRUCTION_SIZE, LINE_SHIFT, SLOTTED, derive_rng,
                         line_of)
from repro.workloads.layout import BranchKind, CodeLayout
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.walker import (PathWalker, SpeculativePath,
                                    static_majority_successor)

#: data lines live in a disjoint address space from instruction lines
DATA_LINE_BASE = 1 << 40

#: hot-path copy for the inlined ``block.is_branch`` test
_FALLTHROUGH = BranchKind.FALLTHROUGH


@dataclass(**SLOTTED)
class _Resteer:
    """A mispredict discovered by the IAG, waiting to resolve.

    The machine keeps **one** instance and recycles it (at most one
    resteer is outstanding at a time), so scheduling a mispredict costs
    a few attribute stores instead of an allocation.
    """

    kind: MispredictKind
    trigger_line: int
    #: cycle the front end redirects (set when the branch decodes)
    scheduled: Optional[int] = None


class Machine:
    """One simulated core running one synthetic workload."""

    def __init__(self, layout: CodeLayout, profile: WorkloadProfile,
                 config: Optional[MachineConfig] = None,
                 hierarchy: Optional[MemoryHierarchy] = None,
                 prefetcher: Optional[Prefetcher] = None,
                 pq: Optional[PrefetchQueue] = None,
                 bpu: Optional[BranchPredictionUnit] = None,
                 walker=None,
                 seed: int = 0):
        self.layout = layout
        self.profile = profile
        self.config = config if config is not None else MachineConfig()
        cfg = self.config
        self.hierarchy = (hierarchy if hierarchy is not None
                          else MemoryHierarchy(config=cfg.hierarchy, seed=seed))
        self.pq = pq if pq is not None else PrefetchQueue(
            self.hierarchy, capacity=cfg.pq_capacity,
            issue_width=cfg.pq_issue_width, mshr_reserve=cfg.pq_mshr_reserve)
        self.prefetcher = prefetcher if prefetcher is not None else NoPrefetcher()
        # skip the per-taken-branch observe_branch call entirely for
        # prefetchers that inherit the base no-op (everything but PDIP)
        self._observe_branch = (
            self.prefetcher.observe_branch
            if type(self.prefetcher).observe_branch
            is not Prefetcher.observe_branch else None)
        self.bpu = bpu if bpu is not None else BranchPredictionUnit(
            btb_entries=cfg.btb_entries, btb_assoc=cfg.btb_assoc,
            ras_depth=cfg.ras_depth, seed=seed)
        # any object with the PathWalker surface works here — e.g. a
        # repro.workloads.trace.TraceReplayer replaying a recorded stream
        self.walker = walker if walker is not None else PathWalker(
            layout, seed=seed, indirect_noise=profile.indirect_noise)
        self.ftq = FTQ(depth=cfg.ftq_depth)
        self.backend = BackendModel(
            rob_entries=cfg.rob_entries, retire_width=cfg.retire_width,
            depth=cfg.backend_depth, stall_prob=profile.backend_stall_prob,
            issue_empty_threshold=cfg.issue_empty_threshold, seed=seed)
        self.fec = FECClassifier(wake_window=cfg.fec_wake_window,
                                 high_cost_threshold=cfg.fec_high_cost_threshold)

        # hot-path copies of per-cycle config knobs
        self._decode_width = cfg.decode_width
        self._iag_blocks = cfg.iag_blocks_per_cycle
        self._redirect_penalty = cfg.redirect_penalty
        self._predecode_lat = cfg.predecode_resteer_latency
        self._exec_lat = cfg.exec_resteer_latency
        self._data_expose_prob = cfg.data_miss_expose_prob
        self._data_expose_frac = cfg.data_miss_exposed_fraction

        # data-side sampler (Zipf over the profile's data working set)
        self._data_rng = derive_rng(seed, "datastream")
        n = profile.data_lines
        weights = [1.0 / ((i + 1) ** profile.data_zipf_alpha) for i in range(n)]
        total = sum(weights)
        self._data_cum: List[float] = list(
            accumulate(w / total for w in weights))

        # dynamic state
        self.cycle = 0
        self._pending_resteer: Optional[_Resteer] = None
        #: the recycled resteer record (see :class:`_Resteer`)
        self._resteer = _Resteer(kind=MispredictKind.NONE, trigger_line=0)
        self._wrong_path: Optional[SpeculativePath] = None
        self._iag_stall_until = 0
        self._entries_since_resteer = 1 << 30
        self._last_resteer_kind: Optional[MispredictKind] = None
        self._last_resteer_trigger: Optional[int] = None
        self._last_taken_line: Optional[int] = None

        self.stats = SimulationStats()
        self._decode_progress = 0  # instructions of the head already decoded
        self._head_admitted = False
        #: optional per-cycle observer (see repro.simulator.probe)
        self.probe = None
        #: telemetry handle (repro.telemetry). The no-op NULL_RECORDER
        #: unless a TelemetrySession attaches a live recorder; unlike a
        #: probe, telemetry is horizon-aware (``_fast_forward`` emits a
        #: batch event) and never disables cycle skipping.
        self.tel = NULL_RECORDER
        #: event-horizon cycle skipping (DESIGN.md §10). On by default;
        #: automatically bypassed while a probe is attached so observers
        #: see every cycle. Set ``probe_coarse=True`` to keep skipping
        #: with a probe attached — the probe then fires once per jump.
        self.event_horizon = True
        self.probe_coarse = False
        #: diagnostics: cycles (and jumps) the fast path skipped
        self.fast_forwarded_cycles = 0
        self.fast_forwards = 0

    # ==================================================================
    # main loop
    # ==================================================================
    def run(self, instructions: int, warmup: int = 0,
            max_cycles: Optional[int] = None) -> SimulationStats:
        """Simulate until ``warmup + instructions`` have retired.

        Counters are snapshotted after warmup so the returned stats cover
        only the measured window. ``max_cycles`` bounds runaway configs.
        """
        limit = max_cycles if max_cycles is not None else \
            400 * (warmup + instructions)
        snapshot = None
        measure_end = warmup + instructions  # refined once warmup completes
        backend = self.backend
        backend_tick = backend.tick
        on_retire = self._on_retire
        decode = self._decode
        iag_fill = self._iag_fill
        pq = self.pq
        pq_tick = pq.tick
        skippable = self._skippable
        fast_forward = self._fast_forward
        st = self.stats
        while True:
            retired = backend.retired_instructions
            if snapshot is None and retired >= warmup:
                snapshot = self._snapshot()
                measure_end = retired + instructions
            if snapshot is not None and retired >= measure_end:
                break
            if self.event_horizon and (self.probe is None or self.probe_coarse):
                k = skippable()
                if k > 0:
                    cap = limit + 1 - self.cycle
                    fast_forward(k if k < cap else cap)
                    if self.cycle > limit:
                        raise RuntimeError(
                            "simulation exceeded %d cycles (deadlock?)"
                            % limit)
                    continue
            # -- inlined step() (keep the two in lockstep) -----------------
            cycle = self.cycle
            pr = self._pending_resteer
            if (pr is not None and pr.scheduled is not None
                    and cycle >= pr.scheduled):
                self._handle_resteer(cycle)
            if cycle >= self._iag_stall_until:
                iag_fill(cycle)
            if pq._q:
                pq_tick(cycle)
            decode(cycle)
            st.instructions += backend_tick(cycle, on_retire)
            st.cycles += 1
            if self.probe is not None:
                self.probe(self)
            self.cycle = cycle + 1
            if cycle >= limit:
                raise RuntimeError(
                    "simulation exceeded %d cycles (deadlock?)" % limit)
        return self._delta(snapshot)

    def step(self) -> None:
        """Advance one cycle."""
        cycle = self.cycle
        pr = self._pending_resteer
        if pr is not None and pr.scheduled is not None and cycle >= pr.scheduled:
            self._handle_resteer(cycle)
        if cycle >= self._iag_stall_until:
            self._iag_fill(cycle)
        pq = self.pq
        if pq._q:
            pq.tick(cycle)
        self._decode(cycle)
        retired = self.backend.tick(cycle, self._on_retire)
        st = self.stats
        st.instructions += retired
        st.cycles += 1
        if self.probe is not None:
            self.probe(self)
        self.cycle = cycle + 1

    # ==================================================================
    # event-horizon fast path
    # ==================================================================
    def _skippable(self) -> int:
        """Cycles until anything observable can happen (0 = step normally).

        A positive return means every stage is provably idle for that
        many cycles: no matured resteer, the IAG is stalled or the FTQ
        is full (or the wrong path dead-ended), the PQ is empty, the
        FTQ head (if any) is waiting on a fill it has already issued,
        and the back end has nothing eligible to retire. The horizon is
        the earliest of: resteer maturation, IAG redirect expiry,
        FTQ-head fill completion, and back-end head eligibility (decode
        depth or injected-stall expiry).
        """
        cycle = self.cycle
        horizon = None
        pr = self._pending_resteer
        if pr is not None:
            sched = pr.scheduled
            if sched is not None:
                if sched <= cycle:
                    return 0  # resteer acts this cycle
                horizon = sched
        stall_until = self._iag_stall_until
        ftq = self.ftq
        if cycle < stall_until:
            if horizon is None or stall_until < horizon:
                horizon = stall_until
        elif len(ftq._q) >= ftq.depth:
            pass  # full FTQ stays full while decode starves (checked below)
        else:
            wp = self._wrong_path
            if wp is None or (wp.current is not None and wp.remaining > 0):
                return 0  # IAG would enqueue a block this cycle
        if self.pq._q:
            return 0  # PQ drains up to issue_width lines per cycle
        q = ftq._q
        if q:
            head = q[0]
            if head.deferred_lines:
                return 0  # IFU retries deferred fills every cycle
            ready = head.ready_at  # running max over line_ready
            if ready <= cycle:
                return 0  # decode consumes the head this cycle
            if horizon is None or ready < horizon:
                horizon = ready
        backend = self.backend
        bq = backend._q
        if bq:
            blk = bq[0]
            if not blk.is_wrong_path:
                eligible = blk.decode_cycle + backend.depth
                stall = backend._stall_until
                if stall > eligible:
                    eligible = stall
                if eligible <= cycle:
                    return 0  # back end may retire this cycle
                if horizon is None or eligible < horizon:
                    horizon = eligible
            # a wrong-path head blocks retirement until the resteer
            # squashes it, which the resteer bound already covers
        if horizon is None:
            return 0  # nothing scheduled — never skip blind
        return horizon - cycle

    def _fast_forward(self, k: int) -> None:
        """Advance ``k`` provably-idle cycles in one arithmetic step.

        Applies exactly what ``k`` calls of :meth:`step` would have:
        top-down slots all charge frontend-bound (decode delivered
        nothing and the back end was not the blocker), decode
        starvation charges the waiting head, and the back end consumes
        one stall-probability draw per cycle outside its injected-stall
        window (stall-window cycles draw nothing — matching
        ``BackendModel.tick``'s short-circuit — and count as stall
        cycles unconditionally).
        """
        cycle = self.cycle
        st = self.stats
        slots = self._decode_width * k
        st.slots_total += slots
        st.slots_frontend_bound += slots
        st.decode_starvation_cycles += k
        backend = self.backend
        q = self.ftq._q
        if q:
            head = q[0]
            head.starvation_cycles += k
            if backend.issue_queue_empty:
                head.backend_starved = True
        in_stall = backend._stall_until - cycle
        if in_stall < 0:
            in_stall = 0
        elif in_stall > k:
            in_stall = k
        stalls = in_stall
        draws = k - in_stall
        if draws:
            rng_random = backend._rng.random
            p = backend.stall_prob
            for _ in range(draws):
                if rng_random() < p:
                    stalls += 1
        backend.stall_cycles += stalls
        st.cycles += k
        self.cycle = cycle + k
        self.fast_forwarded_cycles += k
        self.fast_forwards += 1
        tel = self.tel
        if tel.enabled:
            # one batch event per jump keeps the trace horizon-aware
            tel.emit("fast_forward", cycle, cycles=k)
        if self.probe is not None:
            # probe_coarse mode: one observation covering the whole jump
            self.probe(self)

    # ==================================================================
    # stage 1: resteer
    # ==================================================================
    def _handle_resteer(self, cycle: int) -> None:
        pr = self._pending_resteer
        if pr is None or pr.scheduled is None or cycle < pr.scheduled:
            return
        self.ftq.flush()
        self.backend.squash_wrong_path()
        self._wrong_path = None
        self._decode_progress = 0
        self._head_admitted = False
        self._iag_stall_until = cycle + self._redirect_penalty
        self._entries_since_resteer = 0
        self._last_resteer_kind = pr.kind
        self._last_resteer_trigger = pr.trigger_line
        self._pending_resteer = None
        tel = self.tel
        if tel.enabled:
            tel.emit("resteer", cycle, resteer_kind=pr.kind.name,
                     trigger_line=pr.trigger_line)
        self.stats.resteers += 1
        if pr.kind is MispredictKind.BTB_MISS:
            self.stats.resteers_btb_miss += 1
        elif pr.kind is MispredictKind.COND_MISPREDICT:
            self.stats.resteers_cond += 1
        elif pr.kind is MispredictKind.INDIRECT_MISPREDICT:
            self.stats.resteers_indirect += 1
        elif pr.kind is MispredictKind.RETURN_MISPREDICT:
            self.stats.resteers_return += 1

    # ==================================================================
    # stage 2: IAG / FTQ fill (with FDIP prefetch)
    # ==================================================================
    def _iag_fill(self, cycle: int) -> None:
        if cycle < self._iag_stall_until:
            return
        ftq = self.ftq
        q = ftq._q
        depth = ftq.depth
        next_entry = self._next_entry
        fdip_access = self._fdip_access
        finish_enqueue = self._finish_enqueue
        for _ in range(self._iag_blocks):
            if len(q) >= depth:
                return
            entry = next_entry(cycle)
            if entry is None:
                return
            fdip_access(entry, cycle)
            finish_enqueue(entry, cycle)

    def _next_entry(self, cycle: int) -> Optional[FTQEntry]:
        wp = self._wrong_path
        if wp is not None:
            # inlined SpeculativePath.step (one call per wrong-path block)
            cur = wp.current
            if cur is None or wp.remaining <= 0:
                return None  # wrong path dead-ended; wait for the resteer
            block = self.layout.blocks[cur]
            wp.remaining -= 1
            wp.current = static_majority_successor(self.layout, block,
                                                   wp.stack)
            self.stats.wrong_path_blocks += 1
            return FTQEntry(block, block.lines(), cycle, True)
        event = self.walker.next_event()
        block = event.block
        entry = FTQEntry(block, block.lines(), cycle, False,
                         event.taken, event.target_addr)
        prediction = self.bpu.predict_block(block, event.taken,
                                            event.target_addr)
        entry.mispredict = prediction.mispredict
        entry.predicted_target = prediction.predicted_target
        if prediction.mispredict.is_resteer:
            self._start_wrong_path(entry, prediction)
        return entry

    def _start_wrong_path(self, entry: FTQEntry,
                          prediction: BlockPrediction) -> None:
        pr = self._resteer
        pr.kind = prediction.mispredict
        pr.trigger_line = line_of(entry.block.branch_pc)
        pr.scheduled = None
        self._pending_resteer = pr
        start_bid = None
        if prediction.predicted_target is not None:
            start_bid = self.layout.entry_index().get(prediction.predicted_target)
        self._wrong_path = SpeculativePath(
            self.layout, start_bid, self.walker.snapshot_stack(),
            max_blocks=self.config.wrongpath_max_blocks)

    def _fdip_access(self, entry: FTQEntry, cycle: int) -> None:
        """FDIP-prefetch the entry's lines.

        Lines that cannot allocate an MSHR are *deferred*: the entry still
        enqueues (a real FTQ does not stall on cache back-pressure) and
        the IFU issues the remaining fills as demand accesses when the
        entry reaches the head.
        """
        lines = entry.lines
        hierarchy = self.hierarchy
        fetch = hierarchy.fetch_instruction
        line_ready = entry.line_ready
        ready_at = entry.ready_at
        if hierarchy.itlb is None:
            # Inlined hierarchy.fetch_ready_hit with *batched* counter
            # updates: ready L1 hits (the overwhelmingly common case)
            # accumulate access counts and the LRU clock in locals,
            # flushed before any full fetch_instruction call so the
            # interleaving leaves every counter exactly as the
            # per-line calls would have.
            l1i = hierarchy.l1i
            state_get = l1i._lines.get
            hit_ready = cycle + hierarchy._l1_hit
            clock = l1i._clock
            hits = 0
            for i, line in enumerate(lines):
                state = state_get(line)
                if (state is not None and state.ready_cycle <= cycle
                        and not state.unused_prefetch):
                    clock += 1
                    state.lru = clock
                    hits += 1
                    line_ready[line] = hit_ready
                    if hit_ready > ready_at:
                        ready_at = hit_ready
                    continue
                l1i._clock = clock
                l1i.accesses += hits
                hierarchy.l1i_demand_accesses += hits
                hits = 0
                result = fetch(line, cycle)
                clock = l1i._clock
                if result.stalled_mshr:
                    entry.deferred_lines.extend(lines[i:])
                    entry.ready_at = ready_at
                    return
                ready = result.ready_cycle
                line_ready[line] = ready
                if ready > ready_at:
                    ready_at = ready
                if result.l1_miss:
                    entry.missed_lines.append(line)
                elif result.pending_hit:
                    entry.pending_lines.append(line)
            l1i._clock = clock
            l1i.accesses += hits
            hierarchy.l1i_demand_accesses += hits
            entry.ready_at = ready_at
            return
        for i, line in enumerate(lines):
            result = fetch(line, cycle)
            if result.stalled_mshr:
                entry.deferred_lines.extend(lines[i:])
                entry.ready_at = ready_at
                return
            ready = result.ready_cycle
            line_ready[line] = ready
            if ready > ready_at:
                ready_at = ready
            if result.l1_miss:
                entry.missed_lines.append(line)
            elif result.pending_hit:
                entry.pending_lines.append(line)
        entry.ready_at = ready_at

    def _finish_enqueue(self, entry: FTQEntry, cycle: int) -> None:
        since = self._entries_since_resteer + 1
        self._entries_since_resteer = since
        entry.entries_since_resteer = since
        entry.resteer_kind = self._last_resteer_kind
        entry.resteer_trigger_line = self._last_resteer_trigger
        # inlined FTQ.push — _iag_fill already checked capacity
        ftq = self.ftq
        ftq._q.append(entry)
        ftq.enqueues += 1
        block = entry.block
        observe = self._observe_branch
        # inlined block.is_branch / line_of(block.branch_pc)
        if (observe is not None and block.kind is not _FALLTHROUGH
                and (entry.taken or entry.is_wrong_path)):
            observe((block.addr + (block.num_instructions - 1)
                     * INSTRUCTION_SIZE) >> LINE_SHIFT)
        self.prefetcher.on_ftq_enqueue(entry, cycle)

    # ==================================================================
    # stage 4: decode
    # ==================================================================
    def _decode(self, cycle: int) -> None:
        width = self._decode_width
        budget = width
        delivered_correct = 0
        delivered_wrong = 0
        blocked_backend = False
        starving_head: Optional[FTQEntry] = None
        q = self.ftq._q
        backend = self.backend
        progress = self._decode_progress
        admitted = self._head_admitted

        while budget > 0:
            if not q:
                break
            head = q[0]
            if head.deferred_lines:
                self._issue_deferred(head, cycle)
                if head.deferred_lines:
                    starving_head = head
                    break
            if head.ready_at > cycle:
                starving_head = head
                break
            num_instructions = head.block.num_instructions
            remaining = num_instructions - progress
            if not admitted:
                if not backend.admit(head, num_instructions, cycle,
                                     is_wrong_path=head.is_wrong_path):
                    blocked_backend = True
                    break
                admitted = True
                self._maybe_schedule_resteer(head, cycle)
            take = remaining if remaining < budget else budget
            progress += take
            budget -= take
            if head.is_wrong_path:
                delivered_wrong += take
            else:
                delivered_correct += take
            if progress >= num_instructions:
                q.popleft()
                progress = 0
                admitted = False
        self._decode_progress = progress
        self._head_admitted = admitted

        # -- top-down accounting ------------------------------------------
        st = self.stats
        st.slots_total += width
        st.slots_retiring += delivered_correct
        st.slots_bad_speculation += delivered_wrong
        shortfall = budget
        if shortfall > 0:
            if blocked_backend:
                st.slots_backend_bound += shortfall
            else:
                st.slots_frontend_bound += shortfall

        # -- decode starvation (FEC bookkeeping) ----------------------------
        if delivered_correct + delivered_wrong == 0 and not blocked_backend:
            st.decode_starvation_cycles += 1
            if starving_head is not None:
                starving_head.starvation_cycles += 1
                if backend.issue_queue_empty:
                    starving_head.backend_starved = True

    def _issue_deferred(self, head: FTQEntry, cycle: int) -> None:
        """Demand-issue fills the FDIP stream could not start (MSHR full)."""
        deferred = head.deferred_lines
        fetch = self.hierarchy.fetch_instruction
        while deferred:
            line = deferred[0]
            result = fetch(line, cycle)
            if result.stalled_mshr:
                return
            deferred.pop(0)
            ready = result.ready_cycle
            head.line_ready[line] = ready
            if ready > head.ready_at:
                head.ready_at = ready
            if result.l1_miss:
                head.missed_lines.append(line)
            elif result.pending_hit:
                head.pending_lines.append(line)

    def _maybe_schedule_resteer(self, entry: FTQEntry, cycle: int) -> None:
        pr = self._pending_resteer
        if (pr is None or pr.scheduled is not None
                or entry.mispredict is not pr.kind
                or not entry.mispredict.is_resteer or entry.is_wrong_path):
            return
        if entry.mispredict.resolves_at_predecode:
            pr.scheduled = cycle + self._predecode_lat
        else:
            pr.scheduled = cycle + self._exec_lat

    # ==================================================================
    # stage 5: retirement callbacks
    # ==================================================================
    def _on_retire(self, entry: FTQEntry) -> None:
        cycle = self.cycle
        events = self.fec.on_retire(
            entry,
            resteer_kind=entry.resteer_kind,
            resteer_trigger_line=entry.resteer_trigger_line,
            last_taken_line=self._last_taken_line)
        if events:
            self.stats.fec_starvation_cycles += entry.starvation_cycles
            tel = self.tel
            threshold = self.fec.high_cost_threshold
            for event in events:
                self.hierarchy.promote_fec(event.line)
                if event.line in self.hierarchy.prefetched_lines:
                    self.stats.fec_covered_events += 1
                if tel.enabled:
                    tel.emit("fec", cycle, line=event.line,
                             trigger_line=event.trigger_line,
                             trigger_type=event.trigger_type.value,
                             starvation=event.starvation_cycles,
                             high_cost=event.is_high_cost(threshold))
            self.stats.fec_events += len(events)
        self.prefetcher.on_fec_events(events, cycle)
        self.prefetcher.on_retire(entry, cycle)
        if entry.taken and entry.block.is_branch:
            self._last_taken_line = line_of(entry.block.branch_pc)
        self._data_stream(entry, cycle)

    def _data_stream(self, entry: FTQEntry, cycle: int) -> None:
        rng_random = self._data_rng.random
        access_prob = self.profile.data_access_prob
        cum = self._data_cum
        data_access = self.hierarchy.data_access
        expose_prob = self._data_expose_prob
        expose_frac = self._data_expose_frac
        inject_stall = self.backend.inject_stall
        for _ in range(entry.block.num_instructions):
            if rng_random() >= access_prob:
                continue
            idx = bisect_left(cum, rng_random())
            ready, hit = data_access(DATA_LINE_BASE + idx, cycle)
            if not hit and rng_random() < expose_prob:
                exposed = int((ready - cycle) * expose_frac)
                if exposed > 0:
                    inject_stall(cycle, exposed)

    # ==================================================================
    # stats plumbing
    # ==================================================================
    _COUNTER_SOURCES = (
        ("l1i_accesses", "hierarchy", "l1i_demand_accesses"),
        ("l1i_misses", "hierarchy", "l1i_demand_misses"),
        ("l2_inst_misses", "hierarchy", "l2_inst_misses"),
        ("l2_data_misses", "hierarchy", "l2_data_misses"),
        ("l3_misses", "hierarchy", "l3_misses"),
        ("prefetches_issued", "hierarchy", "prefetches_issued"),
        ("prefetches_dropped", "hierarchy", "prefetches_dropped"),
        ("prefetch_useful", "hierarchy", "prefetch_useful"),
        ("prefetch_late", "hierarchy", "prefetch_late"),
        ("prefetch_useless", "hierarchy", "prefetch_useless"),
    )

    def _snapshot(self) -> dict:
        snap = {}
        stats = self.stats
        for name in COUNTER_FIELDS:
            value = getattr(stats, name)
            if isinstance(value, int):
                snap["stats." + name] = value
        for stat_name, owner, attr in self._COUNTER_SOURCES:
            snap["src." + stat_name] = getattr(getattr(self, owner), attr)
        return snap

    def _delta(self, snapshot: dict) -> SimulationStats:
        out = SimulationStats()
        stats = self.stats
        for name in COUNTER_FIELDS:
            value = getattr(stats, name)
            if isinstance(value, int):
                setattr(out, name, value - snapshot.get("stats." + name, 0))
        for stat_name, owner, attr in self._COUNTER_SOURCES:
            now = getattr(getattr(self, owner), attr)
            setattr(out, stat_name, now - snapshot.get("src." + stat_name, 0))
        # whole-run set-based metrics (warmup included; fractions only)
        out.fec_distinct_lines = len(self.fec.fec_lines)
        out.retired_distinct_lines = len(self.fec.retired_lines_seen)
        out.fec_high_cost_events = self.fec.high_cost_events
        out.fec_high_cost_backend_events = self.fec.high_cost_backend_events
        if hasattr(self.prefetcher, "triggers_mispredict"):
            out.pdip_triggers_mispredict = self.prefetcher.triggers_mispredict
            out.pdip_triggers_last_taken = self.prefetcher.triggers_last_taken
        if hasattr(self.prefetcher, "inserted_events"):
            out.pdip_inserts = self.prefetcher.inserted_events
        return out

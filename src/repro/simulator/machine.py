"""The cycle-level machine (Figure 7 wiring).

Per cycle, in order:

1. **Resteer** — if a scheduled front-end resteer matures, flush the FTQ,
   squash wrong-path work in the back end, and redirect the IAG.
2. **IAG** — fill the FTQ along the predicted path: correct-path blocks
   from the walker (with the BPU judging each transfer), or wrong-path
   blocks from a speculative walk after an undiscovered mispredict.
   Enqueuing triggers the FDIP prefetch of the entry's lines and the
   prefetcher's trigger lookup (PDIP table / EIP entangling table).
3. **PQ** — drain prefetch requests into the L1-I under the MSHR rules.
4. **Decode** — consume ready FTQ heads up to the decode width; starve
   (and charge the head entry) when lines are not ready; schedule the
   resteer when a mispredicted block finally decodes.
5. **Back end** — retire; at block retirement run FEC classification,
   EMISSARY promotion, prefetcher training, and the data-side stream.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional

from repro.backend.model import BackendModel
from repro.branch.bpu import BlockPrediction, BranchPredictionUnit, MispredictKind
from repro.core.fec import FECClassifier
from repro.frontend.ftq import FTQ, FTQEntry
from repro.frontend.prefetch_queue import PrefetchQueue
from repro.memory.hierarchy import MemoryHierarchy
from repro.prefetchers.base import NoPrefetcher, Prefetcher
from repro.simulator.config import MachineConfig
from repro.simulator.stats import SimulationStats
from repro.utils import derive_rng, line_of
from repro.workloads.layout import CodeLayout
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.walker import PathWalker, SpeculativePath

#: data lines live in a disjoint address space from instruction lines
DATA_LINE_BASE = 1 << 40


@dataclass
class _Resteer:
    """A mispredict discovered by the IAG, waiting to resolve."""

    kind: MispredictKind
    trigger_line: int
    #: cycle the front end redirects (set when the branch decodes)
    scheduled: Optional[int] = None


class Machine:
    """One simulated core running one synthetic workload."""

    def __init__(self, layout: CodeLayout, profile: WorkloadProfile,
                 config: Optional[MachineConfig] = None,
                 hierarchy: Optional[MemoryHierarchy] = None,
                 prefetcher: Optional[Prefetcher] = None,
                 pq: Optional[PrefetchQueue] = None,
                 bpu: Optional[BranchPredictionUnit] = None,
                 walker=None,
                 seed: int = 0):
        self.layout = layout
        self.profile = profile
        self.config = config if config is not None else MachineConfig()
        cfg = self.config
        self.hierarchy = (hierarchy if hierarchy is not None
                          else MemoryHierarchy(config=cfg.hierarchy, seed=seed))
        self.pq = pq if pq is not None else PrefetchQueue(
            self.hierarchy, capacity=cfg.pq_capacity,
            issue_width=cfg.pq_issue_width, mshr_reserve=cfg.pq_mshr_reserve)
        self.prefetcher = prefetcher if prefetcher is not None else NoPrefetcher()
        self.bpu = bpu if bpu is not None else BranchPredictionUnit(
            btb_entries=cfg.btb_entries, btb_assoc=cfg.btb_assoc,
            ras_depth=cfg.ras_depth, seed=seed)
        # any object with the PathWalker surface works here — e.g. a
        # repro.workloads.trace.TraceReplayer replaying a recorded stream
        self.walker = walker if walker is not None else PathWalker(
            layout, seed=seed, indirect_noise=profile.indirect_noise)
        self.ftq = FTQ(depth=cfg.ftq_depth)
        self.backend = BackendModel(
            rob_entries=cfg.rob_entries, retire_width=cfg.retire_width,
            depth=cfg.backend_depth, stall_prob=profile.backend_stall_prob,
            issue_empty_threshold=cfg.issue_empty_threshold, seed=seed)
        self.fec = FECClassifier(wake_window=cfg.fec_wake_window,
                                 high_cost_threshold=cfg.fec_high_cost_threshold)

        # data-side sampler (Zipf over the profile's data working set)
        self._data_rng = derive_rng(seed, "datastream")
        n = profile.data_lines
        weights = [1.0 / ((i + 1) ** profile.data_zipf_alpha) for i in range(n)]
        total = sum(weights)
        acc = 0.0
        self._data_cum: List[float] = []
        for w in weights:
            acc += w / total
            self._data_cum.append(acc)

        # dynamic state
        self.cycle = 0
        self._pending_resteer: Optional[_Resteer] = None
        self._wrong_path: Optional[SpeculativePath] = None
        self._iag_stall_until = 0
        self._entries_since_resteer = 1 << 30
        self._last_resteer_kind: Optional[MispredictKind] = None
        self._last_resteer_trigger: Optional[int] = None
        self._last_taken_line: Optional[int] = None

        self.stats = SimulationStats()
        self._decode_progress = 0  # instructions of the head already decoded
        self._head_admitted = False
        #: optional per-cycle observer (see repro.simulator.probe)
        self.probe = None

    # ==================================================================
    # main loop
    # ==================================================================
    def run(self, instructions: int, warmup: int = 0,
            max_cycles: Optional[int] = None) -> SimulationStats:
        """Simulate until ``warmup + instructions`` have retired.

        Counters are snapshotted after warmup so the returned stats cover
        only the measured window. ``max_cycles`` bounds runaway configs.
        """
        limit = max_cycles if max_cycles is not None else \
            400 * (warmup + instructions)
        snapshot = None
        measure_end = warmup + instructions  # refined once warmup completes
        while True:
            retired = self.backend.retired_instructions
            if snapshot is None and retired >= warmup:
                snapshot = self._snapshot()
                measure_end = retired + instructions
            if snapshot is not None and retired >= measure_end:
                break
            self.step()
            if self.cycle > limit:
                raise RuntimeError(
                    "simulation exceeded %d cycles (deadlock?)" % limit)
        return self._delta(snapshot)

    def step(self) -> None:
        """Advance one cycle."""
        cycle = self.cycle
        self._handle_resteer(cycle)
        self._iag_fill(cycle)
        self.pq.tick(cycle)
        self._decode(cycle)
        retired = self.backend.tick(cycle, on_retire_block=self._on_retire)
        self.stats.instructions += retired
        self.stats.cycles += 1
        if self.probe is not None:
            self.probe(self)
        self.cycle += 1

    # ==================================================================
    # stage 1: resteer
    # ==================================================================
    def _handle_resteer(self, cycle: int) -> None:
        pr = self._pending_resteer
        if pr is None or pr.scheduled is None or cycle < pr.scheduled:
            return
        self.ftq.flush()
        self.backend.squash_wrong_path()
        self._wrong_path = None
        self._decode_progress = 0
        self._head_admitted = False
        self._iag_stall_until = cycle + self.config.redirect_penalty
        self._entries_since_resteer = 0
        self._last_resteer_kind = pr.kind
        self._last_resteer_trigger = pr.trigger_line
        self._pending_resteer = None
        self.stats.resteers += 1
        if pr.kind is MispredictKind.BTB_MISS:
            self.stats.resteers_btb_miss += 1
        elif pr.kind is MispredictKind.COND_MISPREDICT:
            self.stats.resteers_cond += 1
        elif pr.kind is MispredictKind.INDIRECT_MISPREDICT:
            self.stats.resteers_indirect += 1
        elif pr.kind is MispredictKind.RETURN_MISPREDICT:
            self.stats.resteers_return += 1

    # ==================================================================
    # stage 2: IAG / FTQ fill (with FDIP prefetch)
    # ==================================================================
    def _iag_fill(self, cycle: int) -> None:
        if cycle < self._iag_stall_until:
            return
        for _ in range(self.config.iag_blocks_per_cycle):
            if self.ftq.full:
                return
            entry = self._next_entry(cycle)
            if entry is None:
                return
            self._fdip_access(entry, cycle)
            self._finish_enqueue(entry, cycle)

    def _next_entry(self, cycle: int) -> Optional[FTQEntry]:
        if self._wrong_path is not None:
            block = self._wrong_path.step()
            if block is None:
                return None  # wrong path dead-ended; wait for the resteer
            self.stats.wrong_path_blocks += 1
            return FTQEntry(block=block, lines=block.lines(),
                            enqueue_cycle=cycle, is_wrong_path=True)
        event = self.walker.next_event()
        entry = FTQEntry(block=event.block, lines=event.block.lines(),
                         enqueue_cycle=cycle, taken=event.taken,
                         target_addr=event.target_addr)
        prediction = self.bpu.predict_block(event.block, event.taken,
                                            event.target_addr)
        entry.mispredict = prediction.mispredict
        entry.predicted_target = prediction.predicted_target
        if prediction.mispredict.is_resteer:
            self._start_wrong_path(entry, prediction)
        return entry

    def _start_wrong_path(self, entry: FTQEntry,
                          prediction: BlockPrediction) -> None:
        trigger_line = line_of(entry.block.branch_pc)
        self._pending_resteer = _Resteer(kind=prediction.mispredict,
                                         trigger_line=trigger_line)
        start_bid = None
        if prediction.predicted_target is not None:
            start_bid = self.layout.entry_index().get(prediction.predicted_target)
        self._wrong_path = SpeculativePath(
            self.layout, start_bid, self.walker.snapshot_stack(),
            max_blocks=self.config.wrongpath_max_blocks)

    def _fdip_access(self, entry: FTQEntry, cycle: int) -> None:
        """FDIP-prefetch the entry's lines.

        Lines that cannot allocate an MSHR are *deferred*: the entry still
        enqueues (a real FTQ does not stall on cache back-pressure) and
        the IFU issues the remaining fills as demand accesses when the
        entry reaches the head.
        """
        for i, line in enumerate(entry.lines):
            result = self.hierarchy.fetch_instruction(line, cycle)
            if result.stalled_mshr:
                entry.deferred_lines.extend(entry.lines[i:])
                return
            entry.line_ready[line] = result.ready_cycle
            if result.l1_miss:
                entry.missed_lines.append(line)
            elif result.pending_hit:
                entry.pending_lines.append(line)

    def _finish_enqueue(self, entry: FTQEntry, cycle: int) -> None:
        self._entries_since_resteer += 1
        entry.entries_since_resteer = self._entries_since_resteer
        entry.resteer_kind = self._last_resteer_kind
        entry.resteer_trigger_line = self._last_resteer_trigger
        self.ftq.push(entry)
        if entry.block.is_branch and (entry.taken or entry.is_wrong_path):
            self.prefetcher.observe_branch(line_of(entry.block.branch_pc))
        self.prefetcher.on_ftq_enqueue(entry, cycle)

    # ==================================================================
    # stage 4: decode
    # ==================================================================
    def _decode(self, cycle: int) -> None:
        cfg = self.config
        budget = cfg.decode_width
        delivered_correct = 0
        delivered_wrong = 0
        blocked_backend = False
        starving_head: Optional[FTQEntry] = None

        while budget > 0:
            head = self.ftq.head()
            if head is None:
                break
            if head.deferred_lines:
                self._issue_deferred(head, cycle)
            if head.deferred_lines or head.ready_cycle > cycle:
                starving_head = head
                break
            remaining = head.block.num_instructions - self._decode_progress
            if not self._head_admitted:
                if not self.backend.admit(head, head.block.num_instructions,
                                          cycle,
                                          is_wrong_path=head.is_wrong_path):
                    blocked_backend = True
                    break
                self._head_admitted = True
                self._maybe_schedule_resteer(head, cycle)
            take = min(budget, remaining)
            self._decode_progress += take
            budget -= take
            if head.is_wrong_path:
                delivered_wrong += take
            else:
                delivered_correct += take
            if self._decode_progress >= head.block.num_instructions:
                self.ftq.pop()
                self._decode_progress = 0
                self._head_admitted = False

        # -- top-down accounting ------------------------------------------
        st = self.stats
        st.slots_total += cfg.decode_width
        st.slots_retiring += delivered_correct
        st.slots_bad_speculation += delivered_wrong
        shortfall = budget
        if shortfall > 0:
            if blocked_backend:
                st.slots_backend_bound += shortfall
            else:
                st.slots_frontend_bound += shortfall

        # -- decode starvation (FEC bookkeeping) ----------------------------
        if delivered_correct + delivered_wrong == 0 and not blocked_backend:
            st.decode_starvation_cycles += 1
            if starving_head is not None:
                starving_head.starvation_cycles += 1
                if self.backend.issue_queue_empty:
                    starving_head.backend_starved = True

    def _issue_deferred(self, head: FTQEntry, cycle: int) -> None:
        """Demand-issue fills the FDIP stream could not start (MSHR full)."""
        while head.deferred_lines:
            line = head.deferred_lines[0]
            result = self.hierarchy.fetch_instruction(line, cycle)
            if result.stalled_mshr:
                return
            head.deferred_lines.pop(0)
            head.line_ready[line] = result.ready_cycle
            if result.l1_miss:
                head.missed_lines.append(line)
            elif result.pending_hit:
                head.pending_lines.append(line)

    def _maybe_schedule_resteer(self, entry: FTQEntry, cycle: int) -> None:
        pr = self._pending_resteer
        if (pr is None or pr.scheduled is not None
                or entry.mispredict is not pr.kind
                or not entry.mispredict.is_resteer or entry.is_wrong_path):
            return
        cfg = self.config
        if entry.mispredict.resolves_at_predecode:
            pr.scheduled = cycle + cfg.predecode_resteer_latency
        else:
            pr.scheduled = cycle + cfg.exec_resteer_latency

    # ==================================================================
    # stage 5: retirement callbacks
    # ==================================================================
    def _on_retire(self, entry: FTQEntry) -> None:
        cycle = self.cycle
        events = self.fec.on_retire(
            entry,
            resteer_kind=entry.resteer_kind,
            resteer_trigger_line=entry.resteer_trigger_line,
            last_taken_line=self._last_taken_line)
        if events:
            self.stats.fec_starvation_cycles += entry.starvation_cycles
            for event in events:
                self.hierarchy.promote_fec(event.line)
                if event.line in self.hierarchy.prefetched_lines:
                    self.stats.fec_covered_events += 1
            self.stats.fec_events += len(events)
        self.prefetcher.on_fec_events(events, cycle)
        self.prefetcher.on_retire(entry, cycle)
        if entry.taken and entry.block.is_branch:
            self._last_taken_line = line_of(entry.block.branch_pc)
        self._data_stream(entry, cycle)

    def _data_stream(self, entry: FTQEntry, cycle: int) -> None:
        profile = self.profile
        cfg = self.config
        rng = self._data_rng
        for _ in range(entry.block.num_instructions):
            if rng.random() >= profile.data_access_prob:
                continue
            idx = bisect.bisect_left(self._data_cum, rng.random())
            line = DATA_LINE_BASE + idx
            ready, hit = self.hierarchy.data_access(line, cycle)
            if not hit and rng.random() < cfg.data_miss_expose_prob:
                exposed = int((ready - cycle) * cfg.data_miss_exposed_fraction)
                if exposed > 0:
                    self.backend.inject_stall(cycle, exposed)

    # ==================================================================
    # stats plumbing
    # ==================================================================
    _COUNTER_SOURCES = (
        ("l1i_accesses", "hierarchy", "l1i_demand_accesses"),
        ("l1i_misses", "hierarchy", "l1i_demand_misses"),
        ("l2_inst_misses", "hierarchy", "l2_inst_misses"),
        ("l2_data_misses", "hierarchy", "l2_data_misses"),
        ("l3_misses", "hierarchy", "l3_misses"),
        ("prefetches_issued", "hierarchy", "prefetches_issued"),
        ("prefetches_dropped", "hierarchy", "prefetches_dropped"),
        ("prefetch_useful", "hierarchy", "prefetch_useful"),
        ("prefetch_late", "hierarchy", "prefetch_late"),
        ("prefetch_useless", "hierarchy", "prefetch_useless"),
    )

    def _snapshot(self) -> dict:
        snap = {}
        for name in vars(self.stats):
            value = getattr(self.stats, name)
            if isinstance(value, int):
                snap["stats." + name] = value
        for stat_name, owner, attr in self._COUNTER_SOURCES:
            snap["src." + stat_name] = getattr(getattr(self, owner), attr)
        return snap

    def _delta(self, snapshot: dict) -> SimulationStats:
        out = SimulationStats()
        for name in vars(self.stats):
            value = getattr(self.stats, name)
            if isinstance(value, int):
                setattr(out, name, value - snapshot.get("stats." + name, 0))
        for stat_name, owner, attr in self._COUNTER_SOURCES:
            now = getattr(getattr(self, owner), attr)
            setattr(out, stat_name, now - snapshot.get("src." + stat_name, 0))
        # whole-run set-based metrics (warmup included; fractions only)
        out.fec_distinct_lines = len(self.fec.fec_lines)
        out.retired_distinct_lines = len(self.fec.retired_lines_seen)
        out.fec_high_cost_events = self.fec.high_cost_events
        out.fec_high_cost_backend_events = self.fec.high_cost_backend_events
        if hasattr(self.prefetcher, "triggers_mispredict"):
            out.pdip_triggers_mispredict = self.prefetcher.triggers_mispredict
            out.pdip_triggers_last_taken = self.prefetcher.triggers_last_taken
        if hasattr(self.prefetcher, "inserted_events"):
            out.pdip_inserts = self.prefetcher.inserted_events
        return out

"""Machine configuration (the reproduction's Table 1).

Defaults model the paper's Golden-Cove-like core: 32 KB/8-way L1-I with
16 MSHRs, 1 MB/16-way L2, 2 MB/16-way L3, 8K-entry BTB, 24-entry FTQ,
40-entry PQ, 12-wide decode/retire, 512-entry ROB.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.memory.hierarchy import HierarchyConfig

#: recognised simulation-core implementations: the per-object reference
#: core (``machine.Machine``) and the flat-array core (``fastcore.FastMachine``)
BACKENDS = ("ref", "fast")


@dataclass(frozen=True)
class MachineConfig:
    """All machine parameters for one simulation."""

    # --- front end ---------------------------------------------------------
    ftq_depth: int = 24
    decode_width: int = 12
    iag_blocks_per_cycle: int = 5     # FTQ fill rate (BPU runs ahead of decode)
    #: cycles from decode of a mispredicted branch to the front-end resteer
    #: (issue + execute + redirect)
    exec_resteer_latency: int = 18
    #: cycles from fetch of a BTB-missed taken branch to the early
    #: pre-decode correction
    predecode_resteer_latency: int = 3
    #: pipeline redirect bubble after a resteer before the IAG restarts
    redirect_penalty: int = 3
    #: wrong-path fetch block budget per resteer episode
    wrongpath_max_blocks: int = 64

    # --- prefetch queue ------------------------------------------------------
    pq_capacity: int = 40
    pq_issue_width: int = 2
    pq_mshr_reserve: int = 2

    # --- branch prediction ---------------------------------------------------
    btb_entries: int = 8192
    btb_assoc: int = 8
    ras_depth: int = 64

    # --- back end -------------------------------------------------------------
    rob_entries: int = 512
    retire_width: int = 12
    backend_depth: int = 10
    issue_empty_threshold: int = 96
    #: L2-data-miss exposure: probability a miss stalls retirement, and the
    #: fraction of the miss latency that is exposed
    data_miss_expose_prob: float = 0.25
    data_miss_exposed_fraction: float = 0.35

    # --- memory -----------------------------------------------------------------
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)

    # --- FEC classification --------------------------------------------------
    fec_wake_window: int = 24
    fec_high_cost_threshold: int = 10

    # --- simulation core -----------------------------------------------------
    #: which core implementation runs this config: "" (defer to the
    #: ``REPRO_BACKEND`` environment, else "ref"), "ref", or "fast".
    #: Semantically inert — both cores produce bit-identical stats — so
    #: it is excluded from result-cache run keys (see ``cache.run_key``).
    backend: str = ""

    def scaled(self, **overrides) -> "MachineConfig":
        """Copy with fields replaced (mirrors WorkloadProfile.scaled)."""
        return replace(self, **overrides)

    def with_l1i_kb(self, size_kb: int) -> "MachineConfig":
        """Convenience for the 2X IL1 configuration."""
        hier = replace(self.hierarchy, l1i_size_kb=size_kb)
        return replace(self, hierarchy=hier)


def resolve_backend(config: Optional[MachineConfig] = None) -> str:
    """Resolve the effective simulation core for ``config``.

    Precedence: an explicit non-empty ``config.backend`` wins (bench
    cells and test fixtures pin it so an ambient ``REPRO_BACKEND``
    cannot leak into pinned runs), then the ``REPRO_BACKEND``
    environment variable, then ``"ref"``. Raises ``ValueError`` for
    anything outside :data:`BACKENDS`.
    """
    name = (config.backend if config is not None else "") or \
        os.environ.get("REPRO_BACKEND", "")
    name = name.strip().lower() or "ref"
    if name not in BACKENDS:
        raise ValueError(
            "unknown simulation backend %r (expected one of %s)"
            % (name, "/".join(BACKENDS)))
    return name

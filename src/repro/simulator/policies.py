"""The policy catalog (the reproduction's Table 3).

Each :class:`PolicySpec` names one evaluated configuration and knows how
to assemble the machine for it:

=================== =========================================================
``baseline``        FDIP-only Golden-Cove-like core
``2x_il1``          baseline with a 64 KB L1-I
``emissary``        EMISSARY L2 (8 protected ways, 1/32 promotion)
``pdip_44``         PDIP, 512x8 table (43.5 KB); also 11/22/87 KB variants
``pdip_44_emissary`` PDIP(44) + EMISSARY
``pdip_44_zero_cost`` PDIP(44) with free prefetches (timeliness bound)
``eip_46``          EIP with a 46 KB entangling table
``eip_analytical``  EIP with an unbounded table
``eip_46_emissary`` EIP(46) + EMISSARY
``fec_ideal``       EMISSARY + FEC lines always served at L1 latency
=================== =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.pdip import PDIPConfig, PDIPController
from repro.frontend.prefetch_queue import PrefetchQueue
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.replacement import EmissaryPolicy, LRUPolicy
from repro.prefetchers.base import NoPrefetcher
from repro.prefetchers.eip import EIPConfig, EIPPrefetcher
from repro.prefetchers.next_line import NextLinePrefetcher
from repro.prefetchers.rdip import RDIPPrefetcher
from repro.simulator.config import MachineConfig, resolve_backend
from repro.simulator.machine import Machine
from repro.workloads.generator import generate_layout
from repro.workloads.layout import CodeLayout
from repro.workloads.profiles import WorkloadProfile, external_benchmark

#: PDIP table associativity per advertised budget (512 sets fixed)
PDIP_ASSOC_FOR_KB = {11: 2, 22: 4, 44: 8, 87: 16}


@dataclass(frozen=True)
class PolicySpec:
    """A named machine configuration."""

    name: str
    description: str
    emissary: bool = False
    fec_ideal: bool = False
    zero_cost_prefetch: bool = False
    l1i_size_kb: Optional[int] = None
    pdip_kb: Optional[int] = None
    pdip_overrides: Dict[str, object] = field(default_factory=dict)
    eip_kb: Optional[float] = None
    eip_analytical: bool = False
    #: related-work baselines (extensions beyond the paper's Table 3)
    next_line: bool = False
    rdip: bool = False

    @property
    def prefetcher_storage_kb(self) -> float:
        """Prefetch-table budget this policy spends."""
        if self.pdip_kb is not None:
            assoc = PDIP_ASSOC_FOR_KB[self.pdip_kb]
            return 512 * assoc * 87 / 8.0 / 1024.0
        if self.eip_kb is not None:
            return self.eip_kb
        return 0.0


POLICIES: Dict[str, PolicySpec] = {
    "baseline": PolicySpec("baseline", "FDIP-only Golden Cove like core"),
    "2x_il1": PolicySpec("2x_il1", "2x the (scaled) instruction cache",
                         l1i_size_kb=16),
    "emissary": PolicySpec("emissary", "EMISSARY L2 (8 priority ways)",
                           emissary=True),
    "pdip_11": PolicySpec("pdip_11", "PDIP with 11KB table", pdip_kb=11),
    "pdip_22": PolicySpec("pdip_22", "PDIP with 22KB table", pdip_kb=22),
    "pdip_44": PolicySpec("pdip_44", "PDIP with 43.5KB table", pdip_kb=44),
    "pdip_87": PolicySpec("pdip_87", "PDIP with 87KB table", pdip_kb=87),
    "pdip_44_emissary": PolicySpec("pdip_44_emissary", "PDIP(44) + EMISSARY",
                                   pdip_kb=44, emissary=True),
    "pdip_44_zero_cost": PolicySpec("pdip_44_zero_cost",
                                    "PDIP(44), free prefetches",
                                    pdip_kb=44, zero_cost_prefetch=True),
    "eip_46": PolicySpec("eip_46", "EIP with 46KB entangling table",
                         eip_kb=46.0),
    "eip_analytical": PolicySpec("eip_analytical",
                                 "EIP, unbounded entangling table",
                                 eip_kb=46.0, eip_analytical=True),
    "eip_46_emissary": PolicySpec("eip_46_emissary", "EIP(46) + EMISSARY",
                                  eip_kb=46.0, emissary=True),
    "fec_ideal": PolicySpec("fec_ideal",
                            "EMISSARY + FEC lines at L1 latency (oracle)",
                            emissary=True, fec_ideal=True),
    # -- extensions beyond the paper's Table 3 (related-work baselines) --
    "next_line": PolicySpec("next_line",
                            "sequential next-2-lines prefetcher (FNL-style)",
                            next_line=True),
    "rdip": PolicySpec("rdip",
                       "return-address-stack directed prefetcher (RDIP)",
                       rdip=True),
    "pdip_44_path": PolicySpec(
        "pdip_44_path",
        "PDIP(44) + last-3-branch path qualification (Section 5.2 variant)",
        pdip_kb=44, pdip_overrides={"use_path_info": True}),
}


def get_policy(name: str) -> PolicySpec:
    """Look up a policy spec by name (KeyError with hints)."""
    try:
        return POLICIES[name]
    except KeyError:
        raise KeyError("unknown policy %r; valid: %s"
                       % (name, ", ".join(sorted(POLICIES))))


def build_machine(layout: CodeLayout, profile: WorkloadProfile,
                  spec: PolicySpec,
                  config: Optional[MachineConfig] = None,
                  seed: int = 0) -> Machine:
    """Assemble a machine for ``spec`` over an already-generated layout."""
    cfg = config if config is not None else MachineConfig()
    if spec.l1i_size_kb is not None:
        cfg = cfg.with_l1i_kb(spec.l1i_size_kb)
    l2_policy = (EmissaryPolicy(seed=seed) if spec.emissary else LRUPolicy())
    hierarchy = MemoryHierarchy(config=cfg.hierarchy, l2_policy=l2_policy,
                                fec_ideal=spec.fec_ideal,
                                zero_cost_prefetch=spec.zero_cost_prefetch,
                                seed=seed)
    pq = PrefetchQueue(hierarchy, capacity=cfg.pq_capacity,
                       issue_width=cfg.pq_issue_width,
                       mshr_reserve=cfg.pq_mshr_reserve)
    if spec.pdip_kb is not None:
        overrides = dict(spec.pdip_overrides)
        overrides.setdefault("assoc", PDIP_ASSOC_FOR_KB[spec.pdip_kb])
        pdip_cfg = PDIPConfig(**overrides)
        prefetcher = PDIPController(pq, config=pdip_cfg, seed=seed)
    elif spec.eip_kb is not None:
        eip_cfg = EIPConfig(budget_kb=spec.eip_kb,
                            analytical=spec.eip_analytical)
        prefetcher = EIPPrefetcher(pq, config=eip_cfg)
    elif spec.next_line:
        prefetcher = NextLinePrefetcher(pq)
    elif spec.rdip:
        prefetcher = RDIPPrefetcher(pq)
    else:
        prefetcher = NoPrefetcher()
    if resolve_backend(cfg) == "fast":
        from repro.simulator.fastcore import FastMachine
        machine_cls = FastMachine
    else:
        machine_cls = Machine
    # externally provided benchmarks (ingested traces) bring their own
    # walker; synthetic profiles get the default PathWalker inside Machine
    ext = external_benchmark(profile.name)
    walker = ext.walker_factory(layout, seed) if ext is not None else None
    return machine_cls(layout=layout, profile=profile, config=cfg,
                       hierarchy=hierarchy, prefetcher=prefetcher, pq=pq,
                       seed=seed, walker=walker)


def build_machine_for(benchmark_profile: WorkloadProfile, spec: PolicySpec,
                      config: Optional[MachineConfig] = None,
                      seed: int = 0) -> Machine:
    """Generate the layout and assemble the machine in one call."""
    ext = external_benchmark(benchmark_profile.name)
    if ext is not None:
        layout = ext.layout_builder(seed)
    else:
        layout = generate_layout(benchmark_profile, seed=seed)
    return build_machine(layout, benchmark_profile, spec, config=config,
                         seed=seed)

"""Suite runner: simulate (benchmark x policy) grids and compare IPC.

Layouts are generated once per benchmark and shared across policies (the
same binary runs under every configuration, like the paper's
experiments); each policy still gets its own machine, caches, and
predictors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.simulator.config import MachineConfig
from repro.simulator.policies import PolicySpec, build_machine, get_policy
from repro.simulator.stats import SimulationStats
from repro.utils import geomean
from repro.workloads.generator import generate_layout
from repro.workloads.profiles import BENCHMARK_NAMES, get_profile

#: default measured instructions (the paper runs 100M in gem5; the pure-
#: Python model uses a scaled-down budget — long enough for the PDIP
#: table, BTB, and caches to converge, see DESIGN.md)
DEFAULT_INSTRUCTIONS = 400_000
DEFAULT_WARMUP = 120_000


def run_benchmark(benchmark: str, policy: str,
                  instructions: int = DEFAULT_INSTRUCTIONS,
                  warmup: int = DEFAULT_WARMUP,
                  config: Optional[MachineConfig] = None,
                  seed: int = 1,
                  use_cache: bool = True) -> SimulationStats:
    """Simulate one benchmark under one policy and return its stats.

    Results are memoized on disk (see :mod:`repro.simulator.cache`);
    pass ``use_cache=False`` to force a fresh simulation.
    """
    from repro.simulator import cache as result_cache

    profile = get_profile(benchmark)
    spec = get_policy(policy) if isinstance(policy, str) else policy
    key = result_cache.run_key(benchmark, spec, instructions, warmup, seed,
                               config)
    if use_cache:
        hit = result_cache.load(key)
        if hit is not None:
            return hit
    layout = generate_layout(profile, seed=seed)
    machine = build_machine(layout, profile, spec, config=config, seed=seed)
    stats = machine.run(instructions, warmup=warmup)
    if use_cache:
        result_cache.store(key, stats)
    return stats


def run_suite(policies: Sequence[str], benchmarks: Optional[Iterable[str]] = None,
              instructions: int = DEFAULT_INSTRUCTIONS,
              warmup: int = DEFAULT_WARMUP,
              config: Optional[MachineConfig] = None,
              seed: int = 1,
              verbose: bool = False) -> Dict[str, Dict[str, SimulationStats]]:
    """Run a (benchmark x policy) grid.

    Returns ``{benchmark: {policy: stats}}``. The layout for each
    benchmark is generated once and reused across policies.
    """
    names = list(benchmarks) if benchmarks is not None else list(BENCHMARK_NAMES)
    results: Dict[str, Dict[str, SimulationStats]] = {}
    for bench in names:
        results[bench] = {}
        for policy in policies:
            spec = get_policy(policy) if isinstance(policy, str) else policy
            stats = run_benchmark(bench, spec, instructions=instructions,
                                  warmup=warmup, config=config, seed=seed)
            results[bench][spec.name] = stats
            if verbose:
                print(f"{bench:16s} {spec.name:18s} {stats.summary()}")
    return results


def speedup(stats: SimulationStats, baseline: SimulationStats) -> float:
    """IPC speedup of ``stats`` over ``baseline`` (1.0 = no change)."""
    if baseline.ipc == 0:
        raise ValueError("baseline IPC is zero")
    return stats.ipc / baseline.ipc


def geomean_speedup(results: Dict[str, Dict[str, SimulationStats]],
                    policy: str, baseline: str = "baseline") -> float:
    """Geometric-mean IPC speedup of ``policy`` across all benchmarks."""
    ratios = [speedup(by_policy[policy], by_policy[baseline])
              for by_policy in results.values()]
    return geomean(ratios)

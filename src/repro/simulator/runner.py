"""Suite runner: simulate (benchmark x policy) grids and compare IPC.

Layouts are generated once per (benchmark, seed) and shared across
policies (the same binary runs under every configuration, like the
paper's experiments); each policy still gets its own machine, caches,
and predictors. :func:`get_layout` memoizes the generated layouts —
simulation never mutates a layout, so sharing one object is safe.

Grids are embarrassingly parallel: every cell is an independent
simulation. :func:`run_suite_parallel` fans the cells of a grid out
across a :class:`~concurrent.futures.ProcessPoolExecutor`, deduplicates
cells against the on-disk result cache (and against identical cells
within the same grid) before dispatch, retries transient worker
failures with bounded backoff, and emits a JSON run manifest
(:mod:`repro.simulator.manifest`) recording per-cell wall time, cache
hit/miss, and worker id. :func:`run_suite` is the serial path — the
same machinery with ``jobs=1`` — and produces bit-identical stats.

The worker count resolves explicit argument > ``REPRO_JOBS`` env >
serial (see :func:`resolve_jobs`).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.simulator.config import MachineConfig
from repro.simulator.manifest import CellRecord, RunManifest, config_hash
from repro.simulator.policies import PolicySpec, build_machine, get_policy
from repro.simulator.stats import SimulationStats
from repro.utils import geomean, pool_child_init
from repro.workloads.generator import generate_layout
from repro.workloads.layout import CodeLayout
from repro.workloads.profiles import (
    BENCHMARK_NAMES,
    external_benchmark,
    get_profile,
)

#: default measured instructions (the paper runs 100M in gem5; the pure-
#: Python model uses a scaled-down budget — long enough for the PDIP
#: table, BTB, and caches to converge, see DESIGN.md)
DEFAULT_INSTRUCTIONS = 400_000
DEFAULT_WARMUP = 120_000

#: retry budget for transient worker failures (per cell, beyond try #1)
DEFAULT_RETRIES = 2
#: base backoff between retry rounds, doubled each round
_BACKOFF_S = 0.25

#: memoized layouts, keyed by (benchmark, seed); layouts are immutable
#: during simulation (walkers keep their own pattern/call-stack state)
_LAYOUT_CACHE: Dict[Tuple[str, int], CodeLayout] = {}


def get_layout(benchmark: str, seed: int = 1) -> CodeLayout:
    """The (memoized) synthetic binary for ``(benchmark, seed)``.

    Repeated calls return the *same* object, so every policy in a suite
    walks the identical layout.
    """
    key = (benchmark, seed)
    layout = _LAYOUT_CACHE.get(key)
    if layout is None:
        ext = external_benchmark(benchmark)
        if ext is not None:
            layout = ext.layout_builder(seed)
        else:
            layout = generate_layout(get_profile(benchmark), seed=seed)
        _LAYOUT_CACHE[key] = layout
    return layout


def clear_layout_cache() -> None:
    """Drop memoized layouts (tests; profile retuning)."""
    _LAYOUT_CACHE.clear()


def resolve_jobs(jobs: Optional[int] = None, default: int = 1) -> int:
    """Worker count: explicit argument > ``REPRO_JOBS`` env > ``default``."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError("REPRO_JOBS must be an integer, got %r" % env)
    return max(1, int(default))


def run_benchmark(benchmark: str, policy: str,
                  instructions: int = DEFAULT_INSTRUCTIONS,
                  warmup: int = DEFAULT_WARMUP,
                  config: Optional[MachineConfig] = None,
                  seed: int = 1,
                  use_cache: bool = True,
                  telemetry=None,
                  store=None) -> SimulationStats:
    """Simulate one benchmark under one policy and return its stats.

    Results are memoized on disk (see :mod:`repro.simulator.cache`);
    pass ``use_cache=False`` to force a fresh simulation.

    ``config.backend`` (or ``REPRO_BACKEND`` when the config leaves it
    empty — see :func:`repro.simulator.config.resolve_backend`) selects
    the simulation core: the reference per-object machine or the
    flat-array fast core. The two are bit-identical by contract, so the
    backend is deliberately *excluded* from the cache key — a stored
    result is valid for either core.

    ``store`` is an optional durable result store — any object with the
    ``get(key) -> stats`` / ``put(key, stats, meta=...)`` surface of
    :class:`repro.service.store.ResultStore` (duck-typed so this layer
    never imports the service). It is consulted after the local file
    cache and written alongside it; a store hit also warms the local
    cache so the next run skips the store round-trip.

    ``telemetry`` (a :class:`repro.telemetry.TelemetrySession`) attaches
    a trace recorder for the duration of the run and harvests component
    counters at detach. A telemetry run always simulates (the recorder
    needs the events), so the cache *read* is bypassed — the stats are
    bit-identical either way, so the result is still stored.
    """
    from repro.simulator import cache as result_cache

    profile = get_profile(benchmark)
    spec = get_policy(policy) if isinstance(policy, str) else policy
    key = result_cache.run_key(benchmark, spec, instructions, warmup, seed,
                               config)
    if use_cache and telemetry is None:
        hit = result_cache.load(key)
        if hit is not None:
            return hit
        if store is not None:
            hit = store.get(key)
            if hit is not None:
                result_cache.store(key, hit)
                return hit
    layout = get_layout(benchmark, seed=seed)
    machine = build_machine(layout, profile, spec, config=config, seed=seed)
    if telemetry is not None:
        telemetry.attach(machine)
    try:
        stats = machine.run(instructions, warmup=warmup)
    finally:
        if telemetry is not None:
            telemetry.detach(machine)
    if use_cache:
        result_cache.store(key, stats)
    if store is not None:
        store.put(key, stats, meta={
            "benchmark": benchmark, "policy": spec.name, "seed": seed,
            "instructions": instructions, "warmup": warmup,
            "config_hash": config_hash(config), "worker": "main",
        })
    return stats


# ----------------------------------------------------------------------
# grid execution
# ----------------------------------------------------------------------
def _simulate_cell(cell: tuple
                   ) -> Tuple[SimulationStats, float, int, Optional[dict]]:
    """Pool worker: simulate one cell, bypassing the on-disk cache.

    The parent already filtered cache hits and stores the result itself,
    so workers never touch the cache (no concurrent writes).
    ``cell`` is ``(benchmark, spec, instructions, warmup, config, seed)``.

    When ``REPRO_TELEMETRY`` is on, each cell records through its own
    :class:`~repro.telemetry.TelemetrySession` (sized by
    ``REPRO_TELEMETRY_CAPACITY`` / ``REPRO_TELEMETRY_SAMPLE``) and the
    session summary rides back as the fourth tuple element for the
    manifest; otherwise that element is None and the simulation takes
    the zero-overhead null-handle path.
    """
    from repro.telemetry import TelemetrySession, telemetry_enabled

    benchmark, spec, instructions, warmup, config, seed = cell
    session = TelemetrySession.from_env() if telemetry_enabled() else None
    # wall time is manifest metadata, never simulation state
    t0 = time.perf_counter()  # repro: lint-ignore[determinism-wallclock]
    stats = run_benchmark(benchmark, spec, instructions=instructions,
                          warmup=warmup, config=config, seed=seed,
                          use_cache=False, telemetry=session)
    # repro: lint-ignore[determinism-wallclock]
    wall = time.perf_counter() - t0
    summary = session.summary() if session is not None else None
    return stats, wall, os.getpid(), summary


def _execute_cells(pending: Dict[str, tuple], jobs: int, retries: int,
                   ) -> Tuple[Dict[str, Tuple[SimulationStats, float, str,
                                              Optional[dict]]],
                              Dict[str, int], Dict[str, str]]:
    """Run the cache-miss cells, in-process (``jobs==1``) or in a pool.

    Returns ``(results, attempts, errors)`` where ``results`` maps
    run-key to ``(stats, wall_time, worker_id, telemetry_summary)``.
    Cells that raised are retried up to ``retries`` extra rounds with
    doubling backoff (a fresh pool each round, so a broken pool is also
    recovered); cells still failing land in ``errors``. Before a cell
    is re-submitted, any partial ``<key>.*.tmp`` artifacts a crashed
    worker left in the result cache are deleted — the retry must run
    against a clean slate, not on top of a truncated temp file.
    """
    from repro.simulator import cache as result_cache

    remaining = dict(pending)
    results: Dict[str, Tuple[SimulationStats, float, str, Optional[dict]]] = {}
    attempts: Dict[str, int] = {key: 0 for key in pending}
    errors: Dict[str, str] = {}
    for round_no in range(retries + 1):
        if not remaining:
            break
        if round_no:
            time.sleep(_BACKOFF_S * (2 ** (round_no - 1)))
            for key in remaining:
                result_cache.cleanup_stale_tmp(key)
        failed: Dict[str, tuple] = {}
        errors = {}
        if jobs <= 1:
            for key, cell in remaining.items():
                attempts[key] += 1
                try:
                    stats, wall, _pid, tel = _simulate_cell(cell)
                    results[key] = (stats, wall, "main", tel)
                except Exception as exc:  # noqa: BLE001 - retried below
                    failed[key] = cell
                    errors[key] = repr(exc)
        else:
            with ProcessPoolExecutor(max_workers=jobs,
                                     initializer=pool_child_init) as pool:
                futures = {pool.submit(_simulate_cell, cell): key
                           for key, cell in remaining.items()}
                for future in as_completed(futures):
                    key = futures[future]
                    attempts[key] += 1
                    try:
                        stats, wall, pid, tel = future.result()
                        results[key] = (stats, wall, "pid:%d" % pid, tel)
                    except Exception as exc:  # noqa: BLE001 - retried below
                        failed[key] = remaining[key]
                        errors[key] = repr(exc)
        remaining = failed
    return results, attempts, errors


#: Public entry point for the sweep executor's local mode — identical
#: pool/retry semantics to the suite runner's internal call site, so a
#: declarative sweep and an imperative suite execute cells byte-for-byte
#: the same way.
execute_cells = _execute_cells


def run_suite_parallel(policies: Sequence[str],
                       benchmarks: Optional[Iterable[str]] = None,
                       instructions: int = DEFAULT_INSTRUCTIONS,
                       warmup: int = DEFAULT_WARMUP,
                       config: Optional[MachineConfig] = None,
                       seed: int = 1,
                       jobs: Optional[int] = None,
                       retries: int = DEFAULT_RETRIES,
                       verbose: bool = False,
                       manifest: Optional[RunManifest] = None,
                       label: str = "suite",
                       store=None,
                       ) -> Dict[str, Dict[str, SimulationStats]]:
    """Run a (benchmark x policy) grid across a process pool.

    Returns ``{benchmark: {policy: stats}}``, exactly like
    :func:`run_suite` and with field-identical stats. Before dispatch,
    each cell's result-cache key is computed: cache hits are served from
    disk, and duplicate cells inside the grid collapse to one
    simulation. Misses are fanned out across ``jobs`` worker processes
    (``jobs`` resolves via :func:`resolve_jobs`, default
    ``os.cpu_count()``); failed cells are retried up to ``retries``
    extra rounds with doubling backoff. Every run writes a JSON manifest
    (per-cell timing, cache hit/miss, worker id, stats counter digest,
    and — under ``REPRO_TELEMETRY=1`` — a per-cell telemetry summary;
    see :mod:`repro.simulator.manifest`); pass an explicit ``manifest``
    to accumulate several grids into one document, which the caller then
    writes. Two manifests compare cell-by-cell with ``repro diff``.

    ``store`` is an optional durable result store (duck-typed — see
    :func:`run_benchmark`): consulted for each cell after the local
    file cache (hits appear in the manifest with worker ``store``) and
    written with every freshly computed cell, so a sweep re-run against
    the same store performs zero simulations.
    """
    from repro.simulator import cache as result_cache

    names = (list(benchmarks) if benchmarks is not None
             else list(BENCHMARK_NAMES))
    specs = [get_policy(p) if isinstance(p, str) else p for p in policies]
    jobs = resolve_jobs(jobs, default=os.cpu_count() or 1)
    own_manifest = manifest is None
    if manifest is None:
        manifest = RunManifest(label=label, jobs=jobs)
    else:
        manifest.jobs = max(manifest.jobs, jobs)
    cfg_hash = config_hash(config)

    # one slot per grid cell; identical cells share a run key
    slots: Dict[str, List[Tuple[str, str]]] = {}
    cells: Dict[str, tuple] = {}
    for bench in names:
        for spec in specs:
            key = result_cache.run_key(bench, spec, instructions, warmup,
                                       seed, config)
            slots.setdefault(key, []).append((bench, spec.name))
            cells.setdefault(key, (bench, spec, instructions, warmup,
                                   config, seed))

    # serve cache/store hits up front; only misses go to the workers
    hits: Dict[str, SimulationStats] = {}
    hit_source: Dict[str, str] = {}
    pending: Dict[str, tuple] = {}
    for key, cell in cells.items():
        cached = result_cache.load(key)
        if cached is not None:
            hits[key] = cached
            hit_source[key] = "cache"
            continue
        if store is not None:
            stored = store.get(key)
            if stored is not None:
                hits[key] = stored
                hit_source[key] = "store"
                result_cache.store(key, stored)  # warm the local cache
                continue
        pending[key] = cell

    computed, attempts, errors = _execute_cells(pending, jobs, retries)

    results: Dict[str, Dict[str, SimulationStats]] = {b: {} for b in names}
    for key, grid_slots in slots.items():
        bench, _ = grid_slots[0]
        telemetry = None
        if key in hits:
            stats, wall, worker, status, error = (
                hits[key], 0.0, hit_source[key], "ok", "")
            n_attempts = 0
        elif key in computed:
            stats, wall, worker, telemetry = computed[key]
            status, error = "ok", ""
            n_attempts = attempts[key]
            result_cache.store(key, stats)
            if store is not None:
                store.put(key, stats, meta={
                    "benchmark": bench, "policy": grid_slots[0][1],
                    "seed": seed, "instructions": instructions,
                    "warmup": warmup, "config_hash": cfg_hash,
                    "wall_time": wall, "worker": worker,
                    "attempts": n_attempts, "label": manifest.label,
                }, telemetry=telemetry)
        else:
            stats, wall, worker = None, 0.0, "none"
            status, error = "failed", errors.get(key, "unknown")
            n_attempts = attempts.get(key, 0)
        digest = dict(stats.counters()) if stats is not None else None
        for i, (bench, policy_name) in enumerate(grid_slots):
            if stats is not None:
                results[bench][policy_name] = stats
                if verbose:
                    print(f"{bench:16s} {policy_name:18s} {stats.summary()}")
            # duplicate grid slots share one simulation; only the first
            # slot carries its wall time, the rest are in-run dedup hits
            deduped = i > 0 and status == "ok"
            manifest.add(CellRecord(
                benchmark=bench, policy=policy_name, seed=seed,
                instructions=instructions, warmup=warmup, key=key,
                config_hash=cfg_hash,
                cache_hit=key in hits or deduped,
                wall_time=0.0 if deduped else wall,
                worker="dedup" if deduped and key not in hits else worker,
                attempts=n_attempts, status=status, error=error,
                stats=digest, telemetry=None if deduped else telemetry))

    if own_manifest:
        manifest.write()
    if errors:
        detail = "; ".join("%s (%s): %s"
                           % (slots[k][0][0], slots[k][0][1], msg)
                           for k, msg in list(errors.items())[:5])
        raise RuntimeError(
            "%d grid cell(s) failed after %d attempt(s): %s"
            % (len(errors), retries + 1, detail))
    return results


def run_suite(policies: Sequence[str], benchmarks: Optional[Iterable[str]] = None,
              instructions: int = DEFAULT_INSTRUCTIONS,
              warmup: int = DEFAULT_WARMUP,
              config: Optional[MachineConfig] = None,
              seed: int = 1,
              verbose: bool = False,
              store=None) -> Dict[str, Dict[str, SimulationStats]]:
    """Run a (benchmark x policy) grid serially.

    Returns ``{benchmark: {policy: stats}}``. The layout for each
    benchmark is generated once and reused across policies (see
    :func:`get_layout`). This is :func:`run_suite_parallel` with
    ``jobs=1`` — same cache dedup, retry, and manifest behavior,
    bit-identical stats.
    """
    return run_suite_parallel(policies, benchmarks=benchmarks,
                              instructions=instructions, warmup=warmup,
                              config=config, seed=seed, jobs=1,
                              verbose=verbose, store=store)


def speedup(stats: SimulationStats, baseline: SimulationStats) -> float:
    """IPC speedup of ``stats`` over ``baseline`` (1.0 = no change)."""
    if baseline.ipc == 0:
        raise ValueError("baseline IPC is zero")
    return stats.ipc / baseline.ipc


def geomean_speedup(results: Dict[str, Dict[str, SimulationStats]],
                    policy: str, baseline: str = "baseline") -> float:
    """Geometric-mean IPC speedup of ``policy`` across all benchmarks."""
    ratios = [speedup(by_policy[policy], by_policy[baseline])
              for by_policy in results.values()]
    return geomean(ratios)

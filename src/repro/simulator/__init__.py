"""Cycle-level decoupled-front-end simulator.

The machine models the pipeline of Figure 7: BPU/IAG filling a 24-entry
FTQ along the predicted path (with wrong-path excursions after
mispredicts), FDIP prefetching FTQ lines into the L1-I, an IFU/decode
stage that starves when the head's lines are not ready, a calibrated
back-end occupancy model, retire-time FEC classification, and the
PDIP/EIP prefetchers hanging off the FTQ and retire streams.
"""

from repro.simulator.config import MachineConfig
from repro.simulator.stats import SimulationStats
from repro.simulator.machine import Machine
from repro.simulator.policies import (
    POLICIES,
    PolicySpec,
    build_machine,
    get_policy,
)
from repro.simulator.runner import run_benchmark, run_suite, speedup

__all__ = [
    "MachineConfig",
    "SimulationStats",
    "Machine",
    "PolicySpec",
    "POLICIES",
    "get_policy",
    "build_machine",
    "run_benchmark",
    "run_suite",
    "speedup",
]

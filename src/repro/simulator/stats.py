"""Simulation statistics and derived metrics.

``SimulationStats`` is a plain counter bag filled by the machine; the
properties compute every metric the paper's figures report: IPC, MPKI per
cache level, top-down slot fractions (Fig. 1), FEC fractions (Fig. 4),
prefetch PPKI/accuracy/lateness (Table 4, Fig. 11), and FEC-stall
coverage (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict

from repro.utils import SLOTTED


@dataclass(**SLOTTED)
class SimulationStats:
    """Raw counters for one measured run (post-warmup).

    Slotted on Python 3.10+ (the machine touches several counters every
    cycle), so iterate the counters with :data:`COUNTER_FIELDS` or
    :meth:`counters` — ``vars(stats)`` does not work on a slotted class.
    """

    cycles: int = 0
    instructions: int = 0

    # -- top-down slots --------------------------------------------------------
    slots_total: int = 0
    slots_retiring: int = 0
    slots_bad_speculation: int = 0
    slots_frontend_bound: int = 0
    slots_backend_bound: int = 0

    # -- front-end events -------------------------------------------------------
    decode_starvation_cycles: int = 0
    fec_starvation_cycles: int = 0
    resteers: int = 0
    resteers_btb_miss: int = 0
    resteers_cond: int = 0
    resteers_indirect: int = 0
    resteers_return: int = 0
    wrong_path_blocks: int = 0

    # -- caches -------------------------------------------------------------------
    l1i_accesses: int = 0
    l1i_misses: int = 0
    l2_inst_misses: int = 0
    l2_data_misses: int = 0
    l3_misses: int = 0

    # -- prefetching ---------------------------------------------------------------
    prefetches_issued: int = 0
    prefetches_dropped: int = 0
    prefetch_useful: int = 0
    prefetch_late: int = 0
    prefetch_useless: int = 0

    # -- FEC ---------------------------------------------------------------------
    fec_events: int = 0
    fec_distinct_lines: int = 0
    retired_distinct_lines: int = 0
    fec_high_cost_events: int = 0
    fec_high_cost_backend_events: int = 0
    fec_covered_events: int = 0   # FEC events whose line had been prefetched

    # -- PDIP-specific -------------------------------------------------------------
    pdip_triggers_mispredict: int = 0
    pdip_triggers_last_taken: int = 0
    pdip_inserts: int = 0

    # -- free-form extras (per-policy diagnostics) ----------------------------
    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # counter iteration (slots-safe replacement for ``vars(stats)``)
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, float]:
        """Numeric counters as a dict (``extra`` excluded)."""
        return {name: value for name in COUNTER_FIELDS
                if isinstance(value := getattr(self, name), (int, float))}

    def to_dict(self) -> Dict[str, object]:
        """Full payload: every counter plus the ``extra`` dict."""
        data: Dict[str, object] = dict(self.counters())
        data["extra"] = dict(self.extra)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationStats":
        """Rebuild stats from a :meth:`to_dict` payload.

        Unknown keys are ignored, so dumps written by a newer schema
        still load (the shared deserializer for the result cache and
        the service store).
        """
        stats = cls()
        for name, value in data.items():
            if name == "extra":
                stats.extra = dict(value)  # type: ignore[arg-type]
            elif hasattr(stats, name):
                setattr(stats, name, value)
        return stats

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def _mpki(self, count: int) -> float:
        return count / self.instructions * 1000.0 if self.instructions else 0.0

    @property
    def l1i_mpki(self) -> float:
        """L1-I demand misses per kilo-instruction."""
        return self._mpki(self.l1i_misses)

    @property
    def l2i_mpki(self) -> float:
        """L2 instruction misses per kilo-instruction."""
        return self._mpki(self.l2_inst_misses)

    @property
    def l2d_mpki(self) -> float:
        """L2 data misses per kilo-instruction."""
        return self._mpki(self.l2_data_misses)

    @property
    def l3_mpki(self) -> float:
        """L3 misses per kilo-instruction."""
        return self._mpki(self.l3_misses)

    @property
    def ppki(self) -> float:
        """Prefetches issued per kilo-instruction (Table 4)."""
        return self._mpki(self.prefetches_issued)

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of issued prefetches demanded before eviction (Table 4)."""
        resolved = self.prefetch_useful + self.prefetch_late + self.prefetch_useless
        if resolved == 0:
            return 0.0
        return (self.prefetch_useful + self.prefetch_late) / resolved

    @property
    def prefetch_late_fraction(self) -> float:
        """Late prefetches / issued prefetches (Fig. 11)."""
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetch_late / self.prefetches_issued

    # -- top-down fractions (Fig. 1) ------------------------------------------
    @property
    def topdown(self) -> Dict[str, float]:
        """Top-down slot fractions (Fig. 1 buckets)."""
        total = self.slots_total or 1
        return {
            "retiring": self.slots_retiring / total,
            "frontend_bound": self.slots_frontend_bound / total,
            "bad_speculation": self.slots_bad_speculation / total,
            "backend_bound": self.slots_backend_bound / total,
        }

    # -- FEC fractions (Fig. 4) -------------------------------------------------
    @property
    def fec_line_fraction(self) -> float:
        """Distinct FEC lines / distinct retired lines."""
        if self.retired_distinct_lines == 0:
            return 0.0
        return self.fec_distinct_lines / self.retired_distinct_lines

    @property
    def fec_starvation_fraction(self) -> float:
        """FEC starvation / total decode starvation."""
        if self.decode_starvation_cycles == 0:
            return 0.0
        return min(1.0, self.fec_starvation_cycles / self.decode_starvation_cycles)

    @property
    def fec_coverage(self) -> float:
        """Fraction of FEC misses whose line a prefetcher had targeted."""
        if self.fec_events == 0:
            return 0.0
        return self.fec_covered_events / self.fec_events

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (f"IPC={self.ipc:.3f} L1I-MPKI={self.l1i_mpki:.1f} "
                f"L2I={self.l2i_mpki:.1f} L3={self.l3_mpki:.2f} "
                f"PPKI={self.ppki:.1f} acc={self.prefetch_accuracy:.2f} "
                f"FEstall={self.decode_starvation_cycles}")


#: every scalar counter field, in declaration order (``extra`` excluded)
COUNTER_FIELDS = tuple(f.name for f in fields(SimulationStats)
                       if f.name != "extra")

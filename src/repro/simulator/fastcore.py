"""Flat-array fast core: the reference machine re-plumbed onto slabs.

:class:`FastMachine` is a drop-in :class:`~repro.simulator.machine.Machine`
(selected via ``MachineConfig.backend = "fast"``, ``--backend fast``, or
``REPRO_BACKEND=fast``) that keeps the reference core's cycle semantics
**bit-identical** while replacing its per-event Python objects with
preallocated parallel arrays (DESIGN.md §15):

* **FTQ ring** — instead of one :class:`~repro.frontend.ftq.FTQEntry`
  per enqueued block, entries live in parallel ``array('q')`` slabs
  (enqueue cycle, ready-at, starvation, wake distance, readiness count)
  plus a flags ``bytearray`` and per-slot reusable line lists, indexed
  by a monotonically increasing sequence number masked into a
  power-of-two ring. A resteer flush *advances the head* (slots stay
  referenced by the back end until retire/squash, so the tail never
  rolls back); a per-enqueue guard checks the ring cannot overwrite the
  oldest live slot.
* **Back-end ring** — decoded blocks occupy parallel slabs (FTQ slot
  seq, instruction count, retired count, decode cycle, wrong-path flag)
  instead of ``InFlightBlock`` records; the :class:`BackendModel`
  object is kept for its RNG, stall window, and counters, with
  ``_occupancy`` maintained live so ``issue_queue_empty`` and the
  timeline probe read the same values as on the reference core.
* **Flat L1-I tag mirror** — a dense ``ready_cycle``-per-line list
  (``1 << 60`` = not fast-hittable) mirrors the instruction cache, so
  the FDIP hit test is one list index instead of a dict probe plus
  three attribute reads. The mirror is maintained by wrapping the
  hierarchy's ``_fill_l1`` per instance (fills and evictions) and by
  resyncing the single touched line after every full
  ``fetch_instruction`` call (which covers the useful/late
  ``unused_prefetch`` flag transitions). The mirror engages only when
  the iTLB is disabled — exactly the condition under which the
  reference core uses its batched-hit path.
* **Batched stall draws** — ``_fast_forward`` consumes its per-cycle
  back-end stall draws through :func:`batch_stall_draws`, which
  transplants the Mersenne-Twister state into numpy when numpy is
  importable (CPython and numpy share the MT19937 stream and the
  53-bit double construction, so the batch is bit-exact) and falls
  back to the stdlib loop otherwise.

Wrong-path walking, the BPU, the prefetchers, the FEC classifier, and
the memory hierarchy itself are shared with the reference core — the
speed comes from zero per-event allocation and flat state, not from
different modelling. Retirement hooks that need an ``FTQEntry`` surface
(FEC, EIP/RDIP training) receive one of two *recycled* proxy entries
whose fields are restored from the slot arrays.

Stats-parity contract: every ``SimulationStats`` counter, every RNG
stream (walker, BPU, back-end stall, data stream, PDIP insert,
EMISSARY promote), and the L1-I LRU clock sequence follow the exact
reference-core order. Enforced by ``tests/test_golden_stats.py`` (both
backends), ``tests/test_fastcore_differential.py`` (hypothesis
differential fuzzer), and the ``stats-parity`` lint rule.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import List, Optional

from repro.branch.bpu import MispredictKind
from repro.core.fec import FECEvent, TriggerType
from repro.core.pdip import PDIPController
from repro.core.pdip_table import MASK_BITS
from repro.frontend.ftq import FlatFTQView, FTQEntry
from repro.prefetchers.base import Prefetcher
from repro.prefetchers.eip import EIPPrefetcher
from repro.simulator.machine import DATA_LINE_BASE, Machine
from repro.simulator.probe import TimelineProbe
from repro.simulator.stats import SimulationStats
from repro.utils import LINE_SHIFT
from repro.workloads.layout import BranchKind
from repro.workloads.walker import (SpeculativePath, _heaviest,
                                    static_majority_successor)

try:  # optional vectorized stall draws; the stdlib loop below is exact too
    import numpy as _np
except ImportError:  # pragma: no cover - the container may not ship numpy
    _np = None

#: mirror value for "not fast-hittable" (absent, pending prefetch, or
#: unused-prefetch lines); any real ready cycle is far below this
_INF = 1 << 60

_NONE = MispredictKind.NONE
_BTB_MISS = MispredictKind.BTB_MISS
_COND = MispredictKind.COND_MISPREDICT
_INDIRECT = MispredictKind.INDIRECT_MISPREDICT
_RETURN = MispredictKind.RETURN_MISPREDICT
_FALLTHROUGH = BranchKind.FALLTHROUGH

#: FTQ-slot flag bits
_F_WRONG = 1
_F_TAKEN = 2
_F_BSTARVED = 4

#: below this many draws the MT state transplant costs more than it saves
_NUMPY_MIN_DRAWS = 32


def _pdip_pairs(entry) -> list:
    """Expanded ``(line, trigger_type)`` list for a PDIP entry.

    Transcribes the expansion loop of ``PDIPTable.lookup`` exactly, so
    the cached list equals what a live lookup would return. The cache is
    sound because targets/masks change only inside ``PDIPTable.insert``,
    which the fast core wraps to rebuild the affected set's mirrors.
    """
    pairs: list = []
    append = pairs.append
    for tgt in entry.targets:
        base = tgt.line
        ttype = tgt.trigger_type
        append((base, ttype))
        mask = tgt.mask
        if mask:
            for k in range(MASK_BITS):
                if mask & (1 << k):
                    append((base + k + 1, ttype))
    return pairs


def batch_stall_draws(rng, draws: int, p: float) -> int:
    """Count successes of ``draws`` consecutive ``rng.random() < p`` trials.

    Consumes exactly ``draws`` calls' worth of the Mersenne-Twister
    stream. When numpy is importable and the batch is large enough, the
    state is transplanted into ``numpy.random.RandomState`` (same
    MT19937 core, same ``(a >> 5) * 2**26 + (b >> 6)) / 2**53`` double
    construction, so the values are bit-identical), the batch is drawn
    vectorized, and the advanced state is transplanted back.
    """
    if _np is not None and draws >= _NUMPY_MIN_DRAWS:
        version, internal, gauss = rng.getstate()
        if version == 3:
            rs = _np.random.RandomState()
            rs.set_state(("MT19937",
                          _np.asarray(internal[:-1], dtype=_np.uint32),
                          internal[-1]))
            hits = int(_np.count_nonzero(rs.random_sample(draws) < p))
            advanced = rs.get_state()
            rng.setstate((version,
                          tuple(int(w) for w in advanced[1])
                          + (int(advanced[2]),),
                          gauss))
            return hits
    rng_random = rng.random
    hits = 0
    for _ in range(draws):
        if rng_random() < p:
            hits += 1
    return hits


class FastMachine(Machine):
    """Structure-of-arrays machine; bit-identical stats to the reference."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        cfg = self.config
        layout = self.layout
        blocks = layout.blocks
        self._blocks = blocks

        # -- per-block precomputed tables (indexed by bid) ----------------
        self._blk_lines: List[List[int]] = [b.lines() for b in blocks]
        self._blk_n = array("q", [b.num_instructions for b in blocks])
        self._blk_branch = bytearray(
            0 if b.kind is _FALLTHROUGH else 1 for b in blocks)
        self._blk_obline = array("q",
                                 [b.branch_pc >> LINE_SHIFT for b in blocks])
        # branch-kind dispatch codes for the god loop's fused walker+BPU
        # fast paths: 0 = fallthrough, 1 = conditional, 2 = everything
        # else (direct/call/indirect/return take the full BPU call).
        # Blocks with missing successor metadata are demoted to 2 so the
        # generic path raises exactly like the reference walker would.
        cond_kind = BranchKind.COND
        codes = bytearray(len(blocks))
        for i, b in enumerate(blocks):
            if b.kind is _FALLTHROUGH and b.fallthrough is not None:
                codes[i] = 0
            elif (b.kind is cond_kind and b.fallthrough is not None
                  and b.taken_target is not None
                  and b.taken_bias is not None):
                codes[i] = 1
            else:
                codes[i] = 2
        self._blk_kindcode = codes
        self._blk_ft = array("q", [-1 if b.fallthrough is None
                                   else b.fallthrough for b in blocks])
        self._blk_tt = array("q", [-1 if b.taken_target is None
                                   else b.taken_target for b in blocks])
        self._blk_bias = array("d", [0.0 if b.taken_bias is None
                                     else b.taken_bias for b in blocks])
        self._blk_bpc = array("q", [b.branch_pc for b in blocks])
        self._blk_addr = array("q", [b.addr for b in blocks])
        self._blk_end = array("q", [b.end_addr for b in blocks])
        self._entry_bid = layout.entry_index().get

        # -- FTQ slot ring -------------------------------------------------
        # Slots stay live from enqueue until retire/squash (the back-end
        # ring references them by sequence number), so capacity covers
        # the ROB's worst case of single-instruction blocks plus the FTQ.
        fcap = 1 << max(12, (cfg.rob_entries + cfg.ftq_depth).bit_length() + 1)
        self._fcap = fcap
        self._fmask = fcap - 1
        self._fhead = 0  # monotonic sequence numbers; slot = seq & mask
        self._ftail = 0
        zeros = [0] * fcap
        self._e_bid = array("q", zeros)
        self._e_enq = array("q", zeros)
        self._e_ready = array("q", zeros)
        self._e_nready = array("q", zeros)
        self._e_since = array("q", zeros)
        self._e_starve = array("q", zeros)
        self._e_flags = bytearray(fcap)
        self._e_mis: List[object] = [_NONE] * fcap
        self._e_rkind: List[object] = [None] * fcap
        self._e_rtrig: List[object] = [None] * fcap
        self._e_missed: List[List[int]] = [[] for _ in range(fcap)]
        self._e_pending: List[List[int]] = [[] for _ in range(fcap)]
        self._e_deferred: List[List[int]] = [[] for _ in range(fcap)]

        # -- back-end slot ring -------------------------------------------
        bcap = 1 << max(10, cfg.rob_entries.bit_length() + 1)
        self._bmask = bcap - 1
        self._bhead = 0
        self._btail = 0
        bzeros = [0] * bcap
        self._b_seq = array("q", bzeros)
        self._b_instr = array("q", bzeros)
        self._b_retired = array("q", bzeros)
        self._b_dec = array("q", bzeros)
        self._b_wrong = bytearray(bcap)

        # -- pending-resteer scalars (replaces the _Resteer record) --------
        self._pr_on = False
        self._pr_kind = _NONE
        self._pr_trig = 0
        self._pr_sched = -1  # -1 = not yet scheduled

        # counter-compatible FTQ facade for probes/telemetry/diagnostics
        self.ftq = FlatFTQView(cfg.ftq_depth, self._ftq_occupancy)

        # skip base-class no-op prefetcher hooks entirely
        pf = self.prefetcher
        pf_type = type(pf)
        self._pf_enqueue = (
            pf.on_ftq_enqueue
            if pf_type.on_ftq_enqueue is not Prefetcher.on_ftq_enqueue
            else None)
        self._pf_retire = (
            pf.on_retire
            if pf_type.on_retire is not Prefetcher.on_retire else None)
        self._pf_fec = (
            pf.on_fec_events
            if pf_type.on_fec_events is not Prefetcher.on_fec_events else None)

        # recycled FTQEntry proxies for the enqueue/retire hook surfaces
        proto = blocks[0] if blocks else None
        self._enq_proxy = FTQEntry(proto, [], 0)
        self._ret_proxy = FTQEntry(proto, [], 0)
        self._lr_one = {0: 0}   # stands in for line_ready at retirement
        self._lr_empty: dict = {}

        # inlined correct-path walking (PathWalker surface); foreign
        # walkers (e.g. trace replayers) fall back to next_event()
        self._walker_outcome = getattr(self.walker, "_outcome", None)

        # -- flat L1-I tag mirror ------------------------------------------
        hierarchy = self.hierarchy
        self._use_mirror = hierarchy.itlb is None
        max_line = 0
        for lines in self._blk_lines:
            if lines and lines[-1] > max_line:
                max_line = lines[-1]
        # headroom for prefetchers that run past the last block line
        # (next-line degree, EIP deltas); out-of-range fills are simply
        # not mirrored, which only costs them the fast-hit path
        nlines = max_line + 66
        self._l1_ready: List[int] = [_INF] * nlines
        self._l1_state: List[object] = [None] * nlines
        self._l1_lines_get = hierarchy.l1i._lines.get
        for line in hierarchy.l1i._lines:
            if line < nlines:
                self._sync_line(line)
        self._install_fill_hook()

        # -- wrong-path successor tables -----------------------------------
        # ``static_majority_successor`` is a pure function of the block
        # for every kind except CALL (pushes a return address) and RETURN
        # (pops one), so the wrong-path walk becomes three array reads.
        # mode: 0 = plain successor, 1 = successor + stack push, 2 = pop.
        nblocks = len(blocks)
        self._wp_mode = bytearray(nblocks)
        self._wp_succ = array("q", [0] * nblocks)
        self._wp_push = array("q", [0] * nblocks)
        _CALL = BranchKind.CALL
        _ICALL = BranchKind.INDIRECT_CALL
        _RET_KIND = BranchKind.RETURN
        for b in blocks:
            bid = b.bid
            kind = b.kind
            if kind is _RET_KIND:
                self._wp_mode[bid] = 2
                self._wp_succ[bid] = -1
            elif kind is _CALL or kind is _ICALL:
                self._wp_mode[bid] = 1
                self._wp_succ[bid] = (b.taken_target if kind is _CALL
                                      else _heaviest(b))
                self._wp_push[bid] = (b.fallthrough
                                      if b.fallthrough is not None else -1)
            else:
                # dry-run on a throwaway stack: these kinds never touch it
                succ = static_majority_successor(layout, b, [])
                self._wp_mode[bid] = 0
                self._wp_succ[bid] = succ if succ is not None else -1

        # -- prefetcher trigger-line entry mirrors -------------------------
        # PDIP and EIP lookups overwhelmingly miss; a dense per-line slot
        # holding the table entry (or None) turns the miss path into one
        # list index and the hit path into a direct transcription of the
        # table's lookup (entry objects are mutated in place by inserts,
        # so a mirrored reference stays current). Only set *membership*
        # changes need maintenance, and those all happen inside the rare
        # insert/entangle calls, which are wrapped to resync their set.
        # Exactness: trigger lines are block lines (< nlines), and within
        # that range the (set, tag) pair identifies the line uniquely for
        # both geometries.
        self._pdip_fast: Optional[PDIPController] = None
        self._pdip_entries: Optional[list] = None
        if (isinstance(pf, PDIPController) and not pf._use_path
                and nlines < 512 * 1024):
            self._pdip_fast = pf
            table = pf.table
            num_sets = table.num_sets
            entries: list = [None] * nlines
            set_lines: dict = {}
            for set_idx, ways in table._sets.items():
                mirrored = []
                for tag, entry in ways.items():
                    line = tag * num_sets + set_idx
                    if line < nlines:
                        entries[line] = (entry, _pdip_pairs(entry))
                        mirrored.append(line)
                set_lines[set_idx] = mirrored
            orig_insert = table.insert

            def _pdip_insert(trigger_line, target_line,
                             trigger_type="mispredict", path=None,
                             _orig=orig_insert, _table=table,
                             _entries=entries, _set_lines=set_lines,
                             _n=nlines, _num_sets=num_sets,
                             _pairs=_pdip_pairs):
                _orig(trigger_line, target_line, trigger_type, path=path)
                set_idx = trigger_line % _num_sets
                for line in _set_lines.get(set_idx, ()):
                    _entries[line] = None
                mirrored = []
                for tag, entry in _table._sets[set_idx].items():
                    line = tag * _num_sets + set_idx
                    if line < _n:
                        _entries[line] = (entry, _pairs(entry))
                        mirrored.append(line)
                _set_lines[set_idx] = mirrored

            table.insert = _pdip_insert
            self._pdip_entries = entries
        self._eip_fast: Optional[EIPPrefetcher] = None
        self._eip_entries: Optional[list] = None
        if isinstance(pf, EIPPrefetcher):
            self._eip_fast = pf
            entries = [None] * nlines
            orig_entangle = pf._entangle
            if pf._analytical:
                # unbounded dict: dst lists are created once and mutated
                # in place, so mirroring the list reference suffices
                for src, dsts in pf._table_unbounded.items():
                    if src < nlines:
                        entries[src] = dsts

                def _eip_entangle(src, dst, _orig=orig_entangle, _pf=pf,
                                  _entries=entries, _n=nlines):
                    _orig(src, dst)
                    if src < _n:
                        _entries[src] = _pf._table_unbounded[src]

            else:
                num_sets = pf._num_sets
                set_lines = {}
                for set_idx, ways in pf._sets.items():
                    mirrored = []
                    for tag, entry in ways.items():
                        line = tag * num_sets + set_idx
                        if line < nlines:
                            entries[line] = entry
                            mirrored.append(line)
                    set_lines[set_idx] = mirrored

                def _eip_entangle(src, dst, _orig=orig_entangle, _pf=pf,
                                  _entries=entries, _set_lines=set_lines,
                                  _n=nlines, _num_sets=num_sets):
                    _orig(src, dst)
                    set_idx = src % _num_sets
                    for line in _set_lines.get(set_idx, ()):
                        _entries[line] = None
                    mirrored = []
                    for tag, entry in _pf._sets[set_idx].items():
                        line = tag * _num_sets + set_idx
                        if line < _n:
                            _entries[line] = entry
                            mirrored.append(line)
                    _set_lines[set_idx] = mirrored

            pf._entangle = _eip_entangle
            self._eip_entries = entries
        # EIP's on_retire reduces to history appends unless the entry
        # both missed and initiated a fill; _retire_slot short-circuits
        # the no-miss case without materializing the FTQEntry proxy
        self._eip_retire: Optional[EIPPrefetcher] = (
            pf if isinstance(pf, EIPPrefetcher) else None)
        # PDIP's branch observer only feeds the Section 5.2 path-history
        # variant; without ``use_path_info`` the history is write-only, so
        # the flat-filter path skips it entirely
        if self._pdip_fast is not None:
            self._observe_branch = None

        # hot-path copies
        self._access_prob = self.profile.data_access_prob

    # ------------------------------------------------------------------
    # flat L1-I mirror maintenance
    # ------------------------------------------------------------------
    def _ftq_occupancy(self) -> int:
        return self._ftail - self._fhead

    def _sync_line(self, line: int) -> None:
        """Refresh one mirror cell from the authoritative cache state."""
        state = self._l1_lines_get(line)
        if state is None or state.unused_prefetch:
            self._l1_ready[line] = _INF
            self._l1_state[line] = None
        else:
            self._l1_ready[line] = state.ready_cycle
            self._l1_state[line] = state

    def _install_fill_hook(self) -> None:
        """Wrap the hierarchy's ``_fill_l1`` so every fill/eviction also
        updates the mirror (MemoryHierarchy is unslotted by design, so a
        per-instance override is safe)."""
        hierarchy = self.hierarchy
        l1i_fill = hierarchy.l1i.fill_quick
        l1_ready = self._l1_ready
        l1_state = self._l1_state
        lines_get = self._l1_lines_get
        nlines = len(l1_ready)

        def _fill_l1(line, ready, source):
            ev_line, ev_state = l1i_fill(line, ready, is_instruction=True,
                                         source=source)
            if ev_line is not None:
                if ev_line < nlines:
                    l1_ready[ev_line] = _INF
                    l1_state[ev_line] = None
                if ev_state.unused_prefetch:
                    hierarchy.prefetch_useless += 1
            if line < nlines:
                if source == "prefetch":
                    # unused_prefetch lines never fast-hit (the first
                    # demand touch must run the useful/late accounting)
                    l1_ready[line] = _INF
                    l1_state[line] = None
                else:
                    l1_ready[line] = ready
                    l1_state[line] = lines_get(line)

        hierarchy._fill_l1 = _fill_l1

    # ==================================================================
    # main loop (kept in lockstep with Machine.run/step)
    # ==================================================================
    def run(self, instructions: int, warmup: int = 0,
            max_cycles: Optional[int] = None) -> SimulationStats:
        """Simulate until ``warmup + instructions`` have retired.

        The hot configurations (PathWalker workload, no iTLB) run the
        fused all-local loop below; anything else falls back to the
        stepped method loop, which handles every configuration.
        """
        if self._walker_outcome is None or not self._use_mirror:
            return self._run_generic(instructions, warmup, max_cycles)
        limit = max_cycles if max_cycles is not None else \
            400 * (warmup + instructions)
        snapshot = None
        measure_end = warmup + instructions

        # -- hoisted invariants -------------------------------------------
        st = self.stats
        backend = self.backend
        hierarchy = self.hierarchy
        l1i = hierarchy.l1i
        fetch = hierarchy.fetch_instruction
        sync_line = self._sync_line
        l1_ready = self._l1_ready
        l1_state = self._l1_state
        l1_hit_lat = hierarchy._l1_hit
        blocks = self._blocks
        blk_lines = self._blk_lines
        blk_n = self._blk_n
        blk_branch = self._blk_branch
        blk_obline = self._blk_obline
        wp_mode = self._wp_mode
        wp_succ = self._wp_succ
        wp_push = self._wp_push
        walker = self.walker
        outcome = self._walker_outcome
        wrng = walker.rng.random
        bpu = self.bpu
        predict = bpu.predict_block
        btb_lookup = bpu.btb.lookup
        btb_insert = bpu.btb.insert
        tage_predict = bpu.tage.predict
        tage_update = bpu.tage.update
        blk_kind = self._blk_kindcode
        blk_ft = self._blk_ft
        blk_tt = self._blk_tt
        blk_bias = self._blk_bias
        blk_bpc = self._blk_bpc
        blk_addr = self._blk_addr
        blk_end = self._blk_end
        entry_bid = self._entry_bid
        layout = self.layout
        wp_max = self.config.wrongpath_max_blocks
        fmask = self._fmask
        fcap = self._fcap
        e_bid = self._e_bid
        e_enq = self._e_enq
        e_ready = self._e_ready
        e_nready = self._e_nready
        e_since = self._e_since
        e_starve = self._e_starve
        e_flags = self._e_flags
        e_mis = self._e_mis
        e_rkind = self._e_rkind
        e_rtrig = self._e_rtrig
        e_missed = self._e_missed
        e_pending = self._e_pending
        e_deferred = self._e_deferred
        bmask = self._bmask
        b_seq = self._b_seq
        b_instr = self._b_instr
        b_retired = self._b_retired
        b_dec = self._b_dec
        b_wrong = self._b_wrong
        ftq = self.ftq
        ftq_depth = ftq.depth
        iag_blocks = self._iag_blocks
        width = self._decode_width
        rob = backend.rob_entries
        predecode_lat = self._predecode_lat
        exec_lat = self._exec_lat
        retire_width = backend.retire_width
        b_depth = backend.depth
        stall_prob = backend.stall_prob
        brng = backend._rng_random
        issue_empty_thr = backend.issue_empty_threshold
        pq = self.pq
        pq_q = pq._q
        pq_queued = pq._queued
        pq_cap = pq.capacity
        pq_issue_width = pq.issue_width
        pq_reserve = pq.mshr_reserve
        pq_prefetch = hierarchy.prefetch_instruction
        pq_tel = pq.tel
        l1_lines = l1i._lines
        pdip = self._pdip_fast
        if pdip is not None:
            pdip_entries = self._pdip_entries
            pdip_table = pdip.table
            pdip_tel = pdip.tel
        eip = self._eip_fast
        if eip is not None:
            eip_entries = self._eip_entries
            eip_analytical = eip._analytical
        pf_enqueue = self._pf_enqueue
        enq_proxy = self._enq_proxy
        observe = self._observe_branch
        retire_slot = self._retire_slot
        issue_deferred = self._issue_deferred_slot
        fast_forward = self._fast_forward
        handle_resteer = self._handle_resteer
        probe = self.probe
        eh = self.event_horizon and (probe is None or self.probe_coarse)
        # TimelineProbe reads only cycle / FTQ occupancy / ROB occupancy /
        # MSHRs / stats.resteers between samples, so its per-cycle call
        # reduces to the resteer-window bookkeeping; arbitrary probes get
        # the full counter flush every cycle
        probe_every = (probe.sample_every
                       if type(probe) is TimelineProbe else 0)

        # -- mutable machine state as loop locals --------------------------
        cycle = self.cycle
        fhead = self._fhead
        ftail = self._ftail
        bhead = self._bhead
        btail = self._btail
        b_occ = backend._occupancy
        progress = self._decode_progress
        admitted = self._head_admitted
        pr_on = self._pr_on
        pr_kind = self._pr_kind
        pr_trig = self._pr_trig
        pr_sched = self._pr_sched
        since_ctr = self._entries_since_resteer
        iag_stall = self._iag_stall_until
        last_rkind = self._last_resteer_kind
        last_rtrig = self._last_resteer_trigger
        wp = self._wrong_path
        retired_total = backend.retired_instructions
        # hot stats counters accumulate in locals and flush at snapshot
        # boundaries, probe calls, helper calls that touch them, and loop
        # exits; everything else reads self.stats only at those points
        st_cycles = st.cycles
        st_instructions = st.instructions
        st_slots_total = st.slots_total
        st_slots_ret = st.slots_retiring
        st_slots_bad = st.slots_bad_speculation
        st_slots_bb = st.slots_backend_bound
        st_slots_fb = st.slots_frontend_bound
        st_dstarv = st.decode_starvation_cycles
        b_stalls = backend.stall_cycles
        ftq_enq = ftq.enqueues

        # NOTE: a sync_out() closure would be tidier, but any local a
        # nested function reads becomes a cell variable, demoting every
        # hot-loop access from LOAD_FAST to LOAD_DEREF — so the loop-local
        # write-back is spelled out inline at each of the rare exits.
        break_on_limit = False
        while True:
            if snapshot is None and retired_total >= warmup:
                st.cycles = st_cycles
                st.instructions = st_instructions
                st.slots_total = st_slots_total
                st.slots_retiring = st_slots_ret
                st.slots_bad_speculation = st_slots_bad
                st.slots_backend_bound = st_slots_bb
                st.slots_frontend_bound = st_slots_fb
                st.decode_starvation_cycles = st_dstarv
                backend.stall_cycles = b_stalls
                ftq.enqueues = ftq_enq
                snapshot = self._snapshot()
                measure_end = retired_total + instructions
            if snapshot is not None and retired_total >= measure_end:
                break

            # -- inlined _skippable + _fast_forward dispatch ---------------
            if eh:
                act = False
                bb = False  # backend-bound window (ROB blocks admission)
                horizon = _INF
                if pr_on and pr_sched >= 0:
                    if pr_sched <= cycle:
                        act = True
                    else:
                        horizon = pr_sched
                if not act:
                    if cycle < iag_stall:
                        if iag_stall < horizon:
                            horizon = iag_stall
                    elif ftail - fhead >= ftq_depth:
                        pass  # full FTQ stays full while decode starves
                    elif wp is None or (wp.current is not None
                                        and wp.remaining > 0):
                        act = True  # IAG would enqueue a block this cycle
                    if not act and pq_q:
                        act = True  # PQ drains lines every cycle
                    if not act and fhead != ftail:
                        slot = fhead & fmask
                        if e_deferred[slot]:
                            act = True  # IFU retries deferred fills
                        else:
                            ready = e_ready[slot]
                            if ready > cycle:
                                if ready < horizon:
                                    horizon = ready
                            elif (admitted or bhead == btail
                                  or blk_n[e_bid[slot]] <= rob - b_occ):
                                act = True  # decode consumes the head
                            else:
                                # head ready but the ROB is full: nothing
                                # moves until the back-end head retires.
                                # The reference core steps these cycles one
                                # by one doing only slot accounting plus
                                # one stall draw each — batch them.
                                bslot = bhead & bmask
                                if b_wrong[bslot]:
                                    act = True  # blocked until the resteer
                                else:
                                    eligible = b_dec[bslot] + b_depth
                                    bstall = backend._stall_until
                                    if bstall > eligible:
                                        eligible = bstall
                                    if eligible <= cycle:
                                        act = True  # retirement frees ROB
                                    else:
                                        bb = True
                                        if eligible < horizon:
                                            horizon = eligible
                    if not act and not bb and bhead != btail:
                        slot = bhead & bmask
                        if not b_wrong[slot]:
                            eligible = b_dec[slot] + b_depth
                            bstall = backend._stall_until
                            if bstall > eligible:
                                eligible = bstall
                            if eligible <= cycle:
                                act = True  # back end may retire
                            elif eligible < horizon:
                                horizon = eligible
                if not act and bb:
                    # batched backend-bound cycles: per cycle the reference
                    # core adds a full width of backend-bound slots and
                    # runs one stall draw; nothing else can change state
                    # before ``horizon`` (FTQ full or IAG stalled/dead, PQ
                    # empty, decode blocked, back end ineligible).
                    k = horizon - cycle
                    cap = limit + 1 - cycle
                    if cap < k:
                        k = cap
                    slots = width * k
                    st_cycles += k
                    st_slots_total += slots
                    st_slots_bb += slots
                    in_stall = backend._stall_until - cycle
                    if in_stall < 0:
                        in_stall = 0
                    elif in_stall > k:
                        in_stall = k
                    stalls = in_stall
                    draws = k - in_stall
                    if draws:
                        stalls += batch_stall_draws(backend._rng, draws,
                                                    stall_prob)
                    b_stalls += stalls
                    cycle += k
                    if probe is not None:
                        self.cycle = cycle
                        self._fhead = fhead
                        self._ftail = ftail
                        backend._occupancy = b_occ
                        st.cycles = st_cycles
                        st.instructions = st_instructions
                        st.slots_total = st_slots_total
                        st.slots_retiring = st_slots_ret
                        st.slots_bad_speculation = st_slots_bad
                        st.slots_backend_bound = st_slots_bb
                        st.slots_frontend_bound = st_slots_fb
                        st.decode_starvation_cycles = st_dstarv
                        backend.stall_cycles = b_stalls
                        ftq.enqueues = ftq_enq
                        probe(self)
                    if cycle > limit:
                        self.cycle = cycle
                        self._fhead = fhead
                        self._ftail = ftail
                        self._bhead = bhead
                        self._btail = btail
                        backend._occupancy = b_occ
                        st.cycles = st_cycles
                        st.instructions = st_instructions
                        st.slots_total = st_slots_total
                        st.slots_retiring = st_slots_ret
                        st.slots_bad_speculation = st_slots_bad
                        st.slots_backend_bound = st_slots_bb
                        st.slots_frontend_bound = st_slots_fb
                        st.decode_starvation_cycles = st_dstarv
                        backend.stall_cycles = b_stalls
                        ftq.enqueues = ftq_enq
                        self._decode_progress = progress
                        self._head_admitted = admitted
                        self._pr_on = pr_on
                        self._pr_kind = pr_kind
                        self._pr_trig = pr_trig
                        self._pr_sched = pr_sched
                        self._entries_since_resteer = since_ctr
                        self._iag_stall_until = iag_stall
                        self._last_resteer_kind = last_rkind
                        self._last_resteer_trigger = last_rtrig
                        self._wrong_path = wp
                        raise RuntimeError(
                            "simulation exceeded %d cycles (deadlock?)"
                            % limit)
                    continue
                if not act and horizon != _INF:
                    k = horizon - cycle
                    cap = limit + 1 - cycle
                    if cap < k:
                        k = cap
                    self.cycle = cycle
                    self._fhead = fhead
                    self._ftail = ftail
                    backend._occupancy = b_occ
                    # _fast_forward mutates five of the localized counters
                    # (and its probe may read any) — flush all, reload the
                    # mutated ones after
                    st.cycles = st_cycles
                    st.instructions = st_instructions
                    st.slots_total = st_slots_total
                    st.slots_retiring = st_slots_ret
                    st.slots_bad_speculation = st_slots_bad
                    st.slots_backend_bound = st_slots_bb
                    st.slots_frontend_bound = st_slots_fb
                    st.decode_starvation_cycles = st_dstarv
                    backend.stall_cycles = b_stalls
                    ftq.enqueues = ftq_enq
                    fast_forward(k)
                    cycle = self.cycle
                    st_cycles = st.cycles
                    st_slots_total = st.slots_total
                    st_slots_fb = st.slots_frontend_bound
                    st_dstarv = st.decode_starvation_cycles
                    b_stalls = backend.stall_cycles
                    if cycle > limit:
                        self._bhead = bhead
                        self._btail = btail
                        self._decode_progress = progress
                        self._head_admitted = admitted
                        self._pr_on = pr_on
                        self._pr_kind = pr_kind
                        self._pr_trig = pr_trig
                        self._pr_sched = pr_sched
                        self._entries_since_resteer = since_ctr
                        self._iag_stall_until = iag_stall
                        self._last_resteer_kind = last_rkind
                        self._last_resteer_trigger = last_rtrig
                        self._wrong_path = wp
                        raise RuntimeError(
                            "simulation exceeded %d cycles (deadlock?)"
                            % limit)
                    continue

            # -- stage 1: resteer (method call; rare) ----------------------
            if pr_on and 0 <= pr_sched <= cycle:
                self.cycle = cycle
                self._fhead = fhead
                self._ftail = ftail
                self._bhead = bhead
                self._btail = btail
                backend._occupancy = b_occ
                self._decode_progress = progress
                self._head_admitted = admitted
                self._pr_on = pr_on
                self._pr_kind = pr_kind
                self._pr_trig = pr_trig
                self._pr_sched = pr_sched
                self._entries_since_resteer = since_ctr
                self._wrong_path = wp
                handle_resteer(cycle)
                fhead = self._fhead
                ftail = self._ftail
                bhead = self._bhead
                btail = self._btail
                b_occ = backend._occupancy
                progress = self._decode_progress
                admitted = self._head_admitted
                pr_on = self._pr_on
                pr_sched = self._pr_sched
                since_ctr = self._entries_since_resteer
                iag_stall = self._iag_stall_until
                last_rkind = self._last_resteer_kind
                last_rtrig = self._last_resteer_trigger
                wp = self._wrong_path

            # -- stage 2: IAG / FTQ fill (fused _iag_fill + _enqueue_next) -
            if cycle >= iag_stall:
                hit_ready = cycle + l1_hit_lat
                for _ in range(iag_blocks):
                    if ftail - fhead >= ftq_depth:
                        break
                    taken = False
                    mis = _NONE
                    if wp is not None:
                        # wrong path: three array reads per block
                        bid = wp.current
                        if bid is None or wp.remaining <= 0:
                            break  # dead-ended; wait for the resteer
                        wp.remaining -= 1
                        mode = wp_mode[bid]
                        if mode == 0:
                            succ = wp_succ[bid]
                        elif mode == 1:
                            push = wp_push[bid]
                            if push >= 0:
                                wp.stack.append(push)
                            succ = wp_succ[bid]
                        else:
                            stack = wp.stack
                            succ = stack.pop() if stack else -1
                        wp.current = succ if succ >= 0 else None
                        st.wrong_path_blocks += 1
                        wrong = True
                    else:
                        # correct path: fused PathWalker.next_event + BPU
                        # fallthrough/conditional fast paths (transcribed
                        # from BranchPredictionUnit._predict_cond; kinds
                        # needing RAS/ITTAGE take the full call)
                        bid = walker.current
                        wrong = False
                        target = None
                        kindc = blk_kind[bid]
                        if kindc == 0:
                            taken = False
                            next_bid = blk_ft[bid]
                            walker.current = next_bid
                            walker.events += 1
                            bpu.blocks_predicted += 1
                        elif kindc == 1:
                            taken = wrng() < blk_bias[bid]
                            next_bid = blk_tt[bid] if taken else blk_ft[bid]
                            walker.current = next_bid
                            walker.events += 1
                            bpu.blocks_predicted += 1
                            pc = blk_bpc[bid]
                            entry = btb_lookup(pc)
                            if entry is not None:
                                predicted = tage_predict(pc)
                                tage_update(pc, taken, predicted)
                                if predicted != taken:
                                    bpu.cond_mispredicts += 1
                                    mis = _COND
                                    target = (entry.target if predicted
                                              else blk_end[bid])
                            elif taken:
                                btb_insert(pc, blk_addr[next_bid], "cond")
                                bpu.btb_misses += 1
                                predicted = tage_predict(pc)
                                tage_update(pc, True, predicted)
                                mis = _BTB_MISS
                                target = blk_end[bid]
                        else:
                            block = blocks[bid]
                            taken, next_bid = outcome(block)
                            walker.current = next_bid
                            walker.events += 1
                            prediction = predict(
                                block, taken, blocks[next_bid].addr)
                            mis = prediction.mispredict
                            target = prediction.predicted_target
                        if mis is not _NONE:
                            pr_on = True
                            pr_kind = mis
                            pr_trig = blk_obline[bid]
                            pr_sched = -1
                            wp = SpeculativePath(
                                layout,
                                entry_bid(target) if target is not None
                                else None,
                                walker.snapshot_stack(), max_blocks=wp_max)
                    # ---- allocate the slot ----
                    seq = ftail
                    oldest = b_seq[bhead & bmask] if bhead != btail else fhead
                    if seq - oldest >= fcap:
                        self.cycle = cycle
                        self._fhead = fhead
                        self._ftail = ftail
                        self._bhead = bhead
                        self._btail = btail
                        backend._occupancy = b_occ
                        raise RuntimeError(
                            "fast-core FTQ ring overflow "
                            "(live window exceeds %d slots)" % fcap)
                    slot = seq & fmask
                    e_bid[slot] = bid
                    e_enq[slot] = cycle
                    e_starve[slot] = 0
                    e_mis[slot] = mis
                    missed = e_missed[slot]
                    pending = e_pending[slot]
                    deferred = e_deferred[slot]
                    if missed:
                        del missed[:]
                    if pending:
                        del pending[:]
                    if deferred:
                        del deferred[:]
                    # ---- FDIP access over the L1 mirror ----
                    lines = blk_lines[bid]
                    nready = 0
                    ready_at = cycle
                    stalled = False
                    clock = l1i._clock
                    hits = 0
                    for i, line in enumerate(lines):
                        rd = l1_ready[line]
                        if rd <= cycle:
                            # batched ready-L1 hit (the common case)
                            clock += 1
                            l1_state[line].lru = clock
                            hits += 1
                            nready += 1
                            if hit_ready > ready_at:
                                ready_at = hit_ready
                            continue
                        state = l1_state[line]
                        if state is not None:
                            # resident with the fill still in flight:
                            # inlined MSHR-merge slice of fetch_instruction
                            # (access counters ride the hit batch)
                            clock += 1
                            state.lru = clock
                            hits += 1
                            nready += 1
                            if state.unused_prefetch and \
                                    state.source == "prefetch":
                                hierarchy.prefetch_late += 1
                                state.unused_prefetch = False
                            if rd > ready_at:
                                ready_at = rd
                            pending.append(line)
                            continue
                        l1i._clock = clock
                        l1i.accesses += hits
                        hierarchy.l1i_demand_accesses += hits
                        hits = 0
                        result = fetch(line, cycle)
                        clock = l1i._clock
                        if result.stalled_mshr:
                            deferred.extend(lines[i:])
                            stalled = True
                            break
                        sync_line(line)
                        ready = result.ready_cycle
                        nready += 1
                        if ready > ready_at:
                            ready_at = ready
                        if result.l1_miss:
                            missed.append(line)
                        elif result.pending_hit:
                            pending.append(line)
                    if not stalled:
                        l1i._clock = clock
                        l1i.accesses += hits
                        hierarchy.l1i_demand_accesses += hits
                    e_ready[slot] = ready_at
                    e_nready[slot] = nready
                    # ---- finish enqueue ----
                    since_ctr += 1
                    e_since[slot] = since_ctr
                    e_rkind[slot] = last_rkind
                    e_rtrig[slot] = last_rtrig
                    e_flags[slot] = ((_F_WRONG if wrong else 0)
                                     | (_F_TAKEN if taken else 0))
                    ftail = seq + 1
                    ftq_enq += 1
                    if (observe is not None and blk_branch[bid]
                            and (taken or wrong)):
                        observe(blk_obline[bid])
                    # ---- prefetcher dispatch (entry mirrors) ----
                    # per-line miss = one list index; hits transcribe the
                    # table lookup (clock/lru/hit counters) and walk the
                    # cached expansion, with pq.request spelled inline
                    if pdip is not None:
                        pdip_table.lookups += len(lines)
                        for line in lines:
                            ent = pdip_entries[line]
                            if ent is None:
                                continue
                            entry, pairs = ent
                            clk = pdip_table._clock + 1
                            pdip_table._clock = clk
                            entry.lru = clk
                            pdip_table.hits += 1
                            for target, ttype in pairs:
                                pdip.prefetch_requests += 1
                                if ttype == "last_taken":
                                    pdip.triggers_last_taken += 1
                                else:
                                    pdip.triggers_mispredict += 1
                                if pdip_tel.enabled:
                                    pdip_tel.emit(
                                        "pdip_hit", cycle, trigger=line,
                                        target=target, ttype=ttype)
                                pq.requests += 1
                                if target in pq_queued:
                                    if pq_tel.enabled:
                                        pq_tel.emit("pq_drop", cycle,
                                                    line=target, reason="dup")
                                elif len(pq_q) >= pq_cap:
                                    pq.dropped_full += 1
                                    if pq_tel.enabled:
                                        pq_tel.emit("pq_drop", cycle,
                                                    line=target, reason="full")
                                else:
                                    pq_q.append(target)
                                    pq_queued.add(target)
                    elif eip is not None:
                        eip.lookups += len(lines)
                        for line in lines:
                            ent = eip_entries[line]
                            if ent is None:
                                continue
                            if eip_analytical:
                                dsts = ent
                                if dsts:
                                    eip.lookup_hits += 1
                            else:
                                clk = eip._clock + 1
                                eip._clock = clk
                                ent.lru = clk
                                eip.lookup_hits += 1
                                dsts = ent.dsts
                            for dst in dsts:
                                eip.prefetch_requests += 1
                                pq.requests += 1
                                if dst in pq_queued:
                                    if pq_tel.enabled:
                                        pq_tel.emit("pq_drop", cycle,
                                                    line=dst, reason="dup")
                                elif len(pq_q) >= pq_cap:
                                    pq.dropped_full += 1
                                    if pq_tel.enabled:
                                        pq_tel.emit("pq_drop", cycle,
                                                    line=dst, reason="full")
                                else:
                                    pq_q.append(dst)
                                    pq_queued.add(dst)
                    elif pf_enqueue is not None:
                        enq_proxy.block = blocks[bid]
                        enq_proxy.lines = lines
                        pf_enqueue(enq_proxy, cycle)

            # -- stage 3: prefetch queue (inlined PrefetchQueue.tick) ------
            if pq_q:
                n = len(pq_q)
                if n > pq_issue_width:
                    n = pq_issue_width
                for _ in range(n):
                    line = pq_q.popleft()
                    pq_queued.discard(line)
                    if line in l1_lines:
                        pq.filtered_resident += 1
                    elif pq_prefetch(line, cycle, mshr_reserve=pq_reserve):
                        pq.issued += 1
                        if pq_tel.enabled:
                            pq_tel.emit("pq_issue", cycle, line=line)

            # -- stage 4: decode (inlined _decode) -------------------------
            budget = width
            delivered_correct = 0
            delivered_wrong = 0
            blocked_backend = False
            starving_slot = -1
            while budget > 0 and fhead != ftail:
                slot = fhead & fmask
                if e_deferred[slot]:
                    issue_deferred(slot, cycle)
                    if e_deferred[slot]:
                        starving_slot = slot
                        break
                if e_ready[slot] > cycle:
                    starving_slot = slot
                    break
                num_instructions = blk_n[e_bid[slot]]
                remaining = num_instructions - progress
                wrong = e_flags[slot] & _F_WRONG
                if not admitted:
                    if num_instructions > rob - b_occ:
                        blocked_backend = True
                        break
                    bslot = btail & bmask
                    b_seq[bslot] = fhead
                    b_instr[bslot] = num_instructions
                    b_retired[bslot] = 0
                    b_dec[bslot] = cycle
                    b_wrong[bslot] = 1 if wrong else 0
                    btail += 1
                    b_occ += num_instructions
                    admitted = True
                    if pr_on and pr_sched < 0 and not wrong:
                        mis = e_mis[slot]
                        if mis is pr_kind and mis is not _NONE:
                            pr_sched = cycle + (predecode_lat
                                                if mis is _BTB_MISS
                                                else exec_lat)
                take = remaining if remaining < budget else budget
                progress += take
                budget -= take
                if wrong:
                    delivered_wrong += take
                else:
                    delivered_correct += take
                if progress >= num_instructions:
                    fhead += 1
                    progress = 0
                    admitted = False
            st_slots_total += width
            st_slots_ret += delivered_correct
            st_slots_bad += delivered_wrong
            if budget > 0:
                if blocked_backend:
                    st_slots_bb += budget
                else:
                    st_slots_fb += budget
            if delivered_correct + delivered_wrong == 0 and not blocked_backend:
                st_dstarv += 1
                if starving_slot >= 0:
                    e_starve[starving_slot] += 1
                    if b_occ < issue_empty_thr:
                        e_flags[starving_slot] |= _F_BSTARVED

            # -- stage 5: back end (inlined _backend_tick) -----------------
            if cycle < backend._stall_until or brng() < stall_prob:
                b_stalls += 1
            else:
                budget = retire_width
                retired = 0
                while budget > 0 and bhead != btail:
                    slot = bhead & bmask
                    if cycle < b_dec[slot] + b_depth:
                        break
                    if b_wrong[slot]:
                        break  # wrong-path blocks wait for the squash
                    done = b_retired[slot]
                    remaining = b_instr[slot] - done
                    take = budget if budget < remaining else remaining
                    b_retired[slot] = done + take
                    budget -= take
                    retired += take
                    b_occ -= take
                    if take == remaining:
                        bhead += 1
                        backend._occupancy = b_occ
                        retire_slot(b_seq[slot], cycle)
                if retired:
                    retired_total += retired
                    backend.retired_instructions = retired_total
                    st_instructions += retired

            st_cycles += 1
            if probe is not None:
                if probe_every:
                    # inlined TimelineProbe.__call__ pre-sample slice
                    r = st.resteers
                    probe._window_resteers += r - probe._resteers_seen
                    probe._resteers_seen = r
                    if cycle % probe_every == 0:
                        self.cycle = cycle
                        self._fhead = fhead
                        self._ftail = ftail
                        backend._occupancy = b_occ
                        probe(self)
                else:
                    self.cycle = cycle
                    self._fhead = fhead
                    self._ftail = ftail
                    backend._occupancy = b_occ
                    st.cycles = st_cycles
                    st.instructions = st_instructions
                    st.slots_total = st_slots_total
                    st.slots_retiring = st_slots_ret
                    st.slots_bad_speculation = st_slots_bad
                    st.slots_backend_bound = st_slots_bb
                    st.slots_frontend_bound = st_slots_fb
                    st.decode_starvation_cycles = st_dstarv
                    backend.stall_cycles = b_stalls
                    ftq.enqueues = ftq_enq
                    probe(self)
            cycle += 1
            if cycle > limit:
                break_on_limit = True
                break
        # -- loop-local write-back -----------------------------------------
        self.cycle = cycle
        self._fhead = fhead
        self._ftail = ftail
        self._bhead = bhead
        self._btail = btail
        backend._occupancy = b_occ
        st.cycles = st_cycles
        st.instructions = st_instructions
        st.slots_total = st_slots_total
        st.slots_retiring = st_slots_ret
        st.slots_bad_speculation = st_slots_bad
        st.slots_backend_bound = st_slots_bb
        st.slots_frontend_bound = st_slots_fb
        st.decode_starvation_cycles = st_dstarv
        backend.stall_cycles = b_stalls
        ftq.enqueues = ftq_enq
        self._decode_progress = progress
        self._head_admitted = admitted
        self._pr_on = pr_on
        self._pr_kind = pr_kind
        self._pr_trig = pr_trig
        self._pr_sched = pr_sched
        self._entries_since_resteer = since_ctr
        self._iag_stall_until = iag_stall
        self._last_resteer_kind = last_rkind
        self._last_resteer_trigger = last_rtrig
        self._wrong_path = wp
        if break_on_limit:
            raise RuntimeError(
                "simulation exceeded %d cycles (deadlock?)" % limit)
        return self._delta(snapshot)

    def _run_generic(self, instructions: int, warmup: int = 0,
                     max_cycles: Optional[int] = None) -> SimulationStats:
        """Stepped method loop; handles every configuration."""
        limit = max_cycles if max_cycles is not None else \
            400 * (warmup + instructions)
        snapshot = None
        measure_end = warmup + instructions
        backend = self.backend
        backend_tick = self._backend_tick
        decode = self._decode
        iag_fill = self._iag_fill
        pq = self.pq
        pq_q = pq._q
        pq_tick = pq.tick
        skippable = self._skippable
        fast_forward = self._fast_forward
        st = self.stats
        while True:
            retired = backend.retired_instructions
            if snapshot is None and retired >= warmup:
                snapshot = self._snapshot()
                measure_end = retired + instructions
            if snapshot is not None and retired >= measure_end:
                break
            if self.event_horizon and (self.probe is None or self.probe_coarse):
                k = skippable()
                if k > 0:
                    cap = limit + 1 - self.cycle
                    fast_forward(k if k < cap else cap)
                    if self.cycle > limit:
                        raise RuntimeError(
                            "simulation exceeded %d cycles (deadlock?)"
                            % limit)
                    continue
            # -- inlined step() (keep the two in lockstep) -----------------
            cycle = self.cycle
            if self._pr_on and 0 <= self._pr_sched <= cycle:
                self._handle_resteer(cycle)
            if cycle >= self._iag_stall_until:
                iag_fill(cycle)
            if pq_q:
                pq_tick(cycle)
            decode(cycle)
            st.instructions += backend_tick(cycle)
            st.cycles += 1
            if self.probe is not None:
                self.probe(self)
            self.cycle = cycle + 1
            if cycle >= limit:
                raise RuntimeError(
                    "simulation exceeded %d cycles (deadlock?)" % limit)
        return self._delta(snapshot)

    def step(self) -> None:
        """Advance one cycle."""
        cycle = self.cycle
        if self._pr_on and 0 <= self._pr_sched <= cycle:
            self._handle_resteer(cycle)
        if cycle >= self._iag_stall_until:
            self._iag_fill(cycle)
        pq = self.pq
        if pq._q:
            pq.tick(cycle)
        self._decode(cycle)
        retired = self._backend_tick(cycle)
        st = self.stats
        st.instructions += retired
        st.cycles += 1
        if self.probe is not None:
            self.probe(self)
        self.cycle = cycle + 1

    # ==================================================================
    # event-horizon fast path
    # ==================================================================
    def _skippable(self) -> int:
        """Flat-state transcription of ``Machine._skippable``."""
        cycle = self.cycle
        horizon = None
        if self._pr_on:
            sched = self._pr_sched
            if sched >= 0:
                if sched <= cycle:
                    return 0  # resteer acts this cycle
                horizon = sched
        stall_until = self._iag_stall_until
        fhead = self._fhead
        ftail = self._ftail
        if cycle < stall_until:
            if horizon is None or stall_until < horizon:
                horizon = stall_until
        elif ftail - fhead >= self.ftq.depth:
            pass  # full FTQ stays full while decode starves (checked below)
        else:
            wp = self._wrong_path
            if wp is None or (wp.current is not None and wp.remaining > 0):
                return 0  # IAG would enqueue a block this cycle
        if self.pq._q:
            return 0  # PQ drains up to issue_width lines per cycle
        if fhead != ftail:
            slot = fhead & self._fmask
            if self._e_deferred[slot]:
                return 0  # IFU retries deferred fills every cycle
            ready = self._e_ready[slot]
            if ready <= cycle:
                return 0  # decode consumes the head this cycle
            if horizon is None or ready < horizon:
                horizon = ready
        backend = self.backend
        bhead = self._bhead
        if bhead != self._btail:
            slot = bhead & self._bmask
            if not self._b_wrong[slot]:
                eligible = self._b_dec[slot] + backend.depth
                stall = backend._stall_until
                if stall > eligible:
                    eligible = stall
                if eligible <= cycle:
                    return 0  # back end may retire this cycle
                if horizon is None or eligible < horizon:
                    horizon = eligible
            # a wrong-path head blocks retirement until the resteer
            # squashes it, which the resteer bound already covers
        if horizon is None:
            return 0  # nothing scheduled — never skip blind
        return horizon - cycle

    def _fast_forward(self, k: int) -> None:
        """Advance ``k`` provably-idle cycles; batches the stall draws."""
        cycle = self.cycle
        st = self.stats
        slots = self._decode_width * k
        st.slots_total += slots
        st.slots_frontend_bound += slots
        st.decode_starvation_cycles += k
        backend = self.backend
        fhead = self._fhead
        if fhead != self._ftail:
            slot = fhead & self._fmask
            self._e_starve[slot] += k
            if backend._occupancy < backend.issue_empty_threshold:
                self._e_flags[slot] |= _F_BSTARVED
        in_stall = backend._stall_until - cycle
        if in_stall < 0:
            in_stall = 0
        elif in_stall > k:
            in_stall = k
        stalls = in_stall
        draws = k - in_stall
        if draws:
            stalls += batch_stall_draws(backend._rng, draws,
                                        backend.stall_prob)
        backend.stall_cycles += stalls
        st.cycles += k
        self.cycle = cycle + k
        self.fast_forwarded_cycles += k
        self.fast_forwards += 1
        tel = self.tel
        if tel.enabled:
            tel.emit("fast_forward", cycle, cycles=k)
        if self.probe is not None:
            self.probe(self)

    # ==================================================================
    # stage 1: resteer
    # ==================================================================
    def _handle_resteer(self, cycle: int) -> None:
        if not self._pr_on or self._pr_sched < 0 or cycle < self._pr_sched:
            return
        ftq = self.ftq
        flushed = self._ftail - self._fhead
        self._fhead = self._ftail  # flush advances the head, never the tail
        ftq.flushes += 1
        ftq.flushed_entries += flushed
        self._squash_wrong_path()
        self._wrong_path = None
        self._decode_progress = 0
        self._head_admitted = False
        self._iag_stall_until = cycle + self._redirect_penalty
        self._entries_since_resteer = 0
        kind = self._pr_kind
        trig = self._pr_trig
        self._last_resteer_kind = kind
        self._last_resteer_trigger = trig
        self._pr_on = False
        self._pr_sched = -1
        tel = self.tel
        if tel.enabled:
            tel.emit("resteer", cycle, resteer_kind=kind.name,
                     trigger_line=trig)
        st = self.stats
        st.resteers += 1
        if kind is _BTB_MISS:
            st.resteers_btb_miss += 1
        elif kind is _COND:
            st.resteers_cond += 1
        elif kind is _INDIRECT:
            st.resteers_indirect += 1
        elif kind is _RETURN:
            st.resteers_return += 1

    def _squash_wrong_path(self) -> None:
        """Compact the back-end ring in place, dropping wrong-path blocks."""
        bhead = self._bhead
        btail = self._btail
        if bhead == btail:
            return
        bmask = self._bmask
        b_wrong = self._b_wrong
        b_seq = self._b_seq
        b_instr = self._b_instr
        b_retired = self._b_retired
        b_dec = self._b_dec
        squashed = 0
        write = bhead
        for read in range(bhead, btail):
            ri = read & bmask
            if b_wrong[ri]:
                squashed += b_instr[ri] - b_retired[ri]
                continue
            if write != read:
                wi = write & bmask
                b_seq[wi] = b_seq[ri]
                b_instr[wi] = b_instr[ri]
                b_retired[wi] = b_retired[ri]
                b_dec[wi] = b_dec[ri]
                b_wrong[wi] = 0
            write += 1
        self._btail = write
        backend = self.backend
        backend._occupancy -= squashed
        backend.squashed_instructions += squashed

    # ==================================================================
    # stage 2: IAG / FTQ fill (with FDIP prefetch)
    # ==================================================================
    def _iag_fill(self, cycle: int) -> None:
        if cycle < self._iag_stall_until:
            return
        depth = self.ftq.depth
        enqueue = self._enqueue_next
        for _ in range(self._iag_blocks):
            if self._ftail - self._fhead >= depth:
                return
            if not enqueue(cycle):
                return

    def _enqueue_next(self, cycle: int) -> bool:
        """Fused _next_entry + _fdip_access + _finish_enqueue on a slot."""
        wp = self._wrong_path
        taken = False
        mis = _NONE
        if wp is not None:
            # inlined SpeculativePath.step via the successor tables
            bid = wp.current
            if bid is None or wp.remaining <= 0:
                return False  # wrong path dead-ended; wait for the resteer
            block = self._blocks[bid]
            wp.remaining -= 1
            mode = self._wp_mode[bid]
            if mode == 0:
                succ = self._wp_succ[bid]
            elif mode == 1:
                push = self._wp_push[bid]
                if push >= 0:
                    wp.stack.append(push)
                succ = self._wp_succ[bid]
            else:
                stack = wp.stack
                succ = stack.pop() if stack else -1
            wp.current = succ if succ >= 0 else None
            self.stats.wrong_path_blocks += 1
            wrong = True
        else:
            # inlined PathWalker.next_event (no ControlFlowEvent record)
            walker = self.walker
            outcome = self._walker_outcome
            blocks = self._blocks
            if outcome is not None:
                block = blocks[walker.current]
                taken, next_bid = outcome(block)
                walker.current = next_bid
                walker.events += 1
                target_addr = blocks[next_bid].addr
            else:
                event = walker.next_event()
                block = event.block
                taken = event.taken
                target_addr = event.target_addr
            bid = block.bid
            wrong = False
            prediction = self.bpu.predict_block(block, taken, target_addr)
            mis = prediction.mispredict
            if mis.is_resteer:
                # inlined _start_wrong_path on pending-resteer scalars
                self._pr_on = True
                self._pr_kind = mis
                self._pr_trig = self._blk_obline[bid]
                self._pr_sched = -1
                target = prediction.predicted_target
                start_bid = (self._entry_bid(target)
                             if target is not None else None)
                self._wrong_path = SpeculativePath(
                    self.layout, start_bid, walker.snapshot_stack(),
                    max_blocks=self.config.wrongpath_max_blocks)

        # -- allocate the slot --------------------------------------------
        seq = self._ftail
        if self._bhead != self._btail:
            oldest = self._b_seq[self._bhead & self._bmask]
        else:
            oldest = self._fhead
        if seq - oldest >= self._fcap:
            raise RuntimeError("fast-core FTQ ring overflow "
                               "(live window exceeds %d slots)" % self._fcap)
        slot = seq & self._fmask
        self._e_bid[slot] = bid
        self._e_enq[slot] = cycle
        self._e_starve[slot] = 0
        self._e_mis[slot] = mis
        missed = self._e_missed[slot]
        pending = self._e_pending[slot]
        deferred = self._e_deferred[slot]
        if missed:
            del missed[:]
        if pending:
            del pending[:]
        if deferred:
            del deferred[:]

        # -- FDIP access (flat transcription of _fdip_access) --------------
        lines = self._blk_lines[bid]
        hierarchy = self.hierarchy
        fetch = hierarchy.fetch_instruction
        nready = 0
        ready_at = cycle
        stalled = False
        if self._use_mirror:
            l1_ready = self._l1_ready
            l1_state = self._l1_state
            l1i = hierarchy.l1i
            hit_ready = cycle + hierarchy._l1_hit
            clock = l1i._clock
            hits = 0
            for i, line in enumerate(lines):
                if l1_ready[line] <= cycle:
                    # batched ready-L1 hit (the overwhelmingly common case)
                    clock += 1
                    l1_state[line].lru = clock
                    hits += 1
                    nready += 1
                    if hit_ready > ready_at:
                        ready_at = hit_ready
                    continue
                l1i._clock = clock
                l1i.accesses += hits
                hierarchy.l1i_demand_accesses += hits
                hits = 0
                result = fetch(line, cycle)
                clock = l1i._clock
                if result.stalled_mshr:
                    deferred.extend(lines[i:])
                    stalled = True
                    break
                self._sync_line(line)
                ready = result.ready_cycle
                nready += 1
                if ready > ready_at:
                    ready_at = ready
                if result.l1_miss:
                    missed.append(line)
                elif result.pending_hit:
                    pending.append(line)
            if not stalled:
                l1i._clock = clock
                l1i.accesses += hits
                hierarchy.l1i_demand_accesses += hits
        else:
            for i, line in enumerate(lines):
                result = fetch(line, cycle)
                if result.stalled_mshr:
                    deferred.extend(lines[i:])
                    break
                ready = result.ready_cycle
                nready += 1
                if ready > ready_at:
                    ready_at = ready
                if result.l1_miss:
                    missed.append(line)
                elif result.pending_hit:
                    pending.append(line)
        self._e_ready[slot] = ready_at
        self._e_nready[slot] = nready

        # -- finish enqueue (flat transcription of _finish_enqueue) --------
        since = self._entries_since_resteer + 1
        self._entries_since_resteer = since
        self._e_since[slot] = since
        self._e_rkind[slot] = self._last_resteer_kind
        self._e_rtrig[slot] = self._last_resteer_trigger
        self._e_flags[slot] = ((_F_WRONG if wrong else 0)
                               | (_F_TAKEN if taken else 0))
        self._ftail = seq + 1
        ftq = self.ftq
        ftq.enqueues += 1
        observe = self._observe_branch
        if (observe is not None and self._blk_branch[bid]
                and (taken or wrong)):
            observe(self._blk_obline[bid])
        pdip = self._pdip_fast
        if pdip is not None:
            self._pdip_enqueue(pdip, lines, cycle)
            return True
        eip = self._eip_fast
        if eip is not None:
            self._eip_enqueue(eip, lines, cycle)
            return True
        hook = self._pf_enqueue
        if hook is not None:
            proxy = self._enq_proxy
            proxy.block = block
            proxy.lines = lines
            hook(proxy, cycle)
        return True

    def _pdip_enqueue(self, pdip, lines, cycle: int) -> None:
        """Mirror-based transcription of ``PDIPController.on_ftq_enqueue``."""
        entries = self._pdip_entries
        table = pdip.table
        table.lookups += len(lines)  # counter parity with per-line lookups
        request = self.pq.request
        tel = pdip.tel
        for line in lines:
            ent = entries[line]
            if ent is None:
                continue
            entry, pairs = ent
            clk = table._clock + 1
            table._clock = clk
            entry.lru = clk
            table.hits += 1
            for target, ttype in pairs:
                pdip.prefetch_requests += 1
                if ttype == "last_taken":
                    pdip.triggers_last_taken += 1
                else:
                    pdip.triggers_mispredict += 1
                if tel.enabled:
                    tel.emit("pdip_hit", cycle, trigger=line,
                             target=target, ttype=ttype)
                request(target, cycle)

    def _eip_enqueue(self, eip, lines, cycle: int) -> None:
        """Mirror-based transcription of ``EIPPrefetcher.on_ftq_enqueue``."""
        entries = self._eip_entries
        analytical = eip._analytical
        eip.lookups += len(lines)  # counter parity with per-line lookups
        request = self.pq.request
        for line in lines:
            ent = entries[line]
            if ent is None:
                continue
            if analytical:
                dsts = ent
                if dsts:
                    eip.lookup_hits += 1
            else:
                clk = eip._clock + 1
                eip._clock = clk
                ent.lru = clk
                eip.lookup_hits += 1
                dsts = ent.dsts
            for dst in dsts:
                eip.prefetch_requests += 1
                request(dst, cycle)

    # ==================================================================
    # stage 4: decode
    # ==================================================================
    def _decode(self, cycle: int) -> None:
        width = self._decode_width
        budget = width
        delivered_correct = 0
        delivered_wrong = 0
        blocked_backend = False
        starving_slot = -1
        fhead = self._fhead
        ftail = self._ftail
        fmask = self._fmask
        progress = self._decode_progress
        admitted = self._head_admitted
        e_deferred = self._e_deferred
        e_ready = self._e_ready
        e_bid = self._e_bid
        e_flags = self._e_flags
        blk_n = self._blk_n
        backend = self.backend
        b_occ = backend._occupancy
        rob = backend.rob_entries
        bmask = self._bmask

        while budget > 0:
            if fhead == ftail:
                break
            slot = fhead & fmask
            if e_deferred[slot]:
                self._issue_deferred_slot(slot, cycle)
                if e_deferred[slot]:
                    starving_slot = slot
                    break
            if e_ready[slot] > cycle:
                starving_slot = slot
                break
            num_instructions = blk_n[e_bid[slot]]
            remaining = num_instructions - progress
            wrong = e_flags[slot] & _F_WRONG
            if not admitted:
                # inlined BackendModel.admit onto the back-end ring
                if num_instructions > rob - b_occ:
                    blocked_backend = True
                    break
                bslot = self._btail & bmask
                self._b_seq[bslot] = fhead
                self._b_instr[bslot] = num_instructions
                self._b_retired[bslot] = 0
                self._b_dec[bslot] = cycle
                self._b_wrong[bslot] = 1 if wrong else 0
                self._btail += 1
                b_occ += num_instructions
                admitted = True
                # inlined _maybe_schedule_resteer
                if self._pr_on and self._pr_sched < 0 and not wrong:
                    mis = self._e_mis[slot]
                    if mis is self._pr_kind and mis is not _NONE:
                        if mis is _BTB_MISS:  # resolves at predecode
                            self._pr_sched = cycle + self._predecode_lat
                        else:
                            self._pr_sched = cycle + self._exec_lat
            take = remaining if remaining < budget else budget
            progress += take
            budget -= take
            if wrong:
                delivered_wrong += take
            else:
                delivered_correct += take
            if progress >= num_instructions:
                fhead += 1
                progress = 0
                admitted = False
        backend._occupancy = b_occ
        self._fhead = fhead
        self._decode_progress = progress
        self._head_admitted = admitted

        # -- top-down accounting ------------------------------------------
        st = self.stats
        st.slots_total += width
        st.slots_retiring += delivered_correct
        st.slots_bad_speculation += delivered_wrong
        if budget > 0:
            if blocked_backend:
                st.slots_backend_bound += budget
            else:
                st.slots_frontend_bound += budget

        # -- decode starvation (FEC bookkeeping) ----------------------------
        if delivered_correct + delivered_wrong == 0 and not blocked_backend:
            st.decode_starvation_cycles += 1
            if starving_slot >= 0:
                self._e_starve[starving_slot] += 1
                if b_occ < backend.issue_empty_threshold:
                    e_flags[starving_slot] |= _F_BSTARVED

    def _issue_deferred_slot(self, slot: int, cycle: int) -> None:
        """Demand-issue fills the FDIP stream could not start (MSHR full)."""
        deferred = self._e_deferred[slot]
        fetch = self.hierarchy.fetch_instruction
        missed = self._e_missed[slot]
        pending = self._e_pending[slot]
        ready_at = self._e_ready[slot]
        nready = self._e_nready[slot]
        use_mirror = self._use_mirror
        while deferred:
            line = deferred[0]
            result = fetch(line, cycle)
            if result.stalled_mshr:
                break
            deferred.pop(0)
            if use_mirror:
                self._sync_line(line)
            ready = result.ready_cycle
            nready += 1
            if ready > ready_at:
                ready_at = ready
            if result.l1_miss:
                missed.append(line)
            elif result.pending_hit:
                pending.append(line)
        self._e_ready[slot] = ready_at
        self._e_nready[slot] = nready

    # ==================================================================
    # stage 5: back end + retirement callbacks
    # ==================================================================
    def _backend_tick(self, cycle: int) -> int:
        """Flat transcription of ``BackendModel.tick``."""
        backend = self.backend
        if cycle < backend._stall_until \
                or backend._rng_random() < backend.stall_prob:
            backend.stall_cycles += 1
            return 0
        budget = backend.retire_width
        retired = 0
        bhead = self._bhead
        btail = self._btail
        bmask = self._bmask
        b_dec = self._b_dec
        b_wrong = self._b_wrong
        b_instr = self._b_instr
        b_retired = self._b_retired
        b_seq = self._b_seq
        depth = backend.depth
        while budget > 0 and bhead != btail:
            slot = bhead & bmask
            if cycle < b_dec[slot] + depth:
                break
            if b_wrong[slot]:
                # wrong-path blocks never retire; they wait for the squash
                break
            done = b_retired[slot]
            remaining = b_instr[slot] - done
            take = budget if budget < remaining else remaining
            b_retired[slot] = done + take
            budget -= take
            retired += take
            backend._occupancy -= take
            if take == remaining:
                bhead += 1
                self._bhead = bhead
                self._retire_slot(b_seq[slot], cycle)
                btail = self._btail  # a data-stall can't move it; stay exact
        self._bhead = bhead
        backend.retired_instructions += retired
        return retired

    def _retire_slot(self, seq: int, cycle: int) -> None:
        """Flat transcription of ``Machine._on_retire`` for one slot.

        The FEC classification is inlined (same counters, same events)
        so the common no-miss/no-starvation retirement touches no
        ``FTQEntry`` proxy at all; the proxy is materialized only for a
        prefetcher's ``on_retire`` hook.
        """
        slot = seq & self._fmask
        bid = self._e_bid[slot]
        lines = self._blk_lines[bid]
        flags = self._e_flags[slot]
        starve = self._e_starve[slot]
        missed = self._e_missed[slot]
        pending = self._e_pending[slot]
        fec = self.fec
        fec.retired_line_accesses += len(lines)
        fec.retired_lines_seen.update(lines)
        events = None
        if (missed or pending) and starve > 0:
            # inlined FECClassifier.on_retire (bit-identical accounting)
            rkind = self._e_rkind[slot]
            rtrig = self._e_rtrig[slot]
            in_wake = (self._e_since[slot] <= fec.wake_window
                       and rtrig is not None)
            if in_wake:
                ttype = (TriggerType.BTB_MISS if rkind is _BTB_MISS
                         else TriggerType.MISPREDICT)
                trigger = rtrig
            else:
                ttype = TriggerType.LAST_TAKEN
                trigger = self._last_taken_line
            backend_starved = bool(flags & _F_BSTARVED)
            high_cost = starve > fec.high_cost_threshold
            event_kind = rkind if in_wake else None
            events = []
            for line in dict.fromkeys(missed + pending):
                events.append(FECEvent(
                    line=line, starvation_cycles=starve,
                    backend_starved=backend_starved, trigger_line=trigger,
                    trigger_type=ttype, resteer_kind=event_kind))
                fec.fec_lines.add(line)
                fec.fec_events += 1
                fec.fec_starvation_cycles += starve
                if high_cost:
                    fec.high_cost_events += 1
                    if backend_starved:
                        fec.high_cost_backend_events += 1
        if events:
            st = self.stats
            st.fec_starvation_cycles += starve
            tel = self.tel
            threshold = fec.high_cost_threshold
            hierarchy = self.hierarchy
            prefetched = hierarchy.prefetched_lines
            for event in events:
                hierarchy.promote_fec(event.line)
                if event.line in prefetched:
                    st.fec_covered_events += 1
                if tel.enabled:
                    tel.emit("fec", cycle, line=event.line,
                             trigger_line=event.trigger_line,
                             trigger_type=event.trigger_type.value,
                             starvation=event.starvation_cycles,
                             high_cost=event.is_high_cost(threshold))
            st.fec_events += len(events)
            hook = self._pf_fec
            if hook is not None:
                hook(events, cycle)
        hook = self._pf_retire
        if hook is not None:
            eip = self._eip_retire
            if (eip is not None
                    and not ((missed or pending) and self._e_nready[slot])):
                # EIPPrefetcher.on_retire with incurred_miss/line_ready
                # falsy: only the commit history advances
                enq = self._e_enq[slot]
                hist = eip._history
                for line in lines:
                    hist.append((line, enq))
                hook = None
        if hook is not None:
            proxy = self._ret_proxy
            proxy.block = self._blocks[bid]
            proxy.lines = lines
            proxy.enqueue_cycle = self._e_enq[slot]
            proxy.missed_lines = missed
            proxy.pending_lines = pending
            proxy.starvation_cycles = starve
            proxy.backend_starved = bool(flags & _F_BSTARVED)
            proxy.entries_since_resteer = self._e_since[slot]
            if self._e_nready[slot]:
                lr = self._lr_one
                lr[0] = self._e_ready[slot]  # == max(line_ready.values())
                proxy.line_ready = lr
            else:
                proxy.line_ready = self._lr_empty
            hook(proxy, cycle)
        if (flags & _F_TAKEN) and self._blk_branch[bid]:
            self._last_taken_line = self._blk_obline[bid]
        # -- data stream (flat transcription of _data_stream, with
        # hierarchy.data_access spelled inline: on an L2 hit the caller
        # ignores the ready cycle, so the hit path is just the lookup
        # bookkeeping; misses keep the exact fill + stall-exposure logic)
        rng_random = self._data_rng.random
        access_prob = self._access_prob
        cum = self._data_cum
        hierarchy = self.hierarchy
        l2 = hierarchy.l2
        l2_lines = l2._lines
        l2_fill = l2.fill_quick
        l3_latency = hierarchy._l3_latency
        l2_hit_lat = hierarchy._l2_hit
        expose_prob = self._data_expose_prob
        expose_frac = self._data_expose_frac
        inject_stall = self.backend.inject_stall
        for _ in range(self._blk_n[bid]):
            if rng_random() >= access_prob:
                continue
            idx = bisect_left(cum, rng_random())
            line = DATA_LINE_BASE + idx
            hierarchy.l2_data_accesses += 1
            l2.accesses += 1
            state = l2_lines.get(line)
            if state is not None:
                clock = l2._clock + 1
                l2._clock = clock
                state.lru = clock
                continue
            l2.misses += 1
            hierarchy.l2_data_misses += 1
            ready = cycle + l2_hit_lat + l3_latency(line, cycle)
            l2_fill(line, ready, is_instruction=False)
            if rng_random() < expose_prob:
                exposed = int((ready - cycle) * expose_frac)
                if exposed > 0:
                    inject_stall(cycle, exposed)

"""Run manifests: per-cell telemetry for suite runs.

Every suite run (serial or parallel, see
:func:`repro.simulator.runner.run_suite_parallel`) emits one JSON
manifest describing what actually happened: one record per simulated
grid cell with its wall time, cache hit/miss, worker id, attempt count,
seed, and config hash, plus an aggregate summary (hit rate, total
simulation time, per-worker load). The manifest is the observability
needed to trust the parallel path — it shows how work was distributed,
what the cache saved, and which cells were retried.

Manifests land in ``<cache dir>/manifests`` by default; relocate them
with ``REPRO_MANIFEST_DIR`` or disable writing with
``REPRO_NO_MANIFEST=1``. ``python -m repro manifest`` prints the summary
of the most recent manifest.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.simulator import cache as result_cache
from repro.simulator.config import MachineConfig
from repro.utils import canonical_digest

#: manifest schema version (bump when the JSON layout changes)
#: v2: cells carry ``stats`` counter digests (diffable via ``repro diff``)
#: and, when REPRO_TELEMETRY is on, per-cell ``telemetry`` summaries
SCHEMA_VERSION = 2


def manifest_dir() -> Path:
    """Directory holding run manifests."""
    env = os.environ.get("REPRO_MANIFEST_DIR", "")
    if env:
        return Path(env)
    return result_cache.cache_dir() / "manifests"


def manifests_enabled() -> bool:
    """False when REPRO_NO_MANIFEST=1."""
    return os.environ.get("REPRO_NO_MANIFEST", "") != "1"


def config_hash(config: Optional[MachineConfig]) -> str:
    """Short stable hash of a machine config (default config when None)."""
    return canonical_digest(config if config is not None
                            else MachineConfig())[:12]


@dataclass
class CellRecord:
    """Telemetry for one (benchmark x policy x seed x config) cell."""

    benchmark: str
    policy: str
    seed: int
    instructions: int
    warmup: int
    key: str            #: result-cache key of the cell
    config_hash: str
    cache_hit: bool
    wall_time: float    #: seconds simulating (0.0 on a cache hit)
    worker: str         #: "main" for in-process, "pid:<n>" for pool workers
    attempts: int = 1   #: 1 = first try; >1 means transient retries
    status: str = "ok"  #: "ok" or "failed"
    error: str = ""
    #: counter digest of the cell's stats (schema v2); lets
    #: ``repro diff`` compare two manifests cell-by-cell
    stats: Optional[Dict[str, float]] = None
    #: telemetry summary (ring accounting + metric snapshot) when the
    #: run recorded with REPRO_TELEMETRY=1; None otherwise
    telemetry: Optional[Dict[str, object]] = None


@dataclass
class RunManifest:
    """One suite run's worth of cell records plus aggregate summary."""

    label: str = "suite"
    jobs: int = 1
    # run bookkeeping only, never simulation state
    started: float = field(default_factory=time.time)  # repro: lint-ignore[determinism-wallclock]
    finished: float = 0.0
    cells: List[CellRecord] = field(default_factory=list)
    path: Optional[Path] = None

    def add(self, record: CellRecord) -> None:
        """Append one cell record."""
        self.cells.append(record)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Aggregate stats over the recorded cells."""
        hits = sum(1 for c in self.cells if c.cache_hit)
        misses = len(self.cells) - hits
        failures = sum(1 for c in self.cells if c.status != "ok")
        retries = sum(max(0, c.attempts - 1) for c in self.cells)
        sim_time = sum(c.wall_time for c in self.cells)
        workers: Dict[str, int] = {}
        for c in self.cells:
            if not c.cache_hit:
                workers[c.worker] = workers.get(c.worker, 0) + 1
        finished = self.finished or time.time()  # repro: lint-ignore[determinism-wallclock]
        return {
            "cells": len(self.cells),
            "cache_hits": hits,
            "cache_misses": misses,
            "hit_rate": hits / len(self.cells) if self.cells else 0.0,
            "failures": failures,
            "retries": retries,
            "sim_wall_time_s": sim_time,
            "max_cell_time_s": max((c.wall_time for c in self.cells),
                                   default=0.0),
            "elapsed_s": max(0.0, finished - self.started),
            "workers": workers,
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (schema v1)."""
        return {
            "schema": SCHEMA_VERSION,
            "label": self.label,
            "jobs": self.jobs,
            "started": self.started,
            "finished": self.finished or time.time(),  # repro: lint-ignore[determinism-wallclock]
            "summary": self.summary(),
            "cells": [dataclasses.asdict(c) for c in self.cells],
        }

    def write(self, path: Optional[Path] = None) -> Optional[Path]:
        """Persist the manifest as JSON; returns the path (None if disabled)."""
        if not manifests_enabled():
            return None
        self.finished = self.finished or time.time()  # repro: lint-ignore[determinism-wallclock]
        if path is None:
            directory = manifest_dir()
            directory.mkdir(parents=True, exist_ok=True)
            stamp = time.strftime("%Y%m%d-%H%M%S",
                                  time.localtime(self.started))
            path = directory / ("run-%s-%d.json" % (stamp, os.getpid()))
        else:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp%d" % os.getpid())
        with open(tmp, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1)
        tmp.replace(path)
        self.path = path
        return path


# ----------------------------------------------------------------------
# reading manifests back
# ----------------------------------------------------------------------
def load(path: Path) -> Dict[str, object]:
    """Load a manifest JSON file."""
    with open(path) as fh:
        return json.load(fh)


def latest() -> Optional[Path]:
    """Path of the most recently written manifest (None if there are none)."""
    directory = manifest_dir()
    if not directory.is_dir():
        return None
    candidates = sorted(directory.glob("run-*.json"),
                        key=lambda p: p.stat().st_mtime)
    return candidates[-1] if candidates else None


def render_summary(data: Dict[str, object]) -> str:
    """Human-readable digest of a loaded manifest."""
    summary = data.get("summary", {})
    lines = [
        "manifest: %s (jobs=%s, schema v%s)"
        % (data.get("label", "?"), data.get("jobs", "?"),
           data.get("schema", "?")),
        "  cells        %d  (hits %d / misses %d, hit rate %.0f%%)"
        % (summary.get("cells", 0), summary.get("cache_hits", 0),
           summary.get("cache_misses", 0),
           100.0 * summary.get("hit_rate", 0.0)),
        "  sim time     %.2fs total, %.2fs max cell, %.2fs elapsed"
        % (summary.get("sim_wall_time_s", 0.0),
           summary.get("max_cell_time_s", 0.0),
           summary.get("elapsed_s", 0.0)),
        "  retries      %d   failures %d"
        % (summary.get("retries", 0), summary.get("failures", 0)),
    ]
    workers = summary.get("workers", {})
    if workers:
        per = ", ".join("%s:%d" % (w, n) for w, n in sorted(workers.items()))
        lines.append("  workers      " + per)
    return "\n".join(lines)

"""On-disk result cache for simulation runs.

A full figure regeneration simulates hundreds of (benchmark x policy)
pairs; many figures share pairs (the baseline appears in every one). The
cache stores each run's :class:`~repro.simulator.stats.SimulationStats`
counters as JSON keyed by a hash of everything that determines the run
(benchmark, policy spec, instruction budget, seed, machine config), so a
pair simulates once per configuration and every bench reuses it.

Set the environment variable ``REPRO_CACHE_DIR`` to relocate the cache,
or ``REPRO_NO_CACHE=1`` to disable it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from repro.simulator.config import MachineConfig
from repro.simulator.policies import PolicySpec
from repro.simulator.stats import SimulationStats
from repro.workloads.profiles import get_profile

_DEFAULT_DIR = Path(__file__).resolve().parents[3] / ".repro-results"


def cache_dir() -> Path:
    """Directory holding cached run results."""
    return Path(os.environ.get("REPRO_CACHE_DIR", str(_DEFAULT_DIR)))


def cache_enabled() -> bool:
    """False when REPRO_NO_CACHE=1."""
    return os.environ.get("REPRO_NO_CACHE", "") != "1"


def _freeze(obj):
    """JSON-stable representation of dataclasses / dicts / scalars."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _freeze(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): _freeze(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_freeze(v) for v in obj]
    return obj


def run_key(benchmark: str, spec: PolicySpec, instructions: int, warmup: int,
            seed: int, config: Optional[MachineConfig]) -> str:
    """Stable hash of everything that determines a run's outcome."""
    payload = {
        "benchmark": benchmark,
        # include the full profile so retuning a benchmark invalidates
        # its cached runs
        "profile": _freeze(get_profile(benchmark)),
        "spec": _freeze(spec),
        "instructions": instructions,
        "warmup": warmup,
        "seed": seed,
        "config": _freeze(config if config is not None else MachineConfig()),
        "version": 3,
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha1(blob).hexdigest()


def load(key: str) -> Optional[SimulationStats]:
    """Load cached stats for a run key (None on miss)."""
    if not cache_enabled():
        return None
    path = cache_dir() / (key + ".json")
    if not path.exists():
        return None
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    stats = SimulationStats()
    for name, value in data.items():
        if hasattr(stats, name):
            setattr(stats, name, value)
    return stats


def store(key: str, stats: SimulationStats) -> None:
    """Persist a run's stats under its key."""
    if not cache_enabled():
        return
    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    data = stats.to_dict()
    # pid-unique temp name: concurrent writers (parallel suite runs in
    # separate processes) must not clobber each other mid-write
    tmp = directory / ("%s.%d.tmp" % (key, os.getpid()))
    with open(tmp, "w") as fh:
        json.dump(data, fh)
    tmp.replace(directory / (key + ".json"))

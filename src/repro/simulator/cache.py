"""On-disk result cache for simulation runs.

A full figure regeneration simulates hundreds of (benchmark x policy)
pairs; many figures share pairs (the baseline appears in every one). The
cache stores each run's :class:`~repro.simulator.stats.SimulationStats`
counters as JSON keyed by a hash of everything that determines the run
(benchmark, policy spec, instruction budget, seed, machine config), so a
pair simulates once per configuration and every bench reuses it.

Set the environment variable ``REPRO_CACHE_DIR`` to relocate the cache,
or ``REPRO_NO_CACHE=1`` to disable it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

from repro.simulator.config import MachineConfig
from repro.simulator.policies import PolicySpec
from repro.simulator.stats import SimulationStats
from repro.utils import canonical_digest, freeze
from repro.workloads.profiles import get_profile

_DEFAULT_DIR = Path(__file__).resolve().parents[3] / ".repro-results"

#: run-key payload version: bump when simulation semantics change in a
#: way that must invalidate previously stored results. The service
#: store (:mod:`repro.service.store`) records it as ``code_version``,
#: so its rows invalidate in lockstep with this cache.
RUN_KEY_VERSION = 3


def cache_dir() -> Path:
    """Directory holding cached run results."""
    return Path(os.environ.get("REPRO_CACHE_DIR", str(_DEFAULT_DIR)))


def cache_enabled() -> bool:
    """False when REPRO_NO_CACHE=1."""
    return os.environ.get("REPRO_NO_CACHE", "") != "1"


#: backward-compatible alias; the canonical form lives in repro.utils
_freeze = freeze


def run_key(benchmark: str, spec: PolicySpec, instructions: int, warmup: int,
            seed: int, config: Optional[MachineConfig]) -> str:
    """Stable hash of everything that determines a run's outcome.

    This is the one cell identity in the system: the on-disk cache file
    name, the manifest ``key`` column, and the service store's primary
    key are all this digest (see :func:`repro.utils.canonical_digest`).
    """
    frozen_config = dict(
        freeze(config if config is not None else MachineConfig()))
    # the simulation core is semantically inert (both backends are
    # bit-identical by contract), so it must not change cell identity —
    # a warm store keeps serving regardless of which core filled it
    frozen_config.pop("backend", None)
    payload = {
        "benchmark": benchmark,
        # include the full profile so retuning a benchmark invalidates
        # its cached runs
        "profile": freeze(get_profile(benchmark)),
        "spec": freeze(spec),
        "instructions": instructions,
        "warmup": warmup,
        "seed": seed,
        "config": frozen_config,
        "version": RUN_KEY_VERSION,
    }
    return canonical_digest(payload)


def load(key: str) -> Optional[SimulationStats]:
    """Load cached stats for a run key (None on miss)."""
    if not cache_enabled():
        return None
    path = cache_dir() / (key + ".json")
    if not path.exists():
        return None
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    return SimulationStats.from_dict(data)


def cleanup_stale_tmp(key: str) -> int:
    """Remove leftover ``<key>.*.tmp`` files; returns the count removed.

    A worker that dies mid-:func:`store` (crash, OOM kill) leaves its
    pid-unique temp file behind. The runner calls this before
    re-submitting a failed cell so the retry starts from a clean slate
    instead of accreting partial artifacts run after run.
    """
    removed = 0
    directory = cache_dir()
    if not directory.is_dir():
        return 0
    for tmp in directory.glob(key + ".*.tmp"):
        try:
            tmp.unlink()
            removed += 1
        except OSError:
            pass  # another retryer won the race; nothing left to clean
    return removed


def store(key: str, stats: SimulationStats) -> None:
    """Persist a run's stats under its key."""
    if not cache_enabled():
        return
    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    data = stats.to_dict()
    # pid-unique temp name: concurrent writers (parallel suite runs in
    # separate processes) must not clobber each other mid-write
    tmp = directory / ("%s.%d.tmp" % (key, os.getpid()))
    with open(tmp, "w") as fh:
        json.dump(data, fh)
    tmp.replace(directory / (key + ".json"))

"""Per-cycle machine probes: watch the pipeline breathe.

A probe is any callable attached to ``Machine.probe``; the machine calls
it once per cycle after all stages. :class:`TimelineProbe` samples the
quantities the paper's narrative is about — FTQ occupancy collapsing at
resteers, MSHR pressure, back-end drain — and renders them as terminal
sparklines, which makes the FDIP mechanism *visible*:

>>> machine.probe = probe = TimelineProbe(sample_every=50)
>>> machine.run(50_000, warmup=0)
>>> print(probe.render())

Event-horizon interaction (DESIGN.md §10/§12): probes and telemetry
answer different questions and interact with cycle skipping differently.

* **Probes** observe *every cycle* — attaching one automatically
  disables event-horizon skipping so the observer sees each cycle,
  unless ``machine.probe_coarse = True`` opts into one observation per
  fast-forward jump (coarse sampling; skipping stays on).
* **The telemetry recorder** (``machine.tel``, see
  :mod:`repro.telemetry`) is *horizon-aware by design*: attaching it
  never disables skipping. Emit sites fire only on discrete pipeline
  events (resteers, misses, FEC qualifications, prefetch traffic), none
  of which occur inside a skippable region, and ``_fast_forward`` emits
  one batched ``fast_forward`` event per jump so the trace records
  exactly where — and how far — the simulator skipped. Stats stay
  bit-identical with telemetry attached or not.

Rule of thumb: use a probe to ask "what does cycle-by-cycle occupancy
look like?", telemetry to ask "what happened, in what order, and how do
two runs differ?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

_SPARKS = " .:-=+*#%@"


def sparkline(values: List[float], width: int = 72,
              vmax: Optional[float] = None) -> str:
    """Render values as a one-line terminal sparkline."""
    if not values:
        return ""
    if len(values) > width:
        # bucket-average down to the display width
        bucket = len(values) / width
        values = [
            sum(values[int(i * bucket):max(int(i * bucket) + 1,
                                           int((i + 1) * bucket))])
            / max(1, len(values[int(i * bucket):max(int(i * bucket) + 1,
                                                    int((i + 1) * bucket))]))
            for i in range(width)
        ]
    top = vmax if vmax is not None else (max(values) or 1.0)
    out = []
    for v in values:
        idx = int(min(1.0, max(0.0, v / top)) * (len(_SPARKS) - 1))
        out.append(_SPARKS[idx])
    return "".join(out)


@dataclass
class TimelineProbe:
    """Samples pipeline occupancies every ``sample_every`` cycles."""

    sample_every: int = 100
    ftq_occupancy: List[float] = field(default_factory=list)
    rob_occupancy: List[float] = field(default_factory=list)
    mshr_inflight: List[float] = field(default_factory=list)
    resteer_marks: List[float] = field(default_factory=list)
    _resteers_seen: int = 0
    _window_resteers: int = 0

    def __call__(self, machine) -> None:
        new_resteers = machine.stats.resteers - self._resteers_seen
        self._resteers_seen = machine.stats.resteers
        self._window_resteers += new_resteers
        if machine.cycle % self.sample_every != 0:
            return
        self.ftq_occupancy.append(machine.ftq.occupancy())
        self.rob_occupancy.append(machine.backend.occupancy)
        self.mshr_inflight.append(
            machine.hierarchy.l1i.mshr_inflight(machine.cycle))
        self.resteer_marks.append(self._window_resteers)
        self._window_resteers = 0

    def render(self, width: int = 72) -> str:
        """Render the result as the paper-style text output."""
        lines = [
            "FTQ occupancy (0..%d):" % 24,
            "  " + sparkline(self.ftq_occupancy, width),
            "L1-I MSHRs in flight:",
            "  " + sparkline(self.mshr_inflight, width),
            "ROB occupancy:",
            "  " + sparkline(self.rob_occupancy, width),
            "resteers per window:",
            "  " + sparkline(self.resteer_marks, width),
        ]
        return "\n".join(lines)

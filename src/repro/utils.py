"""Shared low-level helpers: address arithmetic, deterministic RNG
streams, and canonical hashing.

Every stochastic component in the simulator (workload walker, EMISSARY
promotion, PDIP insertion, back-end stall model) draws from its own seeded
:class:`random.Random` stream derived via :func:`derive_rng`, so that runs
are bit-for-bit reproducible and adding a new consumer of randomness never
perturbs existing components.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
import signal
import sys

#: ``@dataclass(**SLOTTED)`` gives hot-path record classes ``__slots__``
#: (faster attribute access, no per-instance ``__dict__``) on Python
#: 3.10+, and degrades to a plain dataclass on 3.9 (the oldest CI rung),
#: where ``dataclass(slots=True)`` does not exist.
SLOTTED = {"slots": True} if sys.version_info >= (3, 10) else {}

#: Cache line size in bytes used throughout the model (Table 1: 64B lines).
LINE_SIZE = 64

#: log2 of the line size, used for block-address arithmetic.
LINE_SHIFT = 6

#: Fixed instruction size in bytes for the synthetic ISA.
INSTRUCTION_SIZE = 4


def line_of(addr: int) -> int:
    """Return the cache-line (block) number containing byte address ``addr``."""
    return addr >> LINE_SHIFT


def line_base(addr: int) -> int:
    """Return the first byte address of the line containing ``addr``."""
    return (addr >> LINE_SHIFT) << LINE_SHIFT


def lines_spanned(start: int, nbytes: int) -> list:
    """Return the list of line numbers touched by ``nbytes`` starting at ``start``.

    A basic block that crosses a line boundary occupies more than one line;
    the FTQ/IFU must fetch every one of them.
    """
    if nbytes <= 0:
        return []
    first = line_of(start)
    last = line_of(start + nbytes - 1)
    return list(range(first, last + 1))


def derive_rng(seed: int, stream: str) -> random.Random:
    """Create an independent :class:`random.Random` for a named stream.

    The stream name is hashed into the seed so components get decorrelated
    sequences while staying deterministic for a given top-level seed.
    """
    # Use a stable (non-PYTHONHASHSEED-dependent) string hash.
    h = 2166136261
    for ch in stream:
        h = (h ^ ord(ch)) * 16777619 & 0xFFFFFFFF
    return random.Random((seed * 0x9E3779B1 + h) & 0xFFFFFFFFFFFF)


def freeze(obj):
    """JSON-stable representation of dataclasses / dicts / scalars.

    Dataclasses become field-name dicts, dicts are key-sorted, tuples
    become lists — so two structurally equal values always serialize to
    the same JSON text regardless of construction order.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: freeze(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): freeze(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [freeze(v) for v in obj]
    return obj


def canonical_digest(payload) -> str:
    """SHA-1 hex digest of the canonical JSON form of ``payload``.

    The one hashing helper behind every identity in the repo: the
    on-disk result-cache run key, the manifest config hash, and the
    service store's cell key all reduce to this function, so a cell's
    digest is stable across subsystems (and pinned by a golden test).
    """
    blob = json.dumps(freeze(payload), sort_keys=True).encode()
    return hashlib.sha1(blob).hexdigest()


def geomean(values) -> float:
    """Geometric mean of positive values (paper's metric for mean speedup)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geomean requires positive values, got %r" % (v,))
        product *= v
    return product ** (1.0 / len(values))


def pool_child_init() -> None:
    """Process-pool initializer: detach from the parent's signal plumbing.

    Pool children are forked from a server/worker whose asyncio loop
    routes SIGTERM/SIGINT through a wakeup fd (``add_signal_handler``).
    A child inherits both the C-level handler and the *shared* wakeup
    socketpair, so signalling a child (e.g. ``tear_down_pool``
    terminating a wedged simulation) would write into the parent's
    wakeup fd and spuriously trigger the parent's own drain handler.
    Restoring default dispositions makes a child's SIGTERM kill only
    the child.

    Lives here (not in ``repro.service.jobs``) so the batch runner in
    ``repro.simulator`` can install it too without breaking the
    layering DAG; the ``pool-child-init`` lint rule requires it at
    every ``ProcessPoolExecutor`` construction site.
    """
    signal.set_wakeup_fd(-1)
    for sig in (signal.SIGTERM, signal.SIGINT):
        signal.signal(sig, signal.SIG_DFL)

"""Declarative sweep subsystem: spec → plan → incremental execution.

The grid an experiment runs is *data*, not code: a TOML/JSON spec
(:mod:`repro.sweeps.spec`) compiles to a deterministic plan of
digest-keyed cells (:mod:`repro.sweeps.plan`), and the executor
(:mod:`repro.sweeps.executor`) resolves the plan against the result
store so only dirty cells simulate — locally or over a ``repro serve``
fleet, with live progress on the server dashboard.

Typical use::

    from repro.sweeps import compile_spec, load_spec, run_sweep

    plan = compile_spec(load_spec("examples/sweeps/btb_sweep.toml"))
    report = run_sweep(plan, store=my_store, jobs=8)
    grid = report.results(config_label="btb_4k")   # {bench: {policy: stats}}
"""

from repro.sweeps.executor import (
    DEFAULT_MAX_IN_FLIGHT,
    SweepReport,
    load_state,
    run_sweep,
    sweep_state_path,
)
from repro.sweeps.plan import PlanCell, SweepPlan, compile_spec
from repro.sweeps.spec import (
    AXIS_NAMES,
    ConfigVariant,
    SweepSpec,
    SweepSpecError,
    load_spec,
    parse_spec,
)

__all__ = [
    "AXIS_NAMES",
    "ConfigVariant",
    "DEFAULT_MAX_IN_FLIGHT",
    "PlanCell",
    "SweepPlan",
    "SweepReport",
    "SweepSpec",
    "SweepSpecError",
    "compile_spec",
    "load_spec",
    "load_state",
    "parse_spec",
    "run_sweep",
    "sweep_state_path",
]

"""Sweep compiler: expand a spec into a deterministic plan of cells.

The compiler is pure: same spec → same ordered cell list → same plan
digest, on every machine, forever (the digest is pinned by golden
tests). Each cell carries two identities:

* ``key`` — the run digest from :meth:`ResultStore.cell_key`, i.e. the
  same content-addressed identity the cache, store, and service use.
  This is what makes execution *incremental*: a cell whose key is
  already in the store is warm and never re-simulated, and editing one
  config field changes only the keys of the cells it touches — the
  dirty set — leaving every other cell warm.
* the *plan digest* — a hash of the expanded cell tuples **excluding**
  run keys. It identifies the sweep's shape for resumable state files
  and the dashboard, and stays stable across simulator retunes that
  would shift run keys (so the digest goldens don't churn).

Expansion order is the canonical axis order (:data:`AXIS_NAMES`):
benchmark outermost, then policy, config, seed, instructions, warmup;
derived ``[[cells]]`` append after the grid. Filters apply before key
computation; duplicate keys keep the first occurrence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.service.jobs import config_from_payload
from repro.service.store import ResultStore
from repro.sweeps.spec import ConfigVariant, SweepSpec
from repro.utils import canonical_digest, freeze

__all__ = ["PlanCell", "SweepPlan", "compile_spec"]


@dataclass(frozen=True)
class PlanCell:
    """One fully-resolved simulation cell of a compiled sweep."""

    benchmark: str
    policy: str
    seed: int
    instructions: int
    warmup: int
    config: Optional[Dict[str, Any]]  # MachineConfig overrides, or None
    config_label: str
    key: str  # canonical run digest (ResultStore.cell_key)

    def describe(self) -> str:
        """Short human label: ``cassandra/pdip_44[btb_4k] seed=2``."""
        label = "" if self.config_label == "default" else "[%s]" % self.config_label
        return "%s/%s%s seed=%d" % (self.benchmark, self.policy, label, self.seed)

    def payload(self) -> Dict[str, Any]:
        """Submission payload for the service / report row (no key)."""
        return {
            "benchmark": self.benchmark,
            "policy": self.policy,
            "seed": self.seed,
            "instructions": self.instructions,
            "warmup": self.warmup,
            "config": dict(self.config) if self.config else None,
            "config_label": self.config_label,
        }


@dataclass(frozen=True)
class SweepPlan:
    """A compiled sweep: ordered unique cells plus the shape digest."""

    name: str
    digest: str
    cells: Tuple[PlanCell, ...]

    @property
    def benchmarks(self) -> Tuple[str, ...]:
        return _ordered_unique(c.benchmark for c in self.cells)

    @property
    def policies(self) -> Tuple[str, ...]:
        return _ordered_unique(c.policy for c in self.cells)

    @property
    def config_labels(self) -> Tuple[str, ...]:
        return _ordered_unique(c.config_label for c in self.cells)

    def summary(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "plan_digest": self.digest,
            "cells": len(self.cells),
            "benchmarks": list(self.benchmarks),
            "policies": list(self.policies),
            "configs": list(self.config_labels),
        }


def _ordered_unique(items: Iterable[str]) -> Tuple[str, ...]:
    seen: Dict[str, None] = {}
    for item in items:
        seen.setdefault(item)
    return tuple(seen)


def _cell_value(cell: Mapping[str, Any], key: str) -> Any:
    """Resolve a filter key against an expanded (pre-key) cell dict."""
    if key == "config":
        return cell["config"].label
    if key.startswith("config."):
        return cell["config"].overrides.get(key[len("config."):])
    return cell.get(key)


def _matches(cell: Mapping[str, Any], rule: Mapping[str, Any]) -> bool:
    for key, want in rule.items():
        have = _cell_value(cell, key)
        allowed = want if isinstance(want, (list, tuple)) else (want,)
        if have not in allowed:
            return False
    return True


def _keep(cell: Mapping[str, Any], spec: SweepSpec) -> bool:
    if any(_matches(cell, rule) for rule in spec.exclude):
        return False
    if spec.include:
        return any(_matches(cell, rule) for rule in spec.include)
    return True


def _expand(spec: SweepSpec) -> List[Dict[str, Any]]:
    """Grid expansion in canonical axis order, then derived cells."""
    raw: List[Dict[str, Any]] = []
    for benchmark in spec.benchmarks:
        for policy in spec.policies:
            for config in spec.configs:
                for seed in spec.seeds:
                    for instructions in spec.instructions:
                        for warmup in spec.warmups:
                            raw.append({
                                "benchmark": benchmark,
                                "policy": policy,
                                "config": config,
                                "seed": seed,
                                "instructions": instructions,
                                "warmup": warmup,
                            })
    raw.extend(dict(cell) for cell in spec.cells)
    return [cell for cell in raw if _keep(cell, spec)]


def compile_spec(spec: SweepSpec) -> SweepPlan:
    """Compile a validated spec into its deterministic plan."""
    cells: List[PlanCell] = []
    seen_keys: Dict[str, None] = {}
    shape_rows: List[Tuple[Any, ...]] = []
    for cell in _expand(spec):
        config: ConfigVariant = cell["config"]
        key = ResultStore.cell_key(
            cell["benchmark"], cell["policy"],
            instructions=cell["instructions"], warmup=cell["warmup"],
            seed=cell["seed"], config=config_from_payload(config.as_payload()))
        if key in seen_keys:
            continue
        seen_keys.setdefault(key)
        shape_rows.append(freeze({
            "benchmark": cell["benchmark"],
            "policy": cell["policy"],
            "seed": cell["seed"],
            "instructions": cell["instructions"],
            "warmup": cell["warmup"],
            "config": config.overrides or None,
        }))
        cells.append(PlanCell(
            benchmark=cell["benchmark"], policy=cell["policy"],
            seed=cell["seed"], instructions=cell["instructions"],
            warmup=cell["warmup"], config=config.as_payload(),
            config_label=config.label, key=key))
    digest = canonical_digest(("sweep-plan", 1, spec.name, tuple(shape_rows)))
    return SweepPlan(name=spec.name, digest=digest, cells=tuple(cells))

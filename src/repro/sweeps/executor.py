"""Incremental sweep executor: resolve warm cells, run only the dirty.

Given a compiled :class:`~repro.sweeps.plan.SweepPlan`, the executor
resolves every cell in three steps:

1. **store** — the durable :class:`ResultStore` is consulted *first*
   (unlike the suite runner, which prefers the local file cache) so a
   warm re-run is visible in the store's ``hits`` counter — that is the
   observable the incremental-execution tests key on.
2. **cache** — the per-machine result cache catches cells simulated
   outside any store.
3. **execute** — remaining misses are the *dirty set*. They run either
   on a local process pool (the suite runner's own
   :func:`~repro.simulator.runner.execute_cells`, so pool/retry
   semantics — and therefore stats — are identical to
   ``run_suite_parallel``) or against a running ``repro serve`` /
   coordinator fleet via :class:`ServiceClient`, with at most
   ``max_in_flight`` submissions outstanding.

Progress is durable: after every wave the executor rewrites the plan's
*state file* (atomic temp+rename, keyed by the plan digest) recording
per-cell outcomes, so an interrupted sweep resumes cheaply — completed
cells resolve warm from the store/cache and the state file carries the
history for ``repro sweep status``. When a client is attached, the
sweep also registers itself with the server's dashboard and posts
aggregated per-(benchmark × policy) progress, so a million-cell sweep
ships O(grid) — not O(cells) — bytes per update.

The final :class:`SweepReport` is the JSON artifact figure cells
consume: per-cell source/stats plus aggregate counts.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import config_from_payload
from repro.simulator.manifest import config_hash
from repro.simulator.policies import get_policy
from repro.simulator.runner import DEFAULT_RETRIES, execute_cells, resolve_jobs
from repro.simulator.stats import SimulationStats
from repro.sweeps.plan import PlanCell, SweepPlan

__all__ = ["SweepReport", "run_sweep", "sweep_state_path", "load_state"]

#: Ceiling on submissions outstanding against a service at once.
DEFAULT_MAX_IN_FLIGHT = 16
#: Terminal-state poll cadence in service mode (seconds).
_POLL_S = 0.2
#: Dashboard progress updates are throttled to this period (seconds).
_DASH_PERIOD_S = 1.0
_STATE_SCHEMA = 1
_REPORT_SCHEMA = 1


class SweepReport:
    """Outcome of one executor run over a plan (JSON-serializable)."""

    def __init__(self, plan: SweepPlan) -> None:
        self.name = plan.name
        self.plan_digest = plan.digest
        self.total = len(plan.cells)
        #: key -> (cell, source, stats | None, error, wall_time)
        self.outcomes: Dict[str, Tuple[PlanCell, str, Optional[SimulationStats],
                                       str, float]] = {}

    def record(self, cell: PlanCell, source: str,
               stats: Optional[SimulationStats], error: str = "",
               wall_time: float = 0.0) -> None:
        self.outcomes[cell.key] = (cell, source, stats, error, wall_time)

    @property
    def counts(self) -> Dict[str, int]:
        tally = {"total": self.total, "store": 0, "cache": 0,
                 "executed": 0, "failed": 0}
        for _, source, _, _, _ in self.outcomes.values():
            tally[source] = tally.get(source, 0) + 1
        return tally

    @property
    def failed(self) -> Dict[str, str]:
        """key -> error for every failed cell."""
        return {key: err for key, (_, src, _, err, _) in self.outcomes.items()
                if src == "failed"}

    def results(self, config_label: Optional[str] = None,
                seed: Optional[int] = None
                ) -> Dict[str, Dict[str, SimulationStats]]:
        """``{benchmark: {policy: stats}}`` — the figure-cell shape.

        Optional filters select one config variant / seed when the sweep
        has those axes; without them later cells win the (bench, policy)
        slot, exactly like iterating the grid in plan order.
        """
        out: Dict[str, Dict[str, SimulationStats]] = {}
        for cell, _, stats, _, _ in self.outcomes.values():
            if stats is None:
                continue
            if config_label is not None and cell.config_label != config_label:
                continue
            if seed is not None and cell.seed != seed:
                continue
            out.setdefault(cell.benchmark, {})[cell.policy] = stats
        return out

    def to_dict(self, include_stats: bool = True) -> Dict[str, Any]:
        rows = []
        for cell, source, stats, error, wall in self.outcomes.values():
            row = cell.payload()
            row.update(key=cell.key, source=source, error=error,
                       wall_time=round(wall, 6))
            if include_stats:
                row["stats"] = stats.to_dict() if stats is not None else None
            rows.append(row)
        return {"schema": _REPORT_SCHEMA, "name": self.name,
                "plan_digest": self.plan_digest, "counts": self.counts,
                "cells": rows}

    def write(self, path: "str | Path", include_stats: bool = True) -> None:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_suffix(target.suffix + ".%d.tmp" % os.getpid())
        tmp.write_text(json.dumps(self.to_dict(include_stats=include_stats),
                                  indent=2, sort_keys=True))
        tmp.replace(target)


# ----------------------------------------------------------------------
# resumable state
# ----------------------------------------------------------------------
def sweep_state_path(plan: SweepPlan) -> Path:
    """Default state location: content-addressed under the result cache.

    Keying the file name by the plan digest makes resume automatic for
    an unchanged spec and inert for an edited one — a changed plan gets
    a fresh state file instead of inheriting stale cell history.
    """
    from repro.simulator import cache as result_cache

    root = result_cache.cache_dir() / "sweeps"
    return root / ("%s.state.json" % plan.digest)


def load_state(path: "str | Path", plan: SweepPlan) -> Dict[str, Any]:
    """Read a state file; empty state on absence/corruption/plan drift."""
    empty = {"schema": _STATE_SCHEMA, "name": plan.name,
             "plan_digest": plan.digest, "done": {}, "failed": {}}
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return empty
    if (not isinstance(data, dict)
            or data.get("plan_digest") != plan.digest
            or data.get("schema") != _STATE_SCHEMA):
        return empty
    data.setdefault("done", {})
    data.setdefault("failed", {})
    return data


def _write_state(path: "str | Path", state: Dict[str, Any]) -> None:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    state = dict(state, updated=time.time())
    tmp = target.with_suffix(target.suffix + ".%d.tmp" % os.getpid())
    tmp.write_text(json.dumps(state, sort_keys=True))
    tmp.replace(target)


# ----------------------------------------------------------------------
# dashboard feed
# ----------------------------------------------------------------------
class _DashFeed:
    """Best-effort progress mirror on the server's dashboard registry.

    Registration and updates never fail the sweep: a server predating
    the dashboard routes (or a dropped connection) degrades to silence.
    """

    def __init__(self, client: Optional[ServiceClient],
                 plan: SweepPlan) -> None:
        self.client = client
        self.plan = plan
        self.sweep_id: Optional[str] = None
        self._last = 0.0
        self._slot_totals: Dict[str, int] = {}
        for cell in plan.cells:
            slot = "%s|%s" % (cell.benchmark, cell.policy)
            self._slot_totals[slot] = self._slot_totals.get(slot, 0) + 1
        if client is None:
            return
        try:
            self.sweep_id = client.register_sweep(
                name=plan.name, plan_digest=plan.digest,
                total=len(plan.cells), benchmarks=list(plan.benchmarks),
                policies=list(plan.policies))["id"]
        except (ServiceError, OSError):
            self.sweep_id = None

    def push(self, report: SweepReport, state: str = "running",
             force: bool = False) -> None:
        if self.client is None or self.sweep_id is None:
            return
        now = time.monotonic()
        if not force and now - self._last < _DASH_PERIOD_S:
            return
        self._last = now
        grid = {slot: {"done": 0, "failed": 0, "total": total}
                for slot, total in self._slot_totals.items()}
        for cell, source, _, _, _ in report.outcomes.values():
            slot = grid["%s|%s" % (cell.benchmark, cell.policy)]
            if source == "failed":
                slot["failed"] += 1
            else:
                slot["done"] += 1
        try:
            self.client.sweep_progress(self.sweep_id, counts=report.counts,
                                       grid=grid, state=state)
        except (ServiceError, OSError):
            pass


# ----------------------------------------------------------------------
# execution backends
# ----------------------------------------------------------------------
def _resolve_warm(cell: PlanCell, store, result_cache
                  ) -> Tuple[Optional[str], Optional[SimulationStats]]:
    """(source, stats) for a warm cell, (None, None) for a dirty one."""
    if store is not None:
        stats = store.get(cell.key)
        if stats is not None:
            result_cache.store(cell.key, stats)  # warm the local cache
            return "store", stats
    stats = result_cache.load(cell.key)
    if stats is not None:
        return "cache", stats
    return None, None


def _run_local(dirty: List[PlanCell], report: SweepReport, store,
               result_cache, jobs: Optional[int], retries: int,
               feed: _DashFeed, checkpoint: Callable[[], None],
               verbose: bool) -> None:
    """Execute dirty cells on this machine's process pool, in waves."""
    jobs = resolve_jobs(jobs, default=os.cpu_count() or 1)
    wave_size = max(4 * jobs, 8)
    for start in range(0, len(dirty), wave_size):
        wave = dirty[start:start + wave_size]
        pending = {cell.key: (cell.benchmark, get_policy(cell.policy),
                              cell.instructions, cell.warmup,
                              config_from_payload(cell.config), cell.seed)
                   for cell in wave}
        computed, attempts, errors = execute_cells(pending, jobs, retries)
        for cell in wave:
            if cell.key in computed:
                stats, wall, worker, telemetry = computed[cell.key]
                result_cache.store(cell.key, stats)
                if store is not None:
                    store.put(cell.key, stats, meta={
                        "benchmark": cell.benchmark, "policy": cell.policy,
                        "seed": cell.seed, "instructions": cell.instructions,
                        "warmup": cell.warmup,
                        "config_hash": config_hash(
                            config_from_payload(cell.config)),
                        "wall_time": wall, "worker": worker,
                        "attempts": attempts[cell.key],
                        "label": "sweep:%s" % report.name,
                    }, telemetry=telemetry)
                report.record(cell, "executed", stats, wall_time=wall)
            else:
                report.record(cell, "failed", None,
                              error=errors.get(cell.key, "unknown"))
            if verbose:
                _, source, _, error, _ = report.outcomes[cell.key]
                suffix = ": %s" % error if error else ""
                print("  %-40s %s%s" % (cell.describe(), source, suffix))
        checkpoint()
        feed.push(report)


def _run_service(dirty: List[PlanCell], report: SweepReport,
                 client: ServiceClient, max_in_flight: int,
                 feed: _DashFeed, checkpoint: Callable[[], None],
                 verbose: bool) -> None:
    """Submit dirty cells to a running server, bounded in-flight."""
    queue = list(dirty)
    in_flight: Dict[str, PlanCell] = {}  # job id -> cell
    while queue or in_flight:
        while queue and len(in_flight) < max_in_flight:
            cell = queue.pop(0)
            try:
                job = client.submit(
                    cell.benchmark, cell.policy,
                    instructions=cell.instructions, warmup=cell.warmup,
                    seed=cell.seed, config=cell.config,
                    backpressure_retries=8)
            except ServiceError as exc:
                report.record(cell, "failed", None,
                              error="submit rejected: %s" % exc)
                continue
            in_flight[str(job["id"])] = cell
        settled = []
        for job_id, cell in in_flight.items():
            job = client.status(job_id)
            state = job["state"]
            if state == "done":
                result = client.result(job_id)
                stats = SimulationStats.from_dict(result["stats"])
                source = ("store" if result.get("source") == "store"
                          else "executed")
                report.record(cell, source, stats,
                              wall_time=float(job.get("wall_time") or 0.0))
            elif state in ("failed", "cancelled"):
                report.record(cell, "failed", None,
                              error=str(job.get("error") or state))
            else:
                continue
            if verbose:
                _, source, _, error, _ = report.outcomes[cell.key]
                suffix = ": %s" % error if error else ""
                print("  %-40s %s%s" % (cell.describe(), source, suffix))
            settled.append(job_id)
        if settled:
            for job_id in settled:
                del in_flight[job_id]
            checkpoint()
            feed.push(report)
        elif in_flight:
            time.sleep(_POLL_S)


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def run_sweep(plan: SweepPlan, store=None,
              client: Optional[ServiceClient] = None,
              jobs: Optional[int] = None, retries: int = DEFAULT_RETRIES,
              max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
              state_path: "str | Path | None" = None,
              report_path: "str | Path | None" = None,
              include_stats: bool = True,
              verbose: bool = False) -> SweepReport:
    """Resolve a plan incrementally and execute only the dirty cells.

    ``client`` selects the backend: with one, misses are submitted to
    the running server/fleet (``max_in_flight`` outstanding at once) and
    the sweep appears on its dashboard; without, they run on a local
    process pool of ``jobs`` workers. ``store`` is consulted before
    anything else, so warm cells cost one index lookup and re-running an
    unchanged spec against a warm store performs **zero simulations**.

    ``state_path=None`` selects the content-addressed default under the
    result cache (:func:`sweep_state_path`); pass ``state_path=""`` to
    disable state entirely. ``report_path`` additionally writes the JSON
    report after the final cell.
    """
    from repro.simulator import cache as result_cache

    report = SweepReport(plan)
    state_file: Optional[Path] = None
    if state_path is None:
        state_file = sweep_state_path(plan)
    elif str(state_path):
        state_file = Path(state_path)
    state = load_state(state_file, plan) if state_file else {
        "schema": _STATE_SCHEMA, "name": plan.name,
        "plan_digest": plan.digest, "done": {}, "failed": {}}

    def checkpoint() -> None:
        for key, (_, source, _, error, _) in report.outcomes.items():
            if source == "failed":
                state["failed"][key] = error
                state["done"].pop(key, None)
            else:
                state["done"][key] = source
                state["failed"].pop(key, None)
        if state_file is not None:
            _write_state(state_file, state)

    feed = _DashFeed(client, plan)
    dirty: List[PlanCell] = []
    for cell in plan.cells:
        source, stats = _resolve_warm(cell, store, result_cache)
        if source is not None:
            report.record(cell, source, stats)
        else:
            dirty.append(cell)
    if verbose:
        counts = report.counts
        print("sweep %s: %d cells, %d warm (%d store / %d cache), %d dirty"
              % (plan.name, counts["total"], counts["store"] + counts["cache"],
                 counts["store"], counts["cache"], len(dirty)))
    checkpoint()
    feed.push(report, force=True)

    if dirty:
        if client is not None:
            _run_service(dirty, report, client, max_in_flight, feed,
                         checkpoint, verbose)
        else:
            _run_local(dirty, report, store, result_cache, jobs, retries,
                       feed, checkpoint, verbose)
        checkpoint()
    feed.push(report, state="failed" if report.failed else "done", force=True)
    if report_path:
        report.write(report_path, include_stats=include_stats)
    return report

"""Declarative sweep specifications (TOML/JSON grids over the run space).

A *sweep spec* names the experiment once — axes of benchmarks, policies,
config overrides, seeds and budgets — instead of encoding it in a bespoke
drive loop per figure. The spec is pure data: loading one performs no
simulation, touches no store, and is safe to parse on any machine. The
compiler (:mod:`repro.sweeps.plan`) expands it into the deterministic
cell list that the executor resolves incrementally.

Spec shape (TOML shown; the JSON form is the same object tree)::

    name = "btb_sweep"

    [axes]
    benchmark = ["cassandra", "tomcat"]      # or "all"
    policy = ["baseline", "pdip_44"]
    seed = [1, 2]                            # optional, default [defaults.seed]

    [[axes.config]]                          # optional config axis: each
    label = "btb_4k"                         # entry is a MachineConfig
    btb_entries = 4096                       # override dict (validated)

    [[axes.config]]
    label = "btb_64k"
    btb_entries = 65536

    [defaults]
    instructions = 400000                    # per-cell budget defaults
    warmup = 120000
    seed = 1

    [[exclude]]                              # drop matching cells
    benchmark = "tomcat"
    policy = "baseline"

    [[include]]                              # when present: keep only
    policy = ["baseline", "pdip_44"]         # cells matching some rule

    [[cells]]                                # derived cells appended
    benchmark = "noop"                       # verbatim after expansion
    policy = "pdip_44"
    instructions = 50000

Filter rules match on axis names (``benchmark``, ``policy``, ``seed``,
``instructions``, ``warmup``), on ``config`` (the config *label*), or on
``config.<field>`` (an explicit override value). Values may be scalars
or lists (list = any-of). A rule matches a cell when every key matches.

Validation is eager: unknown benchmarks/policies/config fields raise
:class:`SweepSpecError` at parse time with the offending path, never at
cell-execution time half way through a grid.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.service.jobs import config_from_payload
from repro.simulator.policies import POLICIES
from repro.workloads import BENCHMARK_NAMES, known_benchmark_names

__all__ = [
    "AXIS_NAMES",
    "ConfigVariant",
    "SweepSpec",
    "SweepSpecError",
    "load_spec",
    "parse_spec",
]

#: Canonical axis expansion order (outermost first). This order is part
#: of the plan-digest contract: reordering it would renumber every cell.
AXIS_NAMES = ("benchmark", "policy", "config", "seed", "instructions", "warmup")

_SCALAR_AXES = ("benchmark", "policy", "seed", "instructions", "warmup")
_DEFAULTS = {"seed": 1, "instructions": 400_000, "warmup": 120_000}


class SweepSpecError(ValueError):
    """A sweep spec failed validation; message carries the spec path."""


@dataclass(frozen=True)
class ConfigVariant:
    """One entry of the config axis: a label plus override fields."""

    label: str
    overrides: Dict[str, Any] = field(default_factory=dict)

    def as_payload(self) -> Optional[Dict[str, Any]]:
        """Override dict for job payloads (``None`` for the default)."""
        return dict(self.overrides) if self.overrides else None


#: The implicit config axis when a spec declares none: stock MachineConfig.
DEFAULT_CONFIG = ConfigVariant(label="default")


@dataclass(frozen=True)
class SweepSpec:
    """A parsed, validated sweep specification (pure data)."""

    name: str
    benchmarks: Tuple[str, ...]
    policies: Tuple[str, ...]
    configs: Tuple[ConfigVariant, ...]
    seeds: Tuple[int, ...]
    instructions: Tuple[int, ...]
    warmups: Tuple[int, ...]
    include: Tuple[Dict[str, Any], ...] = ()
    exclude: Tuple[Dict[str, Any], ...] = ()
    cells: Tuple[Dict[str, Any], ...] = ()

    @property
    def grid_size(self) -> int:
        """Upper bound on expanded cells (before filters, plus derived)."""
        return (len(self.benchmarks) * len(self.policies) * len(self.configs)
                * len(self.seeds) * len(self.instructions) * len(self.warmups)
                + len(self.cells))


def _fail(path: str, message: str) -> "SweepSpecError":
    return SweepSpecError("%s: %s" % (path, message))


def _as_list(value: Any) -> List[Any]:
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


def _int_list(value: Any, path: str, minimum: int = 0) -> Tuple[int, ...]:
    out = []
    for i, item in enumerate(_as_list(value)):
        if isinstance(item, bool) or not isinstance(item, int):
            raise _fail("%s[%d]" % (path, i), "expected an integer, got %r" % (item,))
        if item < minimum:
            raise _fail("%s[%d]" % (path, i), "must be >= %d, got %d" % (minimum, item))
        out.append(item)
    if not out:
        raise _fail(path, "axis is empty")
    return tuple(out)


def _benchmark_axis(value: Any, path: str) -> Tuple[str, ...]:
    if value == "all":
        # deliberately the synthetic catalog only: keeping "all" stable
        # preserves plan digests when trace benchmarks come and go
        return tuple(BENCHMARK_NAMES)
    names = []
    known = known_benchmark_names()
    for i, item in enumerate(_as_list(value)):
        if item not in known:
            raise _fail("%s[%d]" % (path, i),
                        "unknown benchmark %r; valid: %s"
                        % (item, ", ".join(known)))
        names.append(item)
    if not names:
        raise _fail(path, "axis is empty")
    return tuple(names)


def _policy_axis(value: Any, path: str) -> Tuple[str, ...]:
    names = []
    for i, item in enumerate(_as_list(value)):
        if item not in POLICIES:
            raise _fail("%s[%d]" % (path, i),
                        "unknown policy %r; valid: %s"
                        % (item, ", ".join(sorted(POLICIES))))
        names.append(item)
    if not names:
        raise _fail(path, "axis is empty")
    return tuple(names)


def _config_axis(value: Any, path: str) -> Tuple[ConfigVariant, ...]:
    variants = []
    seen = set()
    for i, entry in enumerate(_as_list(value)):
        where = "%s[%d]" % (path, i)
        if not isinstance(entry, Mapping):
            raise _fail(where, "expected a table of MachineConfig overrides")
        overrides = {k: v for k, v in entry.items() if k != "label"}
        label = str(entry.get("label") or "") or _config_label(overrides)
        if label in seen:
            raise _fail(where, "duplicate config label %r" % label)
        seen.add(label)
        try:
            config_from_payload(dict(overrides) or None)
        except (ValueError, TypeError) as exc:
            raise _fail(where, "invalid config overrides: %s" % exc) from exc
        variants.append(ConfigVariant(label=label, overrides=dict(overrides)))
    if not variants:
        raise _fail(path, "axis is empty")
    return tuple(variants)


def _config_label(overrides: Mapping[str, Any]) -> str:
    """Deterministic label for an unlabeled config variant."""
    if not overrides:
        return "default"
    return "_".join("%s-%s" % (k, overrides[k]) for k in sorted(overrides))


def _filter_rules(value: Any, path: str) -> Tuple[Dict[str, Any], ...]:
    rules = []
    for i, rule in enumerate(_as_list(value)):
        where = "%s[%d]" % (path, i)
        if not isinstance(rule, Mapping) or not rule:
            raise _fail(where, "expected a non-empty table of axis matches")
        for key in rule:
            if key in _SCALAR_AXES or key == "config" or key.startswith("config."):
                continue
            raise _fail(where, "unknown filter key %r (axes: %s, config, "
                        "config.<field>)" % (key, ", ".join(_SCALAR_AXES)))
        rules.append({k: v for k, v in rule.items()})
    return tuple(rules)


def _derived_cells(value: Any, spec_defaults: Dict[str, Any],
                   path: str) -> Tuple[Dict[str, Any], ...]:
    cells = []
    for i, entry in enumerate(_as_list(value)):
        where = "%s[%d]" % (path, i)
        if not isinstance(entry, Mapping):
            raise _fail(where, "expected a table")
        unknown = set(entry) - set(_SCALAR_AXES) - {"config"}
        if unknown:
            raise _fail(where, "unknown cell keys: %s" % ", ".join(sorted(unknown)))
        if "benchmark" not in entry or "policy" not in entry:
            raise _fail(where, "derived cells need explicit benchmark and policy")
        cell = dict(spec_defaults)
        cell.update(entry)
        cell["benchmark"] = _benchmark_axis(cell["benchmark"], where)[0]
        cell["policy"] = _policy_axis(cell["policy"], where)[0]
        for axis in ("seed", "instructions", "warmup"):
            cell[axis] = _int_list(cell[axis], "%s.%s" % (where, axis))[0]
        raw = cell.get("config")
        if isinstance(raw, ConfigVariant):
            cell["config"] = raw
        elif raw is None:
            cell["config"] = DEFAULT_CONFIG
        else:
            cell["config"] = _config_axis(raw, "%s.config" % where)[0]
        cells.append(cell)
    return tuple(cells)


def parse_spec(data: Mapping[str, Any], name: str = "") -> SweepSpec:
    """Validate a raw spec mapping into a :class:`SweepSpec`.

    ``name`` is the fallback sweep name (usually the file stem) when the
    document does not carry a ``name`` key.
    """
    if not isinstance(data, Mapping):
        raise SweepSpecError("spec root must be a table/object")
    known = {"name", "axes", "defaults", "include", "exclude", "cells"}
    unknown = set(data) - known
    if unknown:
        raise _fail("spec", "unknown top-level keys: %s"
                    % ", ".join(sorted(unknown)))

    axes = data.get("axes") or {}
    if not isinstance(axes, Mapping):
        raise _fail("axes", "expected a table")
    unknown = set(axes) - set(AXIS_NAMES)
    if unknown:
        raise _fail("axes", "unknown axes: %s (valid: %s)"
                    % (", ".join(sorted(unknown)), ", ".join(AXIS_NAMES)))

    defaults_raw = data.get("defaults") or {}
    if not isinstance(defaults_raw, Mapping):
        raise _fail("defaults", "expected a table")
    unknown = set(defaults_raw) - {"seed", "instructions", "warmup"}
    if unknown:
        raise _fail("defaults", "unknown defaults: %s" % ", ".join(sorted(unknown)))
    defaults = dict(_DEFAULTS)
    for axis in ("seed", "instructions", "warmup"):
        if axis in defaults_raw:
            defaults[axis] = _int_list(defaults_raw[axis], "defaults.%s" % axis)[0]

    derived = _derived_cells(data.get("cells") or [], defaults, "cells")
    has_grid = "benchmark" in axes or "policy" in axes
    if not has_grid and not derived:
        raise _fail("spec", "no cells: declare axes.benchmark/axes.policy "
                    "or explicit [[cells]]")
    if has_grid and ("benchmark" not in axes or "policy" not in axes):
        raise _fail("axes", "grid sweeps need both benchmark and policy axes")

    return SweepSpec(
        name=str(data.get("name") or name or "sweep"),
        benchmarks=(_benchmark_axis(axes["benchmark"], "axes.benchmark")
                    if has_grid else ()),
        policies=(_policy_axis(axes["policy"], "axes.policy")
                  if has_grid else ()),
        configs=(_config_axis(axes["config"], "axes.config")
                 if "config" in axes else (DEFAULT_CONFIG,)),
        seeds=(_int_list(axes["seed"], "axes.seed")
               if "seed" in axes else (defaults["seed"],)),
        instructions=(_int_list(axes["instructions"], "axes.instructions", 1)
                      if "instructions" in axes else (defaults["instructions"],)),
        warmups=(_int_list(axes["warmup"], "axes.warmup")
                 if "warmup" in axes else (defaults["warmup"],)),
        include=_filter_rules(data.get("include") or [], "include"),
        exclude=_filter_rules(data.get("exclude") or [], "exclude"),
        cells=derived,
    )


def load_spec(path: "str | Path") -> SweepSpec:
    """Load and validate a spec file (``.toml`` or ``.json``)."""
    spec_path = Path(path)
    if not spec_path.is_file():
        raise SweepSpecError("spec file not found: %s" % spec_path)
    suffix = spec_path.suffix.lower()
    if suffix == ".json":
        try:
            data = json.loads(spec_path.read_text())
        except json.JSONDecodeError as exc:
            raise SweepSpecError("%s: invalid JSON: %s" % (spec_path, exc)) from exc
    elif suffix == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # Python < 3.11: use the JSON form
            raise SweepSpecError(
                "%s: TOML specs need Python 3.11+ (tomllib); convert the "
                "spec to JSON for older interpreters" % spec_path) from exc
        try:
            data = tomllib.loads(spec_path.read_text())
        except tomllib.TOMLDecodeError as exc:
            raise SweepSpecError("%s: invalid TOML: %s" % (spec_path, exc)) from exc
    else:
        raise SweepSpecError("unsupported spec suffix %r (use .toml or .json)"
                             % spec_path.suffix)
    try:
        return parse_spec(data, name=spec_path.stem)
    except SweepSpecError as exc:
        raise SweepSpecError("%s: %s" % (spec_path, exc)) from exc

"""Calibrated back-end occupancy model.

The paper simulates a full Golden-Cove-class out-of-order back end; PDIP
itself only needs three things from it: (1) retirement (so FEC lines can
be qualified at retire), (2) the issue-queue-empty signal (the paper's
"back-end also stalling" filter for high-cost FEC lines), and (3) enough
back-pressure realism that front-end stalls convert into IPC loss at a
believable rate. :class:`BackendModel` provides exactly that: a ROB-bound
in-flight window, a retire-width drain with a stochastic stall term, and
depth-based retirement latency.
"""

from repro.backend.model import BackendModel, InFlightBlock

__all__ = ["BackendModel", "InFlightBlock"]

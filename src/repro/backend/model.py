"""Back-end occupancy model: ROB window, retire drain, data-stall injection.

Decoded blocks enter an in-flight FIFO; each instruction becomes eligible
to retire ``depth`` cycles after decode (pipeline depth) and the back end
drains up to ``retire_width`` instructions per cycle. Two stall sources
are modelled:

* a per-cycle stochastic stall (``stall_prob``) standing in for data
  dependencies and L1-D misses that the detailed simulator would produce;
* explicit stall windows injected by the data stream when an L2 data miss
  exposes memory latency (how EMISSARY's L2 contention hurts dotty/tatp).

Wrong-path blocks are tracked but never retire; a resteer squashes them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from repro.utils import SLOTTED, derive_rng


@dataclass(**SLOTTED)
class InFlightBlock:
    """A decoded basic block occupying ROB slots."""

    entry: object            # the FTQEntry that produced it
    instructions: int
    retired: int = 0
    decode_cycle: int = 0
    is_wrong_path: bool = False


class BackendModel:
    """ROB + retire model with stochastic and injected stalls."""

    __slots__ = ("rob_entries", "retire_width", "depth", "stall_prob",
                 "issue_empty_threshold", "_rng", "_rng_random", "_q",
                 "_occupancy", "_stall_until", "retired_instructions",
                 "squashed_instructions", "stall_cycles")

    def __init__(self, rob_entries: int = 512, retire_width: int = 12,
                 depth: int = 10, stall_prob: float = 0.10,
                 issue_empty_threshold: int = 12, seed: int = 0):
        self.rob_entries = rob_entries
        self.retire_width = retire_width
        self.depth = depth
        self.stall_prob = stall_prob
        self.issue_empty_threshold = issue_empty_threshold
        self._rng = derive_rng(seed, "backend")
        self._rng_random = self._rng.random  # bound once; called every cycle
        self._q: Deque[InFlightBlock] = deque()
        self._occupancy = 0
        self._stall_until = -1

        self.retired_instructions = 0
        self.squashed_instructions = 0
        self.stall_cycles = 0

    # -- admission ----------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of live entries."""
        return self._occupancy

    def free_slots(self) -> int:
        """ROB slots still available."""
        return self.rob_entries - self._occupancy

    def admit(self, entry: object, instructions: int, cycle: int,
              is_wrong_path: bool = False) -> bool:
        """Admit a decoded block; False when the ROB cannot hold it."""
        occupancy = self._occupancy
        if instructions > self.rob_entries - occupancy:
            return False
        self._q.append(
            InFlightBlock(entry, instructions, 0, cycle, is_wrong_path))
        self._occupancy = occupancy + instructions
        return True

    # -- stalls ------------------------------------------------------------
    def inject_stall(self, cycle: int, duration: int) -> None:
        """Block retirement until ``cycle + duration`` (data-miss exposure)."""
        self._stall_until = max(self._stall_until, cycle + duration)

    @property
    def issue_queue_empty(self) -> bool:
        """The paper's back-end-starving signal (issue queue drained)."""
        return self._occupancy < self.issue_empty_threshold

    # -- retirement ----------------------------------------------------------
    def tick(self, cycle: int,
             on_retire_block: Optional[Callable[[object], None]] = None) -> int:
        """Retire up to ``retire_width`` instructions; returns the count.

        ``on_retire_block`` fires once per block whose *last* instruction
        retires this cycle (where FEC qualification happens).
        """
        if cycle < self._stall_until or self._rng_random() < self.stall_prob:
            self.stall_cycles += 1
            return 0
        budget = self.retire_width
        retired = 0
        q = self._q
        depth = self.depth
        while budget > 0 and q:
            blk = q[0]
            if cycle < blk.decode_cycle + depth:
                break
            if blk.is_wrong_path:
                # wrong-path blocks never retire; they wait for the squash
                break
            take = min(budget, blk.instructions - blk.retired)
            blk.retired += take
            budget -= take
            retired += take
            self._occupancy -= take
            if blk.retired == blk.instructions:
                q.popleft()
                if on_retire_block is not None:
                    on_retire_block(blk.entry)
        self.retired_instructions += retired
        return retired

    # -- squash ---------------------------------------------------------------
    def squash_wrong_path(self) -> int:
        """Drop every wrong-path block (front-end resteer reached execute)."""
        squashed = 0
        kept: List[InFlightBlock] = []
        for blk in self._q:
            if blk.is_wrong_path:
                squashed += blk.instructions - blk.retired
                self._occupancy -= blk.instructions - blk.retired
            else:
                kept.append(blk)
        self._q = deque(kept)
        self.squashed_instructions += squashed
        return squashed

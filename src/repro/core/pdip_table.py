"""The PDIP table (paper Sections 5.1 and 5.4).

Geometry: a fixed 512 sets; associativity is the sizing knob (2-way ≈
11 KB … 16-way ≈ 87 KB). Each way holds:

* a 10-bit tag of the trigger block address,
* one LRU bit (we model precise LRU with a counter; storage is priced at
  the paper's 1 bit/way),
* two targets, each a 34-bit FEC line address plus a 4-bit mask naming
  any of the four following cache blocks to prefetch alongside.

Bits/way = 10 + 1 + 2*(34+4) = 87, so 512 sets x 8 ways = 356,352 bits =
43.5 KB, matching the paper's arithmetic exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.utils import SLOTTED

#: the paper evaluates every configuration at 512 sets
PDIP_TABLE_SETS = 512

#: tag width validated by the paper to reduce aliasing
TAG_BITS = 10

#: physical line-address bits per target
TARGET_BITS = 34

#: following-blocks mask width
MASK_BITS = 4

#: targets per entry ("95% of targets are stored with 2 targets per entry")
TARGETS_PER_ENTRY = 2

#: shared miss result for :meth:`PDIPTable.lookup` — most lookups miss,
#: so they all return this one list; callers must treat it as read-only
_EMPTY: List["tuple[int, str]"] = []


@dataclass(**SLOTTED)
class PDIPTarget:
    """A prefetch target: base FEC line + mask of following blocks."""

    line: int
    mask: int = 0  # bit k set => also prefetch line + (k+1)
    #: trigger type recorded at insertion (analysis only, not storage):
    #: "mispredict"-family or "last_taken" (Fig. 16)
    trigger_type: str = "mispredict"

    def expand(self) -> List[int]:
        """All lines this target prefetches (base + mask)."""
        lines = [self.line]
        for k in range(MASK_BITS):
            if self.mask & (1 << k):
                lines.append(self.line + k + 1)
        return lines


@dataclass(**SLOTTED)
class PDIPEntry:
    """One way: trigger tag plus up to two masked targets."""

    tag: int
    targets: List[PDIPTarget] = field(default_factory=list)
    lru: int = 0
    #: optional path signature (hash of the last branches leading to the
    #: trigger) — the Section 5.2 variant the paper evaluated and dropped
    path: Optional[int] = None


class PDIPTable:
    """Set-associative trigger -> prefetch-target store."""

    def __init__(self, assoc: int = 8, num_sets: int = PDIP_TABLE_SETS,
                 targets_per_entry: int = TARGETS_PER_ENTRY,
                 mask_bits: int = MASK_BITS):
        if assoc <= 0 or num_sets <= 0:
            raise ValueError("assoc and num_sets must be positive")
        self.assoc = assoc
        self.num_sets = num_sets
        self.targets_per_entry = targets_per_entry
        self.mask_bits = mask_bits
        self._sets: Dict[int, Dict[int, PDIPEntry]] = {}
        self._clock = 0

        self.inserts = 0
        self.target_inserts = 0
        self.mask_merges = 0
        self.evictions = 0
        self.lookups = 0
        self.hits = 0

    # -- indexing ----------------------------------------------------------
    def _index(self, trigger_line: int) -> "tuple[int, int]":
        set_idx = trigger_line % self.num_sets
        tag = (trigger_line // self.num_sets) & ((1 << TAG_BITS) - 1)
        return set_idx, tag

    # -- operations ----------------------------------------------------------
    def insert(self, trigger_line: int, target_line: int,
               trigger_type: str = "mispredict",
               path: Optional[int] = None) -> None:
        """Associate ``target_line`` (an FEC line) with ``trigger_line``.

        If the target falls within ``mask_bits`` blocks after an existing
        target of the same trigger, it is folded into that target's mask
        (the paper's compaction for basic blocks spanning several lines).
        """
        set_idx, tag = self._index(trigger_line)
        ways = self._sets.setdefault(set_idx, {})
        self._clock += 1
        entry = ways.get(tag)
        if entry is None:
            if len(ways) >= self.assoc:
                victim = min(ways, key=lambda t: ways[t].lru)
                del ways[victim]
                self.evictions += 1
            entry = PDIPEntry(tag=tag, lru=self._clock)
            ways[tag] = entry
            self.inserts += 1
        entry.lru = self._clock
        entry.path = path

        for tgt in entry.targets:
            if tgt.line == target_line:
                return
            delta = target_line - tgt.line
            if 1 <= delta <= self.mask_bits:
                new_mask = tgt.mask | (1 << (delta - 1))
                if new_mask != tgt.mask:
                    tgt.mask = new_mask
                    self.mask_merges += 1
                return
        if len(entry.targets) >= self.targets_per_entry:
            # displace the older target (simple FIFO within the entry)
            entry.targets.pop(0)
        entry.targets.append(
            PDIPTarget(line=target_line, trigger_type=trigger_type))
        self.target_inserts += 1

    def lookup(self, trigger_line: int,
               path: Optional[int] = None) -> List["tuple[int, str]"]:
        """(prefetch line, trigger type) pairs for ``trigger_line``.

        Empty on a miss. The trigger type rides along for the Fig. 16
        issued-prefetch distribution.
        """
        self.lookups += 1
        num_sets = self.num_sets
        ways = self._sets.get(trigger_line % num_sets)
        if not ways:
            return _EMPTY
        entry = ways.get((trigger_line // num_sets) & ((1 << TAG_BITS) - 1))
        if entry is None:
            return _EMPTY
        if (path is not None and entry.path is not None
                and entry.path != path):
            return _EMPTY  # path-augmented variant: TAG matched, path did not
        self._clock += 1
        entry.lru = self._clock
        self.hits += 1
        out: List["tuple[int, str]"] = []
        append = out.append
        for tgt in entry.targets:
            base = tgt.line
            ttype = tgt.trigger_type
            append((base, ttype))
            mask = tgt.mask
            if mask:
                for k in range(MASK_BITS):
                    if mask & (1 << k):
                        append((base + k + 1, ttype))
        return out

    # -- reporting ----------------------------------------------------------
    @property
    def bits_per_way(self) -> int:
        """Storage bits per table way."""
        return (TAG_BITS + 1
                + self.targets_per_entry * (TARGET_BITS + self.mask_bits))

    @property
    def storage_bits(self) -> int:
        """Storage footprint in bits."""
        return self.num_sets * self.assoc * self.bits_per_way

    @property
    def storage_kb(self) -> float:
        """Storage footprint in kilobytes."""
        return self.storage_bits / 8.0 / 1024.0

    def occupancy(self) -> int:
        """Number of live entries."""
        return sum(len(ways) for ways in self._sets.values())

    @classmethod
    def for_budget_kb(cls, budget_kb: float,
                      num_sets: int = PDIP_TABLE_SETS) -> "PDIPTable":
        """Build the largest power-of-two-associativity table within budget.

        The paper sizes tables by associativity at fixed 512 sets:
        11 KB -> 2-way, 22 KB -> 4-way, 44 KB -> 8-way, 87 KB -> 16-way.
        """
        assoc = 1
        while True:
            candidate = cls(assoc=assoc * 2, num_sets=num_sets)
            if candidate.storage_kb > budget_kb:
                break
            assoc *= 2
        return cls(assoc=assoc, num_sets=num_sets)

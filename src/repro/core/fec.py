"""Front-end-critical (FEC) line classification.

A line is FEC when (Section 2.1): (1) it retired an instruction, (2) it
missed the instruction cache, and (3) the miss produced front-end stalls.
The classifier runs at block retirement, consuming the bookkeeping the
FTQ entry accumulated on its way through the pipeline, and emits one
:class:`FECEvent` per qualifying line.

Trigger attribution (Section 4.2): a qualifying line fetched within the
*wake* of a resteer (the FTQ had not yet refilled) is attributed to the
resteer-causing instruction's block; a qualifying line with no nearby
resteer is a long-latency miss attributed to the last retired taken
branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Optional, Set

from repro.branch.bpu import MispredictKind
from repro.frontend.ftq import FTQEntry
from repro.utils import SLOTTED


class TriggerType(Enum):
    """What kind of front-end disruption exposed the miss."""

    MISPREDICT = "mispredict"    # branch/indirect/BTB-target mispredict
    BTB_MISS = "btb_miss"        # taken branch unknown to the IAG
    LAST_TAKEN = "last_taken"    # long-latency miss; no resteer nearby


@dataclass(**SLOTTED)
class FECEvent:
    """One line qualifying as front-end critical at retirement."""

    line: int
    starvation_cycles: int
    backend_starved: bool
    trigger_line: Optional[int]
    trigger_type: TriggerType
    #: the precise resteer kind, when the trigger is a resteer (lets PDIP
    #: skip return-jump triggers, Section 5.2)
    resteer_kind: Optional[MispredictKind] = None

    def is_high_cost(self, threshold: int = 10) -> bool:
        """The paper's high-cost FEC category (>10 starvation cycles)."""
        return self.starvation_cycles > threshold


@dataclass
class _ResteerRecord:
    """Machine-side record of the most recent resteer (imported here only
    for typing; the simulator owns the instances)."""

    rid: int
    kind: MispredictKind
    trigger_line: int


class FECClassifier:
    """Retire-time FEC qualification and statistics."""

    def __init__(self, wake_window: int = 24, high_cost_threshold: int = 10):
        #: how many FTQ entries after a resteer count as its "wake"
        #: (defaults to the FTQ depth: beyond that the queue has refilled)
        self.wake_window = wake_window
        self.high_cost_threshold = high_cost_threshold

        self.fec_lines: Set[int] = set()
        self.fec_events = 0
        self.high_cost_events = 0
        self.high_cost_backend_events = 0
        self.fec_starvation_cycles = 0
        self.retired_line_accesses = 0
        self.retired_lines_seen: Set[int] = set()

    def on_retire(self, entry: FTQEntry,
                  resteer_kind: Optional[MispredictKind],
                  resteer_trigger_line: Optional[int],
                  last_taken_line: Optional[int]) -> List[FECEvent]:
        """Classify a retiring block's lines.

        ``resteer_kind``/``resteer_trigger_line`` describe the resteer the
        entry was enqueued behind (already matched by id by the caller);
        ``last_taken_line`` is the block address of the last retired taken
        branch (the long-latency trigger).
        """
        self.retired_line_accesses += len(entry.lines)
        self.retired_lines_seen.update(entry.lines)
        if not entry.incurred_miss or entry.starvation_cycles <= 0:
            return []

        in_wake = (entry.entries_since_resteer <= self.wake_window
                   and resteer_trigger_line is not None)
        if in_wake:
            if resteer_kind is MispredictKind.BTB_MISS:
                ttype = TriggerType.BTB_MISS
            else:
                ttype = TriggerType.MISPREDICT
            trigger = resteer_trigger_line
        else:
            ttype = TriggerType.LAST_TAKEN
            trigger = last_taken_line

        events = []
        missed = list(dict.fromkeys(entry.missed_lines + entry.pending_lines))
        for line in missed:
            event = FECEvent(
                line=line,
                starvation_cycles=entry.starvation_cycles,
                backend_starved=entry.backend_starved,
                trigger_line=trigger,
                trigger_type=ttype,
                resteer_kind=resteer_kind if in_wake else None,
            )
            events.append(event)
            self.fec_lines.add(line)
            self.fec_events += 1
            self.fec_starvation_cycles += entry.starvation_cycles
            if event.is_high_cost(self.high_cost_threshold):
                self.high_cost_events += 1
                if event.backend_starved:
                    self.high_cost_backend_events += 1
        return events

    # -- reporting ----------------------------------------------------------
    def fec_line_fraction(self) -> float:
        """Distinct FEC lines / distinct retired lines (Fig. 4, first bar)."""
        if not self.retired_lines_seen:
            return 0.0
        return len(self.fec_lines) / len(self.retired_lines_seen)

"""PDIP: the paper's primary contribution.

Three pieces:

* :class:`~repro.core.fec.FECClassifier` — retire-time qualification of
  front-end-critical (FEC) lines: the line retired an instruction, missed
  the L1-I, and exposed decode to starvation (Section 2.1), with the
  high-cost (>10 starvation cycles) and back-end-stall annotations the
  PDIP candidate filter uses (Section 5.3).
* :class:`~repro.core.pdip_table.PDIPTable` — the 512-set associative
  trigger→targets table with two targets per entry and a 4-bit
  following-blocks mask (Sections 5.1, 5.4).
* :class:`~repro.core.pdip.PDIPController` — trigger selection
  (mispredicting branch block / last retired taken branch), probabilistic
  insertion (0.25), FTQ-hooked lookup, and prefetch issue through the PQ.
"""

from repro.core.fec import FECClassifier, FECEvent, TriggerType
from repro.core.pdip_table import PDIPTable, PDIP_TABLE_SETS
from repro.core.pdip import PDIPConfig, PDIPController

__all__ = [
    "FECClassifier",
    "FECEvent",
    "TriggerType",
    "PDIPTable",
    "PDIP_TABLE_SETS",
    "PDIPConfig",
    "PDIPController",
]

"""PDIP controller: candidate filtering, trigger association, prefetch issue.

Wiring (Figure 7): the BPU/IAG notifies the controller of every new FTQ
entry; the controller indexes the PDIP table with the entry's block
address(es) and pushes any associated targets into the prefetch queue.
At retirement, qualifying FEC events (high-cost, back-end-stalling) are
inserted into the table with probability ``insert_prob`` (Section 5.3:
0.25 performed best between 1 and 0.03).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.branch.bpu import MispredictKind
from repro.core.fec import FECEvent, TriggerType
from repro.core.pdip_table import PDIPTable
from repro.frontend.ftq import FTQEntry
from repro.frontend.prefetch_queue import PrefetchQueue
from repro.prefetchers.base import Prefetcher
from repro.telemetry.handle import NULL_RECORDER
from repro.utils import derive_rng


@dataclass
class PDIPConfig:
    """PDIP tuning knobs (defaults are the paper's chosen values)."""

    assoc: int = 8                       # 512 sets x 8 ways = 43.5 KB
    num_sets: int = 512
    targets_per_entry: int = 2           # paper: 2 targets + 4-bit masks
    mask_bits: int = 4
    #: Probabilistic insertion. The paper's chosen value is 0.25, tuned
    #: for 100M-instruction runs; at this reproduction's ~400x shorter
    #: budgets the table must converge correspondingly faster, so the
    #: default is 1.0 (the ablation bench sweeps the knob).
    insert_prob: float = 1.0
    #: Starvation cycles for the "high cost" filter (paper: 10; scaled
    #: to 5 for the reproduction's shorter exposed latencies).
    high_cost_threshold: int = 5
    require_backend_stall: bool = True   # only insert if the back end drained
    require_high_cost: bool = True       # only insert high-cost FEC lines
    ignore_return_triggers: bool = True  # Section 5.2: returns pollute
    #: Section 5.2's evaluated-and-dropped variant: qualify lookups with a
    #: hash of the last three branches leading to the trigger. The paper
    #: found the accuracy gain did not justify the complexity; exposed
    #: here so the ablation can reproduce that conclusion.
    use_path_info: bool = False
    path_branches: int = 3


class PDIPController(Prefetcher):
    """Priority Directed Instruction Prefetcher."""

    name = "pdip"

    def __init__(self, pq: PrefetchQueue, config: Optional[PDIPConfig] = None,
                 seed: int = 0):
        self.pq = pq
        self.config = config if config is not None else PDIPConfig()
        self.table = PDIPTable(assoc=self.config.assoc,
                               num_sets=self.config.num_sets,
                               targets_per_entry=self.config.targets_per_entry,
                               mask_bits=self.config.mask_bits)
        self._rng = derive_rng(seed, "pdip")
        #: hot-path copy (the config is fixed after construction)
        self._use_path = self.config.use_path_info

        self._path_history: list = []  # last branch block lines (FTQ order)
        #: telemetry handle (no-op unless a TelemetrySession attaches)
        self.tel = NULL_RECORDER
        self.candidate_events = 0
        self.qualified_events = 0
        self.inserted_events = 0
        self.prefetch_requests = 0
        self.triggers_mispredict = 0
        self.triggers_last_taken = 0

    # ------------------------------------------------------------------
    # FTQ-side: trigger lookup
    # ------------------------------------------------------------------
    def on_ftq_enqueue(self, entry: FTQEntry, cycle: int) -> None:
        """Index the PDIP table with the entry's block address(es).

        The table is accessed once per new FTQ entry (Section 4.2); an
        entry spanning a line boundary indexes with each of its lines so a
        trigger stored via the branch's block address is still found.
        """
        path = self._current_path() if self._use_path else None
        lookup = self.table.lookup
        request = self.pq.request
        tel = self.tel
        for line in entry.lines:
            for target, ttype in lookup(line, path=path):
                self.prefetch_requests += 1
                if ttype == "last_taken":
                    self.triggers_last_taken += 1
                else:
                    self.triggers_mispredict += 1
                if tel.enabled:
                    tel.emit("pdip_hit", cycle, trigger=line,
                             target=target, ttype=ttype)
                request(target, cycle)

    # ------------------------------------------------------------------
    # retire-side: candidate insertion
    # ------------------------------------------------------------------
    def on_fec_events(self, events: List[FECEvent], cycle: int) -> None:
        """Retire-time FEC qualifications for a block's lines."""
        cfg = self.config
        for event in events:
            self.candidate_events += 1
            if event.trigger_line is None:
                continue
            if cfg.require_high_cost and not event.is_high_cost(
                    cfg.high_cost_threshold):
                continue
            if cfg.require_backend_stall and not event.backend_starved:
                continue
            if (cfg.ignore_return_triggers
                    and event.resteer_kind is MispredictKind.RETURN_MISPREDICT):
                continue
            self.qualified_events += 1
            if self._rng.random() >= cfg.insert_prob:
                continue
            ttype = ("last_taken"
                     if event.trigger_type is TriggerType.LAST_TAKEN
                     else "mispredict")
            path = (self._current_path() if self.config.use_path_info
                    else None)
            self.table.insert(event.trigger_line, event.line, ttype,
                              path=path)
            self.inserted_events += 1
            tel = self.tel
            if tel.enabled:
                tel.emit("pdip_insert", cycle, trigger=event.trigger_line,
                         line=event.line, ttype=ttype)

    # ------------------------------------------------------------------
    # path signature (Section 5.2 variant)
    # ------------------------------------------------------------------
    def observe_branch(self, branch_block_line: int) -> None:
        """Feed the rolling path history (called per taken FTQ branch)."""
        self._path_history.append(branch_block_line)
        if len(self._path_history) > self.config.path_branches:
            self._path_history.pop(0)

    def _current_path(self) -> int:
        h = 2166136261
        for line in self._path_history:
            h = ((h ^ line) * 16777619) & 0xFFFFFFFF
        return h

    # ------------------------------------------------------------------
    @property
    def storage_kb(self) -> float:
        """Storage footprint in kilobytes."""
        return self.table.storage_kb

    def trigger_distribution(self) -> "tuple[float, float]":
        """(mispredict fraction, last-taken fraction) of issued prefetches
        (Fig. 16)."""
        total = self.triggers_mispredict + self.triggers_last_taken
        if total == 0:
            return 0.0, 0.0
        return (self.triggers_mispredict / total,
                self.triggers_last_taken / total)

"""Terminal-friendly chart rendering for the experiment outputs.

The paper's artifacts are figures; the benches print tables. This module
adds the figure part: grouped horizontal bar charts and simple scatter
lines rendered in plain ASCII, so ``python -m repro figure fig10``
produces something a reader can *see* without matplotlib (which the
reproduction deliberately avoids as a dependency).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: bar glyph per series, cycled
_GLYPHS = "#*+o%@=~"


def hbar_chart(series: Mapping[str, Mapping[str, float]],
               title: str = "", width: int = 48,
               unit: str = "%", zero_origin: bool = True) -> str:
    """Grouped horizontal bar chart.

    ``series`` maps series label -> {category: value}; categories are the
    outer grouping (one block per category, one bar per series), which
    matches the per-benchmark grouped bars of the paper's figures.
    """
    categories: List[str] = []
    for values in series.values():
        for cat in values:
            if cat not in categories:
                categories.append(cat)
    all_values = [v for values in series.values() for v in values.values()]
    if not all_values:
        return title
    vmax = max(all_values)
    vmin = min(all_values)
    lo = min(0.0, vmin) if zero_origin else vmin
    hi = max(0.0, vmax) if zero_origin else vmax
    span = (hi - lo) or 1.0

    cat_width = max(len(c) for c in categories)
    label_width = max(len(s) for s in series)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for cat in categories:
        lines.append(cat)
        for i, (label, values) in enumerate(series.items()):
            if cat not in values:
                continue
            value = values[cat]
            filled = int(round((value - lo) / span * width))
            bar = _GLYPHS[i % len(_GLYPHS)] * max(0, filled)
            lines.append(f"  {label.ljust(label_width)} |{bar.ljust(width)}|"
                         f" {value:+.2f}{unit}")
    legend = "  ".join(f"{_GLYPHS[i % len(_GLYPHS)]}={label}"
                       for i, label in enumerate(series))
    lines.append("")
    lines.append("legend: " + legend)
    return "\n".join(lines)


def scatter_chart(points: Mapping[str, Sequence[Tuple[float, float]]],
                  title: str = "", width: int = 60, height: int = 16,
                  xlabel: str = "", ylabel: str = "") -> str:
    """ASCII scatter plot with one glyph per series (Figure 15 style)."""
    all_pts = [p for pts in points.values() for p in pts]
    if not all_pts:
        return title
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for i, (label, pts) in enumerate(points.items()):
        glyph = _GLYPHS[i % len(_GLYPHS)]
        for x, y in pts:
            col = int((x - xmin) / xspan * (width - 1))
            row = height - 1 - int((y - ymin) / yspan * (height - 1))
            grid[row][col] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for r, row in enumerate(grid):
        y_val = ymax - r * yspan / (height - 1)
        prefix = f"{y_val:8.2f} |" if r % 4 == 0 else " " * 9 + "|"
        lines.append(prefix + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"{xmin:<.0f}".ljust(width - 8)
                 + f"{xmax:>.0f}")
    if xlabel or ylabel:
        lines.append(f"x: {xlabel}   y: {ylabel}")
    legend = "  ".join(f"{_GLYPHS[i % len(_GLYPHS)]}={label}"
                       for i, label in enumerate(points))
    lines.append("legend: " + legend)
    return "\n".join(lines)


def stacked_pct_bar(parts: Mapping[str, float], title: str = "",
                    width: int = 60) -> str:
    """One stacked 100% bar (Figure 1 style top-down breakdown)."""
    total = sum(parts.values()) or 1.0
    lines: List[str] = []
    if title:
        lines.append(title)
    bar = ""
    for i, (label, value) in enumerate(parts.items()):
        chars = int(round(value / total * width))
        bar += _GLYPHS[i % len(_GLYPHS)] * chars
    lines.append("|" + bar[:width].ljust(width) + "|")
    for i, (label, value) in enumerate(parts.items()):
        lines.append(f"  {_GLYPHS[i % len(_GLYPHS)]} {label}: "
                     f"{value / total:.1%}")
    return "\n".join(lines)

"""Dashboard state assembly: server internals → one JSON document.

Pure functions over plain dicts — the dashboard unit never imports the
service (the service imports *us*), so these helpers are testable
without a running server and the layering DAG stays acyclic:
``service → dash → telemetry/utils``.

The metrics block reuses the PR-4 :class:`MetricsRegistry` so the
numbers the dashboard shows are the same shapes ``repro trace`` /
telemetry exports use, not a parallel ad-hoc scheme.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.telemetry.registry import MetricsRegistry

__all__ = ["build_state", "service_metrics", "sweep_rows"]


def service_metrics(counters: Dict[str, int],
                    gauges: Dict[str, float]) -> Dict[str, Any]:
    """Server counters/gauges as a telemetry-registry snapshot."""
    registry = MetricsRegistry()
    for name in sorted(counters):
        registry.counter("service.%s" % name).inc(int(counters[name]))
    for name in sorted(gauges):
        registry.gauge("service.%s" % name).set(float(gauges[name]))
    return registry.snapshot()


def sweep_rows(sweeps: Dict[str, Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Dashboard-ordered sweep snapshots: running first, then newest."""
    rows = list(sweeps.values())
    rows.sort(key=lambda row: (row.get("state") == "done"
                               or row.get("state") == "failed",
                               -float(row.get("created") or 0.0)))
    return rows


def build_state(server: Dict[str, Any], counters: Dict[str, int],
                gauges: Dict[str, float],
                sweeps: Dict[str, Dict[str, Any]],
                jobs: List[Dict[str, Any]],
                workers: Optional[List[Dict[str, Any]]] = None,
                store: Optional[Dict[str, Any]] = None,
                recent_jobs: int = 20) -> Dict[str, Any]:
    """The ``GET /dash/state`` payload: everything the page renders.

    ``jobs`` is the full summary list; only queued/running plus the
    ``recent_jobs`` most recently finished ride along, so the payload
    stays bounded regardless of server history.
    """
    active = [j for j in jobs if j.get("state") in ("queued", "running")]
    finished = [j for j in jobs
                if j.get("state") not in ("queued", "running")]
    finished.sort(key=lambda j: -float(j.get("finished") or 0.0))
    return {
        "generated": time.time(),
        "server": server,
        "counters": dict(counters),
        "metrics": service_metrics(counters, gauges),
        "sweeps": sweep_rows(sweeps),
        "jobs": {
            "queued": sum(1 for j in active if j["state"] == "queued"),
            "running": sum(1 for j in active if j["state"] == "running"),
            "total": len(jobs),
            "active": active,
            "recent": finished[:recent_jobs],
        },
        "workers": workers,
        "store": store,
    }

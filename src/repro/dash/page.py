"""The dashboard page: one static, stdlib-only HTML document.

Served verbatim from ``GET /dash`` by the simulation server and the
coordinator; all live data arrives by polling ``GET /dash/state`` from
inline JavaScript, so the page itself is a constant string — no
templating, no assets, no third-party scripts.

Visual language (kept deliberately boring and accessible):

* text always wears ink tokens (primary/secondary/muted), never a data
  color; light and dark schemes via CSS custom properties;
* sweep heatmap cells encode *completion fraction* on a single-hue
  sequential blue ramp (light→dark = 0→100%), with the numeric
  ``done/total`` printed in every cell so color never carries the value
  alone;
* failures use the reserved status red **plus** an ``✕n`` text label —
  state is never color-only.
"""

from __future__ import annotations

__all__ = ["render_page"]

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro dash</title>
<style>
:root {
  color-scheme: light;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --border: rgba(11,11,11,0.10);
  --seq-0: #f9f9f7; --seq-1: #cde2fb; --seq-2: #9ec5f4;
  --seq-3: #6da7ec; --seq-4: #3987e5; --seq-5: #256abf;
  --ink-on-deep: #ffffff;
  --ok: #0ca30c; --bad: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --border: rgba(255,255,255,0.10);
    --seq-0: #242423; --seq-1: #104281; --seq-2: #184f95;
    --seq-3: #1c5cab; --seq-4: #2a78d6; --seq-5: #3987e5;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 18px; margin: 0; font-weight: 650; }
h2 { font-size: 13px; margin: 28px 0 8px; color: var(--ink-2);
     text-transform: uppercase; letter-spacing: .06em; font-weight: 600; }
.sub { color: var(--muted); font-size: 12px; margin-top: 2px; }
.badge { display: inline-block; padding: 2px 8px; border-radius: 10px;
         font-size: 12px; border: 1px solid var(--border);
         color: var(--ink-2); vertical-align: 2px; margin-left: 8px; }
.badge.ok { color: var(--ok); border-color: var(--ok); }
.badge.bad { color: var(--bad); border-color: var(--bad); }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-top: 16px; }
.tile { background: var(--surface); border: 1px solid var(--border);
        border-radius: 8px; padding: 10px 16px; min-width: 110px; }
.tile .v { font-size: 22px; font-weight: 650; }
.tile .k { font-size: 11px; color: var(--muted); }
table { border-collapse: collapse; background: var(--surface);
        border: 1px solid var(--border); border-radius: 8px;
        font-size: 13px; }
th, td { padding: 5px 10px; text-align: left; border-top: 1px solid var(--grid);
         font-variant-numeric: tabular-nums; }
thead th { border-top: none; color: var(--muted); font-size: 11px;
           font-weight: 600; }
.sweep { background: var(--surface); border: 1px solid var(--border);
         border-radius: 8px; padding: 14px 16px; margin-bottom: 14px; }
.bar { height: 6px; border-radius: 3px; background: var(--grid);
       overflow: hidden; margin: 8px 0 10px; }
.bar > i { display: block; height: 100%; background: var(--seq-4); }
.hm { border: none; background: none; }
.hm td, .hm th { border: none; padding: 2px; }
.hm th { color: var(--muted); font-weight: 500; font-size: 11px; }
.hm th.row { text-align: right; padding-right: 8px; }
.cell { min-width: 52px; border-radius: 4px; padding: 3px 6px;
        text-align: center; font-size: 11px; color: var(--ink-2);
        border: 2px solid var(--surface); }
.cell.q3, .cell.q4, .cell.q5 { color: var(--ink-on-deep); }
.cell.q0 { background: var(--seq-0); } .cell.q1 { background: var(--seq-1); }
.cell.q2 { background: var(--seq-2); } .cell.q3 { background: var(--seq-3); }
.cell.q4 { background: var(--seq-4); } .cell.q5 { background: var(--seq-5); }
.cell.failed { background: var(--surface); border-color: var(--bad);
               color: var(--bad); font-weight: 600; }
#err { color: var(--bad); font-size: 12px; display: none; margin-top: 8px; }
</style>
</head>
<body>
<h1>repro dash <span id="mode" class="badge">connecting…</span></h1>
<div class="sub" id="meta">waiting for /dash/state</div>
<div id="err"></div>
<div class="tiles" id="tiles"></div>
<div id="sweeps-h"><h2>Sweeps</h2><div id="sweeps"></div></div>
<div id="workers-h" style="display:none"><h2>Workers</h2>
  <table id="workers"></table></div>
<h2>Jobs</h2><table id="jobs"></table>
<h2>Metrics</h2><table id="metrics"></table>
<script>
"use strict";
function esc(s) {
  return String(s).replace(/[&<>"]/g,
    c => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));
}
function tile(k, v) {
  return '<div class="tile"><div class="v">' + esc(v) +
         '</div><div class="k">' + esc(k) + "</div></div>";
}
function rows(el, head, body) {
  el.innerHTML = "<thead><tr>" +
    head.map(h => "<th>" + esc(h) + "</th>").join("") + "</tr></thead>" +
    "<tbody>" + body.map(r => "<tr>" +
      r.map(c => "<td>" + c + "</td>").join("") + "</tr>").join("") +
    "</tbody>";
}
function shade(f) { return "q" + Math.min(5, Math.max(0, Math.ceil(f * 5))); }
function heatmap(sw) {
  const grid = sw.grid || {}, benches = sw.benchmarks || [],
        pols = sw.policies || [];
  if (!benches.length || !pols.length) return "";
  let html = '<table class="hm"><tr><th></th>' +
    pols.map(p => "<th>" + esc(p) + "</th>").join("") + "</tr>";
  for (const b of benches) {
    html += '<tr><th class="row">' + esc(b) + "</th>";
    for (const p of pols) {
      const c = grid[b + "|" + p] || {done: 0, failed: 0, total: 0};
      const total = c.total || 0, frac = total ? c.done / total : 0;
      let cls = shade(frac), label = c.done + "/" + total;
      let title = b + " × " + p + ": " + label + " done";
      if (c.failed) {
        cls = "failed"; label = "\\u2715" + c.failed;
        title += ", " + c.failed + " failed";
      }
      html += '<td><div class="cell ' + cls + '" title="' + esc(title) +
              '">' + esc(label) + "</div></td>";
    }
    html += "</tr>";
  }
  return html + "</table>";
}
function sweepCard(sw) {
  const counts = sw.counts || {}, total = sw.total || 0;
  const done = (counts.store || 0) + (counts.cache || 0) +
               (counts.executed || 0);
  const failed = counts.failed || 0;
  const pct = total ? Math.round(100 * (done + failed) / total) : 0;
  const badge = sw.state === "failed" ? "bad" : (sw.state === "done" ?
                "ok" : "");
  return '<div class="sweep"><b>' + esc(sw.name) + '</b>' +
    '<span class="badge ' + badge + '">' + esc(sw.state) + "</span>" +
    '<span class="sub"> &nbsp;' + done + "/" + total + " done" +
    (failed ? ", " + failed + " failed" : "") +
    " · " + (counts.store || 0) + " store · " +
    (counts.executed || 0) + " executed · plan " +
    esc((sw.plan_digest || "").slice(0, 12)) + "</span>" +
    '<div class="bar"><i style="width:' + pct + '%"></i></div>' +
    heatmap(sw) + "</div>";
}
function render(s) {
  const server = s.server || {};
  document.getElementById("mode").textContent =
    (server.mode || "server") + " · " + (server.state || "?");
  document.getElementById("mode").className =
    "badge " + (server.state === "running" ? "ok" : "");
  document.getElementById("meta").textContent =
    "generated " + new Date(s.generated * 1000).toLocaleTimeString() +
    (s.store ? " · store " + s.store.rows + " rows / " +
               s.store.hits + " hits" : " · no store");
  const c = s.counters || {}, jobs = s.jobs || {};
  let tiles = tile("queued", jobs.queued || 0) +
              tile("running", jobs.running || 0) +
              tile("executed", c.executed || 0) +
              tile("store hits", c.store_hits || 0);
  if (s.workers) tiles += tile("workers", s.workers.length);
  document.getElementById("tiles").innerHTML = tiles;
  document.getElementById("sweeps").innerHTML =
    (s.sweeps || []).map(sweepCard).join("") ||
    '<div class="sub">no sweeps registered</div>';
  const wh = document.getElementById("workers-h");
  if (s.workers) {
    wh.style.display = "";
    rows(document.getElementById("workers"),
      ["worker", "state", "slots", "in flight", "executed", "stolen"],
      s.workers.map(w => [esc(w.id), esc(w.state), esc(w.slots),
        esc((w.in_flight || []).length),
        esc(w.executed != null ? w.executed : "-"),
        esc(w.stolen != null ? w.stolen : "-")]));
  } else wh.style.display = "none";
  const act = (jobs.active || []), rec = (jobs.recent || []);
  rows(document.getElementById("jobs"),
    ["id", "state", "benchmark", "policy", "seed", "source"],
    act.concat(rec).slice(0, 30).map(j => [esc(j.id), esc(j.state),
      esc(j.benchmark || "?"), esc(j.policy || "?"),
      esc(j.seed != null ? j.seed : "-"), esc(j.source || "")]));
  const m = s.metrics || {};
  rows(document.getElementById("metrics"), ["metric", "value"],
    Object.keys(m).sort().map(k => [esc(k), esc(JSON.stringify(m[k]))]));
}
async function tick() {
  try {
    const res = await fetch("/dash/state", {cache: "no-store"});
    if (!res.ok) throw new Error("HTTP " + res.status);
    render(await res.json());
    document.getElementById("err").style.display = "none";
  } catch (e) {
    const el = document.getElementById("err");
    el.textContent = "update failed: " + e;
    el.style.display = "block";
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
"""


def render_page() -> str:
    """The dashboard HTML document (constant; data arrives via JS)."""
    return _PAGE

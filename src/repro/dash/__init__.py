"""Live dashboard for the simulation service (stdlib-only).

Presentation layer only: :mod:`repro.dash.page` is the static HTML
document the server returns from ``GET /dash``, and
:mod:`repro.dash.state` assembles the ``GET /dash/state`` JSON the page
polls. The dependency points one way — the service imports this unit,
never the reverse — which the import-layering lint rule enforces.
"""

from repro.dash.page import render_page
from repro.dash.state import build_state, service_metrics, sweep_rows

__all__ = ["build_state", "render_page", "service_metrics", "sweep_rows"]

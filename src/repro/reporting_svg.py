"""SVG figure rendering — dependency-free vector charts.

The ASCII charts in :mod:`repro.reporting` are for terminals; this module
writes the same figures as standalone SVG files (hand-assembled markup,
no matplotlib) so `benchmarks/output/` contains paper-style artifacts a
browser can display. Supported shapes cover everything the paper's
evaluation needs: grouped vertical bars (Figs. 3/10/11/12/13/16), line
series (Fig. 14), and scatter (Fig. 15).
"""

from __future__ import annotations

import html
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: categorical palette (color-blind-safe-ish, no external deps)
PALETTE = ("#4878d0", "#ee854a", "#6acc64", "#d65f5f",
           "#956cb4", "#8c613c", "#dc7ec0", "#797979")

_FONT = 'font-family="Helvetica,Arial,sans-serif"'


def _esc(text: str) -> str:
    return html.escape(str(text), quote=True)


def _axis_ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """Round-ish tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(1, n - 1)
    mag = 10 ** int(f"{raw:e}".split("e")[1])
    step = max(mag, round(raw / mag) * mag)
    first = int(lo / step) * step
    ticks = []
    t = first
    while t <= hi + step * 0.5:
        if t >= lo - step * 0.5:
            ticks.append(round(t, 10))
        t += step
    return ticks or [lo, hi]


class SVGCanvas:
    """Minimal SVG assembly helper."""

    def __init__(self, width: int, height: int):
        self.width = width
        self.height = height
        self._parts: List[str] = []

    def rect(self, x, y, w, h, fill, opacity=1.0) -> None:
        """Add a rectangle."""
        self._parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
            f'height="{h:.1f}" fill="{fill}" opacity="{opacity}"/>')

    def line(self, x1, y1, x2, y2, stroke="#999", width=1.0) -> None:
        """Add a line segment."""
        self._parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
            f'y2="{y2:.1f}" stroke="{stroke}" stroke-width="{width}"/>')

    def circle(self, cx, cy, r, fill) -> None:
        """Add a circle marker."""
        self._parts.append(
            f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="{r:.1f}" '
            f'fill="{fill}"/>')

    def polyline(self, points: Sequence[Tuple[float, float]],
                 stroke: str, width: float = 2.0) -> None:
        """Add an unfilled polyline through the points."""
        pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self._parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"/>')

    def text(self, x, y, content, size=11, anchor="start", fill="#222",
             rotate: Optional[float] = None) -> None:
        """Add a text label."""
        transform = (f' transform="rotate({rotate} {x:.1f} {y:.1f})"'
                     if rotate is not None else "")
        self._parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" {_FONT} '
            f'text-anchor="{anchor}" fill="{fill}"{transform}>'
            f'{_esc(content)}</text>')

    def render(self) -> str:
        """Serialize the full SVG document."""
        body = "\n".join(self._parts)
        return (f'<svg xmlns="http://www.w3.org/2000/svg" '
                f'width="{self.width}" height="{self.height}" '
                f'viewBox="0 0 {self.width} {self.height}">\n'
                f'<rect width="100%" height="100%" fill="white"/>\n'
                f"{body}\n</svg>\n")


def grouped_bar_svg(series: Mapping[str, Mapping[str, float]],
                    title: str = "", ylabel: str = "% speedup",
                    width: int = 960, height: int = 360) -> str:
    """Grouped vertical bars: one group per category, one bar per series.

    Matches the paper's per-benchmark grouped-bar figures.
    """
    categories: List[str] = []
    for values in series.values():
        for cat in values:
            if cat not in categories:
                categories.append(cat)
    if not categories:
        return SVGCanvas(width, height).render()

    all_vals = [v for values in series.values() for v in values.values()]
    lo = min(0.0, min(all_vals))
    hi = max(0.0, max(all_vals))
    ticks = _axis_ticks(lo, hi)
    lo, hi = min(ticks[0], lo), max(ticks[-1], hi)
    span = (hi - lo) or 1.0

    left, right, top, bottom = 56, 12, 34, 86
    plot_w = width - left - right
    plot_h = height - top - bottom
    y_of = lambda v: top + plot_h * (1 - (v - lo) / span)

    svg = SVGCanvas(width, height)
    if title:
        svg.text(width / 2, 18, title, size=14, anchor="middle")
    # gridlines + y labels
    for t in ticks:
        y = y_of(t)
        svg.line(left, y, width - right, y, stroke="#e5e5e5")
        svg.text(left - 6, y + 4, f"{t:g}", size=10, anchor="end",
                 fill="#555")
    svg.text(14, top + plot_h / 2, ylabel, size=11, anchor="middle",
             rotate=-90)

    group_w = plot_w / len(categories)
    bar_w = max(2.0, group_w * 0.8 / max(1, len(series)))
    for ci, cat in enumerate(categories):
        gx = left + ci * group_w
        for si, (label, values) in enumerate(series.items()):
            if cat not in values:
                continue
            v = values[cat]
            x = gx + group_w * 0.1 + si * bar_w
            y0, y1 = y_of(max(0.0, v)), y_of(min(0.0, v))
            svg.rect(x, y0, bar_w * 0.92, max(0.5, y1 - y0),
                     PALETTE[si % len(PALETTE)])
        svg.text(gx + group_w / 2, height - bottom + 14, cat, size=10,
                 anchor="end", rotate=-35)
    svg.line(left, y_of(0), width - right, y_of(0), stroke="#333",
             width=1.2)
    # legend
    lx = left
    ly = height - 18
    for si, label in enumerate(series):
        svg.rect(lx, ly - 9, 10, 10, PALETTE[si % len(PALETTE)])
        svg.text(lx + 14, ly, label, size=10)
        lx += 18 + 7 * len(label)
    return svg.render()


def line_svg(series: Mapping[str, Sequence[Tuple[float, float]]],
             title: str = "", xlabel: str = "", ylabel: str = "",
             width: int = 720, height: int = 400,
             markers: bool = True) -> str:
    """Line/scatter chart: one polyline (and markers) per series."""
    all_pts = [p for pts in series.values() for p in pts]
    if not all_pts:
        return SVGCanvas(width, height).render()
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    xt = _axis_ticks(min(xs), max(xs))
    yt = _axis_ticks(min(0.0, min(ys)), max(ys))
    xlo, xhi = min(xt[0], min(xs)), max(xt[-1], max(xs))
    ylo, yhi = min(yt[0], min(ys)), max(yt[-1], max(ys))
    xspan = (xhi - xlo) or 1.0
    yspan = (yhi - ylo) or 1.0

    left, right, top, bottom = 60, 16, 34, 64
    plot_w = width - left - right
    plot_h = height - top - bottom
    x_of = lambda v: left + plot_w * (v - xlo) / xspan
    y_of = lambda v: top + plot_h * (1 - (v - ylo) / yspan)

    svg = SVGCanvas(width, height)
    if title:
        svg.text(width / 2, 18, title, size=14, anchor="middle")
    for t in yt:
        svg.line(left, y_of(t), width - right, y_of(t), stroke="#e5e5e5")
        svg.text(left - 6, y_of(t) + 4, f"{t:g}", size=10, anchor="end",
                 fill="#555")
    for t in xt:
        svg.line(x_of(t), top, x_of(t), height - bottom, stroke="#f0f0f0")
        svg.text(x_of(t), height - bottom + 16, f"{t:g}", size=10,
                 anchor="middle", fill="#555")
    svg.text(width / 2, height - 34, xlabel, size=11, anchor="middle")
    svg.text(16, top + plot_h / 2, ylabel, size=11, anchor="middle",
             rotate=-90)

    for si, (label, pts) in enumerate(series.items()):
        color = PALETTE[si % len(PALETTE)]
        ordered = sorted(pts)
        svg.polyline([(x_of(x), y_of(y)) for x, y in ordered], color)
        if markers:
            for x, y in ordered:
                svg.circle(x_of(x), y_of(y), 3.2, color)
    lx = left
    ly = height - 10
    for si, label in enumerate(series):
        svg.rect(lx, ly - 9, 10, 10, PALETTE[si % len(PALETTE)])
        svg.text(lx + 14, ly, label, size=10)
        lx += 18 + 7 * len(label)
    return svg.render()

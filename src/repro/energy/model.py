"""Core-relative PDIP energy and area overheads (Table 5).

A Golden-Cove-class core is taken as the reference budget (McPAT-scale
numbers for a ~7 mm^2, ~4 W performance core). Each PDIP configuration
adds its table SRAM (area + leakage) and the access energy of one table
lookup per FTQ entry plus one insertion per qualifying FEC event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.core.pdip_table import PDIPTable, TAG_BITS
from repro.energy.sram import SRAMModel

#: reference core area (mm^2) and average power (W), Golden-Cove-class
CORE_AREA_MM2 = 7.0
CORE_POWER_W = 4.0

#: activity assumptions (events per cycle at ~2 IPC, ~6 instr/block)
TABLE_LOOKUPS_PER_CYCLE = 0.6
TABLE_INSERTS_PER_CYCLE = 0.01

#: core clock, GHz (converts pJ/cycle into watts)
CLOCK_GHZ = 3.2


@dataclass
class PDIPOverhead:
    """Relative overhead of one PDIP table configuration."""

    label: str
    table_kb: float
    area_mm2: float
    energy_pct: float
    area_pct: float


class CoreEnergyModel:
    """Prices PDIP structures against the reference core."""

    def __init__(self, core_area_mm2: float = CORE_AREA_MM2,
                 core_power_w: float = CORE_POWER_W,
                 clock_ghz: float = CLOCK_GHZ):
        self.core_area_mm2 = core_area_mm2
        self.core_power_w = core_power_w
        self.clock_ghz = clock_ghz

    def pdip_overhead(self, assoc: int, label: str = "") -> PDIPOverhead:
        """Overhead of a 512-set PDIP table with ``assoc`` ways."""
        table = PDIPTable(assoc=assoc)
        payload = table.bits_per_way - TAG_BITS
        sram = SRAMModel("pdip_table", num_sets=table.num_sets, assoc=assoc,
                         payload_bits_per_way=payload, tag_bits=TAG_BITS)
        est = sram.estimate()
        # dynamic power: lookups dominate; inserts are rare
        pj_per_cycle = (TABLE_LOOKUPS_PER_CYCLE * est.read_energy_pj
                        + TABLE_INSERTS_PER_CYCLE * est.read_energy_pj)
        dyn_mw = pj_per_cycle * self.clock_ghz  # pJ/cycle * GHz = mW
        total_w = (dyn_mw + est.leakage_mw) / 1000.0
        return PDIPOverhead(
            label=label or f"PDIP({int(round(table.storage_kb))})",
            table_kb=table.storage_kb,
            area_mm2=est.area_mm2,
            energy_pct=100.0 * total_w / self.core_power_w,
            area_pct=100.0 * est.area_mm2 / self.core_area_mm2,
        )


def pdip_overheads(assocs: Iterable[int] = (2, 4, 8, 16)) -> List[PDIPOverhead]:
    """Table 5: overheads for the 11/22/44/87 KB configurations."""
    model = CoreEnergyModel()
    labels = {2: "PDIP(11)", 4: "PDIP(22)", 8: "PDIP(44)", 16: "PDIP(87)"}
    return [model.pdip_overhead(a, labels.get(a, "")) for a in assocs]

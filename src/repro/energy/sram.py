"""First-order SRAM area / energy / leakage model.

Constants approximate a 22 nm bulk process (the node McPAT's shipped
configs are best calibrated at). The model is deliberately simple —
area grows linearly in bits with a banking overhead that grows with
associativity (wider tag match), dynamic energy grows with the bits read
per access, leakage with total bits — because Table 5 only needs
*relative* overheads against a fixed core budget.
"""

from __future__ import annotations

from dataclasses import dataclass

#: SRAM cell area, mm^2 per bit (≈0.1 um^2/bit cell + array overheads)
AREA_MM2_PER_BIT = 2.0e-7

#: per-access sense-amp / decoder floor, pJ (paid regardless of size)
SENSE_BASE_PJ = 3.0

#: banked tag-match energy coefficient; the comparator tree and way
#: muxing grow superlinearly with associativity, which is what makes the
#: paper's Table 5 energy column rise steeply 11->22 KB then flatten
TAG_MATCH_PJ = 0.9

#: payload read energy, pJ per bit of the selected way
DYN_PJ_PER_BIT = 0.004

#: leakage power, mW per KB
LEAK_MW_PER_KB = 0.015


@dataclass
class SRAMEstimate:
    """Area and per-access energy for one structure."""

    name: str
    bits: int
    area_mm2: float
    read_energy_pj: float
    leakage_mw: float

    @property
    def size_kb(self) -> float:
        """Size in kilobytes."""
        return self.bits / 8.0 / 1024.0


class SRAMModel:
    """Estimate a set-associative SRAM structure."""

    def __init__(self, name: str, num_sets: int, assoc: int,
                 payload_bits_per_way: int, tag_bits: int):
        if num_sets <= 0 or assoc <= 0:
            raise ValueError("num_sets and assoc must be positive")
        self.name = name
        self.num_sets = num_sets
        self.assoc = assoc
        self.payload_bits_per_way = payload_bits_per_way
        self.tag_bits = tag_bits

    @property
    def total_bits(self) -> int:
        """Total storage bits of the array."""
        return self.num_sets * self.assoc * (self.payload_bits_per_way
                                             + self.tag_bits)

    def estimate(self) -> SRAMEstimate:
        """Compute the area/energy/leakage estimate."""
        import math

        bits = self.total_bits
        # banking/peripheral overhead grows mildly with associativity
        periph = 1.15 + 0.02 * self.assoc
        area = bits * AREA_MM2_PER_BIT * periph
        # a read pays the sense/decoder floor, a tag-match tree that grows
        # superlinearly with the ways compared, and the selected way's
        # payload bits
        log_assoc = math.log2(max(2, self.assoc))
        read_pj = (SENSE_BASE_PJ
                   + TAG_MATCH_PJ * log_assoc * log_assoc
                   + self.payload_bits_per_way * DYN_PJ_PER_BIT)
        leak = (bits / 8.0 / 1024.0) * LEAK_MW_PER_KB
        return SRAMEstimate(name=self.name, bits=bits, area_mm2=area,
                            read_energy_pj=read_pj, leakage_mw=leak)

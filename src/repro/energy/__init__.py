"""Analytical SRAM area/energy model (the reproduction's McPAT stand-in).

The paper runs McPAT to price the PDIP table against the core (Table 5).
We model each SRAM structure from first principles — bit count, banking,
and per-access energy constants calibrated to published 22 nm McPAT
outputs — and report the same relative metrics: percentage increases in
core energy and core area per PDIP configuration.
"""

from repro.energy.sram import SRAMModel, SRAMEstimate
from repro.energy.model import CoreEnergyModel, PDIPOverhead, pdip_overheads

__all__ = [
    "SRAMModel",
    "SRAMEstimate",
    "CoreEnergyModel",
    "PDIPOverhead",
    "pdip_overheads",
]

"""Pre-warm the result cache for the BTB-sweep figures (fig14/fig15).

One parallel suite per BTB size (``--jobs N`` or ``REPRO_JOBS``;
default: all cores); all sizes accumulate into a single run manifest.
``--store DIR`` (or ``REPRO_STORE``) also persists every cell into the
durable result store, so later served or batch runs reuse the sweep.
"""
import argparse
import time

from repro.experiments.common import SWEEP_BENCHMARKS
from repro.service.store import ResultStore, store_from_env
from repro.simulator import manifest as manifest_mod
from repro.simulator.config import MachineConfig
from repro.simulator.runner import run_suite_parallel

POLICIES = ["baseline", "eip_46", "pdip_11", "pdip_44", "pdip_44_emissary"]
SIZES = [4096, 65536]  # 8192 covered by the main grid


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS, "
                             "else all cores)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="durable result store to read/write "
                             "(default: REPRO_STORE env, else none)")
    args = parser.parse_args()
    store = ResultStore(args.store) if args.store else store_from_env()

    t0 = time.time()
    manifest = manifest_mod.RunManifest(label="prewarm_btb_sweep")
    for entries in SIZES:
        config = MachineConfig(btb_entries=entries)
        print(f"--- btb={entries} ---")
        run_suite_parallel(POLICIES, benchmarks=SWEEP_BENCHMARKS,
                           config=config, jobs=args.jobs, verbose=True,
                           manifest=manifest, store=store)
    path = manifest.write()
    print(manifest_mod.render_summary(manifest.to_dict()))
    print(f"manifest: {path}")
    print("DONE", f"{time.time() - t0:.0f}s")


if __name__ == "__main__":
    main()

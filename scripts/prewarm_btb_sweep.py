"""Pre-warm the result cache for the BTB-sweep figures (fig14/fig15)."""
import time
from repro.experiments.common import SWEEP_BENCHMARKS
from repro.simulator.config import MachineConfig
from repro.simulator.runner import run_benchmark

POLICIES = ["baseline", "eip_46", "pdip_11", "pdip_44", "pdip_44_emissary"]
SIZES = [4096, 65536]  # 8192 covered by the main grid

t0 = time.time()
for entries in SIZES:
    config = MachineConfig(btb_entries=entries)
    for bench in SWEEP_BENCHMARKS:
        for pol in POLICIES:
            t1 = time.time()
            st = run_benchmark(bench, pol, config=config)
            print(f"{time.time()-t0:7.0f}s btb={entries:6d} {bench:16s} "
                  f"{pol:18s} IPC={st.ipc:.3f} ({time.time()-t1:.0f}s)",
                  flush=True)
print("DONE", time.time() - t0)
